//! # sequence-datalog — Datalog for sequence databases
//!
//! A from-scratch Rust implementation of the system studied in *Expressiveness
//! within Sequence Datalog* (Aamer, Hidders, Paredaens, Van den Bussche, PODS 2021):
//! a Datalog dialect whose terms are *path expressions* built from atomic values,
//! atomic variables, path variables, concatenation, and packing.
//!
//! This crate is a facade that re-exports the workspace's subsystems:
//!
//! * [`core`] — the sequence data model (atoms, packed values, paths, instances);
//! * [`syntax`] — path expressions, rules, programs, parser, and static analyses;
//! * [`analysis`] — the lint framework behind `seqdl check` (stable lint codes,
//!   dead-code and divergence diagnostics);
//! * [`unify`] — associative unification for path expressions (extended pig-pug);
//! * [`engine`] — bottom-up evaluation with stratified negation;
//! * [`rewrite`] — the paper's feature-elimination transformations;
//! * [`algebra`] — the sequence relational algebra of Section 7;
//! * [`fragments`] — features, fragments, the Theorem 6.1 classification, Figure 1;
//! * [`regex`] — regular expressions compiled to Sequence Datalog (recursion as
//!   syntactic sugar, cf. Section 1);
//! * [`termination`] — conservative termination analysis (cf. Section 2.3);
//! * [`trace`] — the span/event sink behind `--trace-out` and the profiler;
//! * [`io`] — program (`.sdl`) and instance (`.sdi`) files;
//! * [`wgen`] — synthetic workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use sequence_datalog::prelude::*;
//!
//! // Example 3.1 of the paper: the paths from R that consist exclusively of a's.
//! let program = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
//! let input = Instance::unary(rel("R"), [repeat_path("a", 4), path_of(&["a", "b"])]);
//! let output = Engine::new().run(&program, &input).unwrap();
//! assert_eq!(output.unary_paths(rel("S")).len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use seqdl_algebra as algebra;
pub use seqdl_analysis as analysis;
pub use seqdl_core as core;
pub use seqdl_engine as engine;
pub use seqdl_exec as exec;
pub use seqdl_fragments as fragments;
pub use seqdl_io as io;
pub use seqdl_regex as regex;
pub use seqdl_rewrite as rewrite;
pub use seqdl_syntax as syntax;
pub use seqdl_termination as termination;
pub use seqdl_trace as trace;
pub use seqdl_unify as unify;
pub use seqdl_wgen as wgen;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use seqdl_core::{atom, path_of, rel, repeat_path, Fact, Instance, Path, RelName, Value};
    pub use seqdl_engine::{run_boolean_query, run_unary_query, Engine, EvalLimits};
    pub use seqdl_exec::Executor;
    pub use seqdl_fragments::{subsumed_by, Feature, Fragment, HasseDiagram};
    pub use seqdl_io::{
        load_instance, load_program, parse_instance, save_instance, write_instance,
    };
    pub use seqdl_regex::{compile_contains, compile_match, parse_regex, Regex};
    pub use seqdl_syntax::{parse_expr, parse_program, parse_rule, FeatureSet, Program};
    pub use seqdl_termination::{analyse as analyse_termination, guaranteed_terminating};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let program = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        assert_eq!(Fragment::of_program(&program).to_string(), "{E}");
        let input = Instance::unary(rel("R"), [repeat_path("a", 2)]);
        assert!(
            run_boolean_query(&parse_program("A <- R($x).").unwrap(), &input, rel("A")).unwrap()
        );
    }

    #[test]
    fn extension_crates_are_reachable_from_the_prelude() {
        // Termination analysis certifies the quickstart program.
        let program = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        assert!(guaranteed_terminating(&program));
        assert!(analyse_termination(&program).cliques.is_empty());

        // Regex compilation produces an equivalent program for the same query.
        let compiled = compile_match(
            &parse_regex("a*").unwrap(),
            &sequence_datalog_regex_defaults(),
        );
        let input = Instance::unary(rel("R"), [repeat_path("a", 4), path_of(&["a", "b"])]);
        let via_regex = run_unary_query(&compiled.program, &input, compiled.output).unwrap();
        let via_equation = run_unary_query(&program, &input, rel("S")).unwrap();
        assert_eq!(via_regex, via_equation);

        // Instances round-trip through the textual format.
        let text = write_instance(&input);
        assert_eq!(
            parse_instance(&text).unwrap().unary_paths(rel("R")),
            input.unary_paths(rel("R"))
        );
    }

    fn sequence_datalog_regex_defaults() -> crate::regex::CompileOptions {
        crate::regex::CompileOptions::default()
    }
}
