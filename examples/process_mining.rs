//! Process mining on event logs (one of the application domains motivating the
//! paper): event logs are sets of sequences of activities, and Sequence Datalog
//! expresses trace-level policies directly.
//!
//! The policy checked here is the introduction's example: *every occurrence of
//! `order` is eventually followed by `pay`*.
//!
//! Run with `cargo run --example process_mining`.

use sequence_datalog::prelude::*;
use sequence_datalog::wgen::Workloads;

fn main() {
    // Violations: some occurrence of `order` has no later `pay`.  A trace is
    // compliant if it is in the log and not a violation.  Note the use of path
    // variables to quantify over arbitrary prefixes/suffixes of a trace.
    let program = parse_program(
        "HasPay($s) <- Log($t), $t = $p·order·$s, $s = $u·pay·$v.\n\
         ---\n\
         Viol($t) <- Log($t), $t = $p·order·$s, !HasPay($s).\n\
         ---\n\
         Compliant($t) <- Log($t), !Viol($t).",
    )
    .expect("program parses");
    println!("policy program:\n{program}\n");

    // A synthetic event log plus two hand-written traces with known status.
    let mut log = Workloads::new(2024).event_log(6, 5);
    log.insert_fact(Fact::new(
        rel("Log"),
        vec![path_of(&["start", "order", "ship", "pay", "close"])],
    ))
    .unwrap();
    log.insert_fact(Fact::new(
        rel("Log"),
        vec![path_of(&["start", "order", "ship", "close"])],
    ))
    .unwrap();

    let result = Engine::new()
        .run(&program, &log)
        .expect("evaluation succeeds");
    println!("compliant traces:");
    for t in result.unary_paths(rel("Compliant")) {
        println!("  {t}");
    }
    println!("\nviolating traces:");
    for t in result.unary_paths(rel("Viol")) {
        println!("  {t}");
    }

    let compliant = result.unary_paths(rel("Compliant"));
    assert!(compliant.contains(&path_of(&["start", "order", "ship", "pay", "close"])));
    assert!(!compliant.contains(&path_of(&["start", "order", "ship", "close"])));
    println!("\nhand-written traces classified as expected ✓");
}
