//! Example 2.1 of the paper: representing an NFA as data (relations N, D, F) and
//! computing, inside Sequence Datalog, which strings of a unary relation R the NFA
//! accepts.
//!
//! Run with `cargo run --example nfa_matching`.

use sequence_datalog::fragments::witnesses;
use sequence_datalog::prelude::*;
use sequence_datalog::wgen::Workloads;

fn main() {
    let witness = witnesses::nfa_acceptance();
    println!(
        "Example 2.1 program ({}):\n{}\n",
        Fragment::of_program(&witness.program),
        witness.program
    );

    // A hand-built NFA over {a, b} accepting the strings that end in b.
    let mut input = Instance::new();
    input
        .insert_fact(Fact::new(rel("N"), vec![path_of(&["q0"])]))
        .unwrap();
    input
        .insert_fact(Fact::new(rel("F"), vec![path_of(&["q1"])]))
        .unwrap();
    for (from, sym, to) in [
        ("q0", "a", "q0"),
        ("q0", "b", "q1"),
        ("q1", "a", "q0"),
        ("q1", "b", "q1"),
    ] {
        input
            .insert_fact(Fact::new(
                rel("D"),
                vec![path_of(&[from]), path_of(&[sym]), path_of(&[to])],
            ))
            .unwrap();
    }
    for word in [
        vec!["a", "b"],
        vec!["b", "a"],
        vec!["b", "b", "b"],
        vec!["a"],
    ] {
        input
            .insert_fact(Fact::new(rel("R"), vec![path_of(&word)]))
            .unwrap();
    }

    let result = Engine::new()
        .run(&witness.program, &input)
        .expect("evaluation succeeds");
    println!("accepted strings (ending in b):");
    for p in result.unary_paths(rel("A")) {
        println!("  {p}");
    }
    assert_eq!(result.unary_paths(rel("A")).len(), 2);

    // The same program drives a randomly generated NFA workload.
    let random = Workloads::new(99).nfa_instance(4, 2, 10, 12);
    let result = Engine::new()
        .run(&witness.program, &random)
        .expect("evaluation succeeds");
    println!(
        "\nrandom NFA workload: {} of {} words accepted",
        result.unary_paths(rel("A")).len(),
        random.unary_paths(rel("R")).len()
    );
}
