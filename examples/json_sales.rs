//! The JSON-motivated example from the paper's introduction: a `Sales` object is a
//! set of item·year·value triples (length-3 sequences).  Restructuring it to group
//! by year instead of by item "simply amounts to swapping the first two elements of
//! every sequence"; deep-equality of two objects is equality of their sets of
//! sequences.
//!
//! Run with `cargo run --example json_sales`.

use sequence_datalog::prelude::*;
use sequence_datalog::wgen::Workloads;

fn main() {
    // Group by year: swap the first two elements of every triple.
    let regroup = parse_program("ByYear(@y·@i·$v) <- Sales(@i·@y·$v).").expect("program parses");

    let sales = Workloads::new(7).sales_instance(3, 2);
    println!("Sales (grouped by item):\n{sales}\n");

    let result = Engine::new()
        .run(&regroup, &sales)
        .expect("evaluation succeeds");
    println!("ByYear (grouped by year):");
    for p in result.unary_paths(rel("ByYear")) {
        println!("  {p}");
    }
    assert_eq!(
        result.unary_paths(rel("ByYear")).len(),
        sales.unary_paths(rel("Sales")).len()
    );

    // Deep-equality of two JSON objects modelled as sequence sets: A and B are
    // deep-equal iff no sequence is in one but not the other.
    let deep_equal = parse_program(
        "OnlyA($x) <- A($x), !B($x).\n\
         OnlyB($x) <- B($x), !A($x).\n\
         ---\n\
         Diff <- OnlyA($x).\n\
         Diff <- OnlyB($x).",
    )
    .expect("program parses");

    let mut same = Instance::new();
    for r in ["A", "B"] {
        for p in sales.unary_paths(rel("Sales")) {
            same.insert_fact(Fact::new(rel(r), vec![p])).unwrap();
        }
    }
    let result = Engine::new()
        .run(&deep_equal, &same)
        .expect("evaluation succeeds");
    println!(
        "\nidentical objects: Diff = {}",
        result.nullary_true(rel("Diff"))
    );
    assert!(!result.nullary_true(rel("Diff")));

    let mut different = same.clone();
    different
        .insert_fact(Fact::new(rel("A"), vec![path_of(&["item9", "2030", "1"])]))
        .unwrap();
    let result = Engine::new()
        .run(&deep_equal, &different)
        .expect("evaluation succeeds");
    println!(
        "after adding one triple to A: Diff = {}",
        result.nullary_true(rel("Diff"))
    );
    assert!(result.nullary_true(rel("Diff")));
}
