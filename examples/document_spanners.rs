//! Document spanners / information extraction (one of the motivations in the
//! paper's introduction): regular-expression matching over a sequence database,
//! compiled to an ordinary Sequence Datalog program.
//!
//! Run with `cargo run --example document_spanners`.

use sequence_datalog::prelude::*;
use sequence_datalog::regex::CompileOptions;

fn main() {
    // A tiny "document" collection: tokenised sentences stored as paths in `Doc`.
    let docs = Instance::unary(
        rel("Doc"),
        [
            path_of(&["order", "42", "shipped", "to", "alice"]),
            path_of(&["order", "7", "cancelled"]),
            path_of(&["invoice", "9", "paid", "by", "bob"]),
            path_of(&["order", "13", "shipped", "to", "bob"]),
        ],
    );

    // Extraction pattern: documents announcing that an order was shipped to someone.
    let pattern = parse_regex("order % shipped to %").expect("pattern parses");
    println!("pattern: {pattern}\n");

    // Compile the pattern into a Sequence Datalog program (Example 2.1 style): the
    // paper's remark that regular matching is syntactic sugar for recursion.
    let options = CompileOptions {
        input: rel("Doc"),
        output: rel("Shipped"),
        ..CompileOptions::default()
    };
    let compiled = compile_match(&pattern, &options);
    println!(
        "compiled program ({} rules, fragment {}):\n{}\n",
        compiled.program.rule_count(),
        Fragment::of_program(&compiled.program),
        compiled.program
    );

    let result = Engine::new()
        .run(&compiled.program, &docs)
        .expect("terminates");
    println!("matching documents:");
    for doc in result.unary_paths(rel("Shipped")) {
        println!("  {doc}");
    }

    // The direct NFA simulation and the AST matcher agree with the engine.
    let nfa = sequence_datalog::regex::Nfa::from_regex(&pattern);
    for doc in docs.unary_paths(rel("Doc")) {
        assert_eq!(
            nfa.accepts(&doc),
            result.unary_paths(rel("Shipped")).contains(&doc)
        );
        assert_eq!(pattern.matches(&doc), nfa.accepts(&doc));
    }
    println!("\nNFA simulation and AST matcher agree with the compiled program ✓");

    // "Contains" queries wrap the pattern in wildcards: who is ever mentioned after
    // the word `to`?
    let contains = compile_contains(&parse_regex("to bob").unwrap(), &options);
    let result = Engine::new()
        .run(&contains.program, &docs)
        .expect("terminates");
    println!("\ndocuments mentioning `to bob`:");
    for doc in result.unary_paths(rel("Shipped")) {
        println!("  {doc}");
    }
}
