//! Graph databases store paths as first-class sequences (G-CORE motivation from the
//! paper's introduction).  Here edges are length-2 paths, reachability is the {I, R}
//! witness query of Section 5.1.1, and we also ask for the nodes that lie on every
//! path of a stored set of paths.
//!
//! Run with `cargo run --example graph_paths`.

use sequence_datalog::fragments::witnesses;
use sequence_datalog::prelude::*;
use sequence_datalog::wgen::Workloads;

fn main() {
    // Reachability a ->* b on a random digraph.
    let reach = witnesses::reachability();
    let graph = Workloads::new(5).digraph_instance(12, 30);
    let result = Engine::new()
        .run(&reach.program, &graph)
        .expect("evaluation succeeds");
    println!(
        "random digraph with {} edges: b reachable from a? {}",
        graph.fact_count(),
        result.nullary_true(rel("S"))
    );

    // Nodes common to all stored paths: node @n is *missing* from path $p if $p does
    // not contain it; nodes on every path are those not missing from any.
    let common = parse_program(
        "Node(@n) <- Paths($u·@n·$v).\n\
         On(@n, $p) <- Node(@n), Paths($p), $p = $u·@n·$v.\n\
         ---\n\
         Missing(@n) <- Node(@n), Paths($p), !On(@n, $p).\n\
         ---\n\
         Common(@n) <- Node(@n), !Missing(@n).",
    )
    .expect("program parses");

    let paths = Instance::unary(
        rel("Paths"),
        [
            path_of(&["v1", "v2", "v3", "v4"]),
            path_of(&["v0", "v2", "v4"]),
            path_of(&["v2", "v5", "v4"]),
        ],
    );
    let result = Engine::new()
        .run(&common, &paths)
        .expect("evaluation succeeds");
    println!("\nstored paths:\n{paths}\n");
    println!("nodes on every stored path:");
    for n in result.unary_paths(rel("Common")) {
        println!("  {n}");
    }
    assert_eq!(
        result.unary_paths(rel("Common")),
        [path_of(&["v2"]), path_of(&["v4"])].into()
    );
}
