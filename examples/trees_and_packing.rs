//! Representing trees with packing (Section 8 of the paper): a tree with root label
//! `a` and child trees `T1 … Tn` is the path `a·⟨T1⟩·…·⟨Tn⟩`.  This example builds a
//! small "XML-ish" catalogue, queries it with packed patterns, and shows that the
//! flat query we compute survives packing elimination (Theorem 4.15).
//!
//! Run with `cargo run --example trees_and_packing`.

use sequence_datalog::prelude::*;
use sequence_datalog::rewrite::eliminate_packing_nonrecursive;

/// `label(children…)` — build the path encoding of a tree node.
fn node(label: &str, children: &[Path]) -> Path {
    let mut path = path_of(&[label]);
    for child in children {
        path.push(Value::packed(*child));
    }
    path
}

fn main() {
    // <catalogue>
    //   <book><title>logic</title><year>2021</year></book>
    //   <book><title>databases</title><year>1995</year></book>
    // </catalogue>
    let book1 = node(
        "book",
        &[
            node("title", &[node("logic", &[])]),
            node("year", &[node("2021", &[])]),
        ],
    );
    let book2 = node(
        "book",
        &[
            node("title", &[node("databases", &[])]),
            node("year", &[node("1995", &[])]),
        ],
    );
    let catalogue = node("catalogue", &[book1, book2]);
    println!("catalogue as a packed path:\n  {catalogue}\n");

    let mut input = Instance::new();
    input.declare_relation(rel("Tree"), 1);
    input
        .insert_fact(Fact::new(rel("Tree"), vec![catalogue]))
        .unwrap();

    // Query: the title labels of all books.  Packed patterns navigate the tree; the
    // output is a flat unary relation, i.e. one of the paper's baseline queries.
    let query = parse_program(
        "Book($b) <- Tree(catalogue·$pre·<$b>·$post).\n\
         ---\n\
         Title(@t) <- Book(book·<title·<@t·$rest>>·$more).",
    )
    .expect("query parses");
    let output = Engine::new().run(&query, &input).expect("terminates");
    println!("book titles:");
    for title in output.unary_paths(rel("Title")) {
        println!("  {title}");
    }
    assert_eq!(output.unary_paths(rel("Title")).len(), 2);

    // The input is NOT flat (it contains packed values), but the same *program*
    // restricted to flat instances is still a flat query, and Theorem 4.15 says the
    // packing feature itself is never necessary for flat queries.  Demonstrate the
    // rewrite on Example 2.2, whose input is flat:
    let packed_witness = sequence_datalog::fragments::witnesses::three_occurrences();
    let unpacked = eliminate_packing_nonrecursive(&packed_witness.program, packed_witness.output)
        .expect("nonrecursive");
    println!(
        "\nExample 2.2 uses fragment {}; the packing-free rewrite uses {} and {} rules.",
        Fragment::of_program(&packed_witness.program),
        Fragment::of_program(&unpacked),
        unpacked.rule_count()
    );

    let mut flat_input = Instance::new();
    flat_input.declare_relation(rel("R"), 1);
    flat_input.declare_relation(rel("S"), 1);
    flat_input
        .insert_fact(Fact::new(
            rel("R"),
            vec![path_of(&["x", "y", "x", "y", "x", "y"])],
        ))
        .unwrap();
    flat_input
        .insert_fact(Fact::new(rel("S"), vec![path_of(&["x", "y"])]))
        .unwrap();
    let original =
        run_boolean_query(&packed_witness.program, &flat_input, packed_witness.output).unwrap();
    let rewritten = run_boolean_query(&unpacked, &flat_input, packed_witness.output).unwrap();
    assert_eq!(original, rewritten);
    println!("both agree that the flat instance has three occurrences: {original} ✓");
}
