//! Termination in Sequence Datalog: the paper restricts attention to terminating
//! programs (Section 2.3) and cites Bonner and Mecca's termination guarantees.
//! This example runs the conservative termination analysis over the paper's
//! programs, shows the diverging Example 2.3 being refused, and demonstrates the
//! engine's resource limits as the runtime safety net.
//!
//! Run with `cargo run --example termination_lab`.

use sequence_datalog::engine::EvalError;
use sequence_datalog::fragments::witnesses;
use sequence_datalog::prelude::*;

fn main() {
    // 1. Every witness program from the paper is certified by the static analysis.
    println!("static termination analysis of the paper's programs:");
    for witness in witnesses::all_witnesses() {
        let report = analyse_termination(&witness.program);
        println!("  {:<28} {}", witness.name, report.verdict);
        assert!(guaranteed_terminating(&witness.program));
    }

    // 2. Example 2.3 — `T(a).  T(a·$x) <- T($x).` — is refused, with the offending
    //    rule in the report.
    let diverging = parse_program("T(a).\nT(a·$x) <- T($x).").expect("parses");
    let report = analyse_termination(&diverging);
    println!("\nExample 2.3:\n{report}");
    assert!(!guaranteed_terminating(&diverging));

    // 3. At runtime, the engine's limits turn divergence into a clean error.
    let limited = Engine::new().with_limits(EvalLimits {
        max_iterations: 100,
        max_facts: 10_000,
        max_path_len: 128,
        ..EvalLimits::default()
    });
    match limited.run(&diverging, &Instance::new()) {
        Err(EvalError::LimitExceeded { what, limit }) => {
            println!("engine stopped Example 2.3 cleanly: exceeded {limit} ({what:?})");
        }
        other => panic!("expected a limit violation, got {other:?}"),
    }

    // 4. The squaring query of Theorem 5.3 terminates but produces quadratic
    //    output — the analysis certifies it via the rank-decreasing criterion.
    let squaring = witnesses::squaring();
    let report = analyse_termination(&squaring.program);
    println!("\nsquaring query: {report}");
    for n in [2usize, 4, 8] {
        let input = Instance::unary(rel("R"), [repeat_path("a", n)]);
        let longest = run_unary_query(&squaring.program, &input, squaring.output)
            .unwrap()
            .iter()
            .map(Path::len)
            .max()
            .unwrap_or(0);
        println!("  |input| = {n:>2}  ->  longest output path = {longest:>3} (= n²)");
        assert_eq!(longest, n * n);
    }
}
