//! A tour of the paper's expressiveness results: detect a program's fragment,
//! rewrite it into other fragments with the constructive redundancy theorems, and
//! print the Figure 1 Hasse diagram.
//!
//! Run with `cargo run --example feature_lab`.

use sequence_datalog::fragments::{rewrite_into, witnesses};
use sequence_datalog::prelude::*;
use sequence_datalog::rewrite::eliminate_packing_nonrecursive;

fn main() {
    // 1. Figure 1: the complete expressiveness classification.
    let diagram = HasseDiagram::build(&Fragment::all_over_einr());
    println!("Figure 1 — {} equivalence classes:", diagram.classes.len());
    println!("{}", diagram.render_text());

    // 2. Take the {E} only-a's query and move it into {A, I} (Theorem 4.7).
    let witness = witnesses::only_as_equation();
    let target: Fragment = "AI".parse().unwrap();
    let rewritten = rewrite_into(&witness.program, witness.output, target).expect("E ≤ I");
    println!(
        "only-a's rewritten from {} into {}:\n{rewritten}\n",
        Fragment::of_program(&witness.program),
        Fragment::of_program(&rewritten)
    );
    let input = Instance::unary(rel("R"), [repeat_path("a", 4), path_of(&["a", "b"])]);
    assert_eq!(
        run_unary_query(&witness.program, &input, witness.output).unwrap(),
        run_unary_query(&rewritten, &input, witness.output).unwrap()
    );

    // 3. Packing is redundant (Theorem 4.15): Example 2.2 becomes the 28-rule
    //    packing-free program of Example 4.14.
    let packed = witnesses::three_occurrences();
    let unpacked =
        eliminate_packing_nonrecursive(&packed.program, packed.output).expect("nonrecursive");
    println!(
        "Example 2.2 uses {}; after packing elimination: {} with {} rules (Example 4.14 predicts 28).",
        Fragment::of_program(&packed.program),
        Fragment::of_program(&unpacked),
        unpacked.rule_count()
    );

    // 4. A separation: the squaring query needs recursion (Lemma 5.1 / Theorem 5.3).
    let squaring = witnesses::squaring();
    println!(
        "\nsquaring query is in {}; Theorem 6.1 says {} ≤ {{A, E, I, N, P}} is {}",
        Fragment::of_program(&squaring.program),
        Fragment::of_program(&squaring.program),
        subsumed_by(
            Fragment::of_program(&squaring.program),
            "AEINP".parse().unwrap()
        )
    );
}
