//! Quickstart: parse a Sequence Datalog program, run it, inspect the output.
//!
//! Run with `cargo run --example quickstart`.

use sequence_datalog::prelude::*;

fn main() {
    // Example 3.1 of the paper: the paths from R consisting exclusively of a's,
    // expressed with a single equation (fragment {E}).
    let program = parse_program("S($x) <- R($x), a·$x = $x·a.").expect("program parses");
    println!("program ({}):\n{program}\n", Fragment::of_program(&program));

    let input = Instance::unary(
        rel("R"),
        [
            repeat_path("a", 5),
            path_of(&["a", "b", "a"]),
            path_of(&["b"]),
            Path::empty(),
        ],
    );
    println!("input instance:\n{input}\n");

    let output = Engine::new()
        .run(&program, &input)
        .expect("evaluation succeeds");
    println!("output relation S:");
    for p in output.unary_paths(rel("S")) {
        println!("  S({p})");
    }

    // The same query without equations (Example 4.4, fragment {A, I}) gives the
    // same answer.
    let no_equations =
        parse_program("T(a·$x, $x) <- R($x).\nS($x) <- T($x·a, $x).").expect("program parses");
    let output2 = Engine::new()
        .run(&no_equations, &input)
        .expect("evaluation succeeds");
    assert_eq!(output.unary_paths(rel("S")), output2.unary_paths(rel("S")));
    println!("\nthe {{A, I}} variant (Example 4.4) computes the same query ✓");
}
