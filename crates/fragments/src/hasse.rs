//! Equivalence classes and the Hasse diagram of Figure 1.

use crate::fragment::Fragment;
use crate::subsumption::subsumed_by;
use std::fmt::Write as _;

/// Group fragments into equivalence classes of the subsumption relation
/// (`F1 ≡ F2` iff `F1 ≤ F2` and `F2 ≤ F1`).  Each class lists its members in order.
pub fn equivalence_classes(fragments: &[Fragment]) -> Vec<Vec<Fragment>> {
    let mut classes: Vec<Vec<Fragment>> = Vec::new();
    for &f in fragments {
        match classes
            .iter_mut()
            .find(|c| subsumed_by(f, c[0]) && subsumed_by(c[0], f))
        {
            Some(class) => class.push(f),
            None => classes.push(vec![f]),
        }
    }
    for class in &mut classes {
        class.sort();
    }
    classes.sort();
    classes
}

/// The Hasse diagram of the equivalence classes of a set of fragments under
/// subsumption (Figure 1 of the paper for the 16 fragments over {E, I, N, R}).
#[derive(Clone, Debug)]
pub struct HasseDiagram {
    /// The equivalence classes (the diagram's nodes).
    pub classes: Vec<Vec<Fragment>>,
    /// Cover edges `(lower, upper)` as indices into `classes`: the lower class is
    /// strictly subsumed by the upper one with nothing in between.
    pub edges: Vec<(usize, usize)>,
}

impl HasseDiagram {
    /// Build the diagram for the given fragments.
    pub fn build(fragments: &[Fragment]) -> HasseDiagram {
        let classes = equivalence_classes(fragments);
        let le = |a: usize, b: usize| subsumed_by(classes[a][0], classes[b][0]);
        let strictly_le = |a: usize, b: usize| a != b && le(a, b);
        let mut edges = Vec::new();
        for lower in 0..classes.len() {
            for upper in 0..classes.len() {
                if !strictly_le(lower, upper) {
                    continue;
                }
                // Cover edge: nothing strictly in between.
                let covered = (0..classes.len())
                    .any(|mid| strictly_le(lower, mid) && strictly_le(mid, upper));
                if !covered {
                    edges.push((lower, upper));
                }
            }
        }
        HasseDiagram { classes, edges }
    }

    /// A canonical label for a class: its members joined by `=` (as in Figure 1).
    pub fn class_label(&self, index: usize) -> String {
        self.classes[index]
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join(" = ")
    }

    /// Group the classes into levels by longest chain from the bottom, mirroring the
    /// layered drawing of Figure 1.
    pub fn levels(&self) -> Vec<Vec<usize>> {
        let n = self.classes.len();
        let mut level = vec![0usize; n];
        // Longest-path layering over the DAG of cover edges.
        let mut changed = true;
        while changed {
            changed = false;
            for &(lower, upper) in &self.edges {
                if level[upper] < level[lower] + 1 {
                    level[upper] = level[lower] + 1;
                    changed = true;
                }
            }
        }
        let max_level = level.iter().copied().max().unwrap_or(0);
        let mut out = vec![Vec::new(); max_level + 1];
        for (i, l) in level.iter().enumerate() {
            out[*l].push(i);
        }
        out
    }

    /// Render the diagram as text, one level per line, bottom level first.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (depth, level) in self.levels().iter().enumerate() {
            let labels: Vec<String> = level.iter().map(|i| self.class_label(*i)).collect();
            let _ = writeln!(out, "level {depth}: {}", labels.join("    "));
        }
        let _ = writeln!(out, "cover edges:");
        for &(lower, upper) in &self.edges {
            let _ = writeln!(
                out,
                "  {}  <  {}",
                self.class_label(lower),
                self.class_label(upper)
            );
        }
        out
    }

    /// Render the diagram in Graphviz DOT format.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph hasse {\n  rankdir=BT;\n  node [shape=box];\n");
        for (i, _) in self.classes.iter().enumerate() {
            let _ = writeln!(out, "  c{i} [label=\"{}\"];", self.class_label(i));
        }
        for &(lower, upper) in &self.edges {
            let _ = writeln!(out, "  c{lower} -> c{upper};");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(s: &str) -> Fragment {
        s.parse().unwrap()
    }

    #[test]
    fn figure_1_has_eleven_equivalence_classes() {
        let classes = equivalence_classes(&Fragment::all_over_einr());
        assert_eq!(classes.len(), 11);
        // The merged classes shown in Figure 1.
        let find = |f: &str| {
            classes
                .iter()
                .find(|c| c.contains(&frag(f)))
                .cloned()
                .unwrap_or_default()
        };
        assert_eq!(find("E"), vec![frag("E"), frag("I"), frag("EI")]);
        assert_eq!(find("INR"), vec![frag("INR"), frag("EINR")]);
        assert_eq!(find("IN"), vec![frag("IN"), frag("EIN")]);
        assert_eq!(find("IR"), vec![frag("IR"), frag("EIR")]);
        // Singleton classes.
        for f in ["", "R", "N", "EN", "NR", "ER", "ENR"] {
            assert_eq!(find(f).len(), 1, "{f} should be alone in its class");
        }
    }

    #[test]
    fn all_64_fragments_also_collapse_to_eleven_classes() {
        // Arity and packing are redundant, so the 64 fragments over Φ fall into the
        // same 11 classes.
        let classes = equivalence_classes(&Fragment::all());
        assert_eq!(classes.len(), 11);
    }

    #[test]
    fn figure_1_cover_edges() {
        let diagram = HasseDiagram::build(&Fragment::all_over_einr());
        assert_eq!(diagram.classes.len(), 11);
        let index_of = |f: &str| {
            diagram
                .classes
                .iter()
                .position(|c| c.contains(&frag(f)))
                .unwrap()
        };
        let has_edge = |a: &str, b: &str| diagram.edges.contains(&(index_of(a), index_of(b)));
        // Ascending paths present in Figure 1 (a sample of the cover edges).
        assert!(has_edge("", "E"));
        assert!(has_edge("", "N"));
        assert!(has_edge("", "R"));
        assert!(has_edge("E", "EN"));
        assert!(has_edge("E", "ER"));
        assert!(has_edge("ER", "IR"));
        assert!(has_edge("N", "EN"));
        assert!(has_edge("N", "NR"));
        assert!(has_edge("R", "NR"));
        assert!(has_edge("R", "ER"));
        assert!(has_edge("EN", "IN"));
        assert!(has_edge("ER", "EINR") || has_edge("ER", "ENR"));
        assert!(has_edge("IN", "INR"));
        assert!(has_edge("IR", "INR"));
        assert!(has_edge("ENR", "INR"));
        // Absent in Figure 1: no edge from {N} directly to the top, no edge between
        // the incomparable {E, N} and {N, R}.
        assert!(!has_edge("N", "INR"));
        assert!(!has_edge("EN", "NR"));
        assert!(!has_edge("NR", "EN"));
    }

    #[test]
    fn the_bottom_level_is_the_empty_fragment_and_the_top_is_the_full_class() {
        let diagram = HasseDiagram::build(&Fragment::all_over_einr());
        let levels = diagram.levels();
        assert_eq!(
            levels[0],
            vec![diagram
                .classes
                .iter()
                .position(|c| c.contains(&Fragment::empty()))
                .unwrap()]
        );
        let top = levels.last().unwrap();
        assert_eq!(top.len(), 1);
        assert!(diagram.classes[top[0]].contains(&frag("EINR")));
        // Figure 1 draws four levels above the bottom.
        assert_eq!(levels.len(), 5);
    }

    #[test]
    fn renderings_mention_every_class() {
        let diagram = HasseDiagram::build(&Fragment::all_over_einr());
        let text = diagram.render_text();
        let dot = diagram.to_dot();
        for class in &diagram.classes {
            let label = class[0].to_string();
            assert!(text.contains(&label), "text missing {label}");
            assert!(dot.contains(&label), "dot missing {label}");
        }
    }
}
