//! # seqdl-fragments — features, fragments, and the expressiveness classification
//!
//! This crate implements Sections 3 and 6 of *Expressiveness within Sequence
//! Datalog* (PODS 2021):
//!
//! * [`Feature`] and [`Fragment`] — the six features A, E, I, N, P, R and sets
//!   thereof;
//! * [`subsumed_by`] — the five conditions of Theorem 6.1 characterising when
//!   `F1 ≤ F2`;
//! * [`equivalence_classes`] and [`HasseDiagram`] — the 11 equivalence classes and
//!   the Hasse diagram of Figure 1;
//! * [`rewrite_into`] — the constructive if-direction of Theorem 6.1 (Figure 3):
//!   chaining the seqdl-rewrite passes to move a program from its own fragment into
//!   any subsuming fragment;
//! * [`witnesses`] — the concrete programs the paper's primitivity proofs rest on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fragment;
pub mod hasse;
pub mod subsumption;
pub mod witnesses;

pub use fragment::{Feature, Fragment};
pub use hasse::{equivalence_classes, HasseDiagram};
pub use subsumption::{rewrite_into, subsumed_by, subsumption_conditions, SubsumptionReport};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_api_smoke_test() {
        let e: Fragment = "E".parse().unwrap();
        let i: Fragment = "I".parse().unwrap();
        assert!(subsumed_by(e, i));
        assert!(subsumed_by(i, e));
        let classes = equivalence_classes(&Fragment::all_over_einr());
        assert_eq!(classes.len(), 11);
    }
}
