//! The witness programs used throughout the paper's examples and primitivity
//! proofs, ready to run against the engine.

use seqdl_core::RelName;
use seqdl_syntax::{parse_program, Program};

/// A named witness program with the fragment it belongs to and the output relation
/// it computes.
#[derive(Clone, Debug)]
pub struct Witness {
    /// A short identifier (e.g. `"only-as-equation"`).
    pub name: &'static str,
    /// Where it appears in the paper.
    pub reference: &'static str,
    /// The program.
    pub program: Program,
    /// The output relation.
    pub output: RelName,
}

fn witness(name: &'static str, reference: &'static str, output: &str, src: &str) -> Witness {
    Witness {
        name,
        reference,
        program: parse_program(src).expect("witness programs are well-formed"),
        output: RelName::new(output),
    }
}

/// Example 3.1 — "only a's" with an equation (fragment {E}).
pub fn only_as_equation() -> Witness {
    witness(
        "only-as-equation",
        "Example 3.1",
        "S",
        "S($x) <- R($x), a·$x = $x·a.",
    )
}

/// Example 3.1 — "only a's" with recursion (fragment {A, I, R}).
pub fn only_as_recursion() -> Witness {
    witness(
        "only-as-recursion",
        "Example 3.1",
        "S",
        "T($x, $x) <- R($x).\nT($x, $y) <- T($x, $y·a).\nS($x) <- T($x, eps).",
    )
}

/// Example 4.4 — "only a's" without equations, via an intermediate predicate
/// (fragment {A, I}).
pub fn only_as_intermediate() -> Witness {
    witness(
        "only-as-intermediate",
        "Example 4.4",
        "S",
        "T(a·$x, $x) <- R($x).\nS($x) <- T($x·a, $x).",
    )
}

/// Example 4.3 — reversal, with arity (fragment {A, I, R}).
pub fn reversal_with_arity() -> Witness {
    witness(
        "reversal-arity",
        "Example 4.3",
        "S",
        "T($x, eps) <- R($x).\nT($x, $y·@u) <- T($x·@u, $y).\nS($x) <- T(eps, $x).",
    )
}

/// Example 4.3 — reversal, arity eliminated by the pairing encoding (fragment {I, R}).
pub fn reversal_without_arity() -> Witness {
    witness(
        "reversal-no-arity",
        "Example 4.3",
        "S",
        "T($x·a·a·$x·b) <- R($x).\nT($x·a·$y·@u·a·$x·b·$y·@u) <- T($x·@u·a·$y·a·$x·@u·b·$y).\nS($x) <- T(a·$x·a·b·$x).",
    )
}

/// Theorem 5.3 — the squaring query: output `a^(n²)` for every `R(a^n)` (fragment
/// {A, I, R}; not expressible without recursion by Lemma 5.1).
pub fn squaring() -> Witness {
    witness(
        "squaring",
        "Theorem 5.3",
        "S",
        "T(eps, $x, $x) <- R($x).\nT($y·$x, $x, $z) <- T($y, $x, a·$z).\nS($y) <- T($y, $x, eps).",
    )
}

/// Example 2.1 — NFA acceptance (fragment {A, I, R}).
pub fn nfa_acceptance() -> Witness {
    witness(
        "nfa-acceptance",
        "Example 2.1",
        "A",
        "S(@q·$x, eps) <- R($x), N(@q).\n\
         S(@q2·$y, $z·@a) <- S(@q1·@a·$y, $z), D(@q1, @a, @q2).\n\
         A($x) <- S(@q, $x), F(@q).",
    )
}

/// Example 2.2 — at least three different occurrences of an `S`-string inside
/// `R`-strings, using packing and nonequalities (fragment {E, I, N, P}).
pub fn three_occurrences() -> Witness {
    witness(
        "three-occurrences",
        "Example 2.2",
        "A",
        "T($u·<$s>·$v) <- R($u·$s·$v), S($s).\n\
         A <- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.",
    )
}

/// Section 5.1.1 — graph reachability `a →* b` on edges encoded as length-2 paths
/// (fragment {I, R}; not expressible without recursion).
pub fn reachability() -> Witness {
    witness(
        "reachability",
        "Section 5.1.1",
        "S",
        "T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).\nS <- T(a·b).",
    )
}

/// Section 5.2 — nodes all of whose successors are black (fragment {I, N}; not
/// expressible without intermediate predicates).
pub fn only_black_successors() -> Witness {
    witness(
        "only-black-successors",
        "Section 5.2",
        "S",
        "W(@x) <- R(@x·@y), !B(@y).\n---\nS(@x) <- R(@x·@y), !W(@x).",
    )
}

/// Example 4.6 — strings of the form `a1…an·bn…b1` with `ai ≠ bi` (fragment
/// {A, E, I, N, R}).
pub fn mirrored_distinct_pairs() -> Witness {
    witness(
        "mirrored-distinct-pairs",
        "Example 4.6",
        "S",
        "U($x, $x) <- R($x).\nU($x, $y) <- U($x, @a·$y·@b), @a != @b.\nS($x) <- U($x, eps).",
    )
}

/// All witnesses, for enumeration by the harness and the test-suite.
pub fn all_witnesses() -> Vec<Witness> {
    vec![
        only_as_equation(),
        only_as_recursion(),
        only_as_intermediate(),
        reversal_with_arity(),
        reversal_without_arity(),
        squaring(),
        nfa_acceptance(),
        three_occurrences(),
        reachability(),
        only_black_successors(),
        mirrored_distinct_pairs(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragment;
    use seqdl_core::{path_of, rel, repeat_path, Instance};
    use seqdl_engine::{run_unary_query, Engine};
    use seqdl_syntax::analysis::check_safety;

    fn frag(s: &str) -> Fragment {
        s.parse().unwrap()
    }

    #[test]
    fn all_witnesses_are_safe_and_in_their_stated_fragments() {
        let expected = [
            ("only-as-equation", "E"),
            ("only-as-recursion", "AIR"),
            ("only-as-intermediate", "AI"),
            ("reversal-arity", "AIR"),
            ("reversal-no-arity", "IR"),
            ("squaring", "AIR"),
            ("nfa-acceptance", "AIR"),
            ("three-occurrences", "EINP"),
            ("reachability", "IR"),
            ("only-black-successors", "IN"),
            ("mirrored-distinct-pairs", "AEINR"),
        ];
        let witnesses = all_witnesses();
        assert_eq!(witnesses.len(), expected.len());
        for (w, (name, fragment)) in witnesses.iter().zip(expected) {
            assert_eq!(w.name, name);
            assert!(check_safety(&w.program).is_ok(), "{name} is unsafe");
            assert_eq!(
                Fragment::of_program(&w.program),
                frag(fragment),
                "{name} is not in {{{fragment}}}"
            );
        }
    }

    #[test]
    fn the_three_only_as_variants_agree() {
        let input = Instance::unary(
            rel("R"),
            [
                repeat_path("a", 4),
                path_of(&["a", "b", "a"]),
                path_of(&["b"]),
                seqdl_core::Path::empty(),
            ],
        );
        let expected = run_unary_query(&only_as_equation().program, &input, rel("S")).unwrap();
        for w in [only_as_recursion(), only_as_intermediate()] {
            let got = run_unary_query(&w.program, &input, w.output).unwrap();
            assert_eq!(got, expected, "{} disagrees", w.name);
        }
        assert_eq!(expected.len(), 2);
    }

    #[test]
    fn reversal_variants_agree_and_reverse() {
        let paths = [path_of(&["x", "y", "z"]), path_of(&["p", "q"])];
        let input = Instance::unary(rel("R"), paths);
        let with = run_unary_query(&reversal_with_arity().program, &input, rel("S")).unwrap();
        let without = run_unary_query(&reversal_without_arity().program, &input, rel("S")).unwrap();
        assert_eq!(with, without);
        assert_eq!(with, paths.iter().map(seqdl_core::Path::reversed).collect());
    }

    #[test]
    fn squaring_witness_squares() {
        for n in [0usize, 2, 4] {
            let input = Instance::unary(rel("R"), [repeat_path("a", n)]);
            let out = run_unary_query(&squaring().program, &input, rel("S")).unwrap();
            assert!(out.contains(&repeat_path("a", n * n)));
        }
    }

    #[test]
    fn boolean_witnesses_answer_correctly() {
        // Reachability: a -> c -> b reaches, a -> c / d -> b does not.
        let mut yes = Instance::new();
        for (x, y) in [("a", "c"), ("c", "b")] {
            yes.insert_fact(seqdl_core::Fact::new(rel("R"), vec![path_of(&[x, y])]))
                .unwrap();
        }
        let w = reachability();
        assert!(Engine::new()
            .run(&w.program, &yes)
            .unwrap()
            .nullary_true(w.output));
        let mut no = Instance::new();
        for (x, y) in [("a", "c"), ("d", "b")] {
            no.insert_fact(seqdl_core::Fact::new(rel("R"), vec![path_of(&[x, y])]))
                .unwrap();
        }
        assert!(!Engine::new()
            .run(&w.program, &no)
            .unwrap()
            .nullary_true(w.output));
    }
}
