//! Features and fragments (Section 3).

use seqdl_syntax::FeatureSet;
use std::fmt;
use std::str::FromStr;

/// One of the six language features of Section 3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Feature {
    /// **A** — predicates of arity greater than one.
    Arity,
    /// **E** — equations between path expressions.
    Equations,
    /// **I** — intermediate predicates (two or more IDB relation names).
    Intermediate,
    /// **N** — (stratified) negation.
    Negation,
    /// **P** — packing.
    Packing,
    /// **R** — recursion.
    Recursion,
}

impl Feature {
    /// All six features, in the paper's alphabetical order.
    pub const ALL: [Feature; 6] = [
        Feature::Arity,
        Feature::Equations,
        Feature::Intermediate,
        Feature::Negation,
        Feature::Packing,
        Feature::Recursion,
    ];

    /// The single-letter name of the feature.
    pub fn letter(self) -> char {
        match self {
            Feature::Arity => 'A',
            Feature::Equations => 'E',
            Feature::Intermediate => 'I',
            Feature::Negation => 'N',
            Feature::Packing => 'P',
            Feature::Recursion => 'R',
        }
    }

    /// Parse a feature from its letter.
    pub fn from_letter(c: char) -> Option<Feature> {
        match c.to_ascii_uppercase() {
            'A' => Some(Feature::Arity),
            'E' => Some(Feature::Equations),
            'I' => Some(Feature::Intermediate),
            'N' => Some(Feature::Negation),
            'P' => Some(Feature::Packing),
            'R' => Some(Feature::Recursion),
            _ => None,
        }
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// A fragment: a set of features (Section 3).  Programs *belong* to a fragment if
/// they use only its features.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Fragment(u8);

impl Fragment {
    /// The empty fragment `{}`.
    pub fn empty() -> Fragment {
        Fragment(0)
    }

    /// The full fragment Φ = {A, E, I, N, P, R}.
    pub fn full() -> Fragment {
        Fragment::from_features(Feature::ALL)
    }

    /// Build a fragment from features.
    pub fn from_features(features: impl IntoIterator<Item = Feature>) -> Fragment {
        let mut f = Fragment::empty();
        for feature in features {
            f = f.with(feature);
        }
        f
    }

    /// The fragment of features a program actually uses.
    pub fn of_feature_set(fs: &FeatureSet) -> Fragment {
        let mut out = Fragment::empty();
        for (flag, feature) in [
            (fs.arity, Feature::Arity),
            (fs.equations, Feature::Equations),
            (fs.intermediate, Feature::Intermediate),
            (fs.negation, Feature::Negation),
            (fs.packing, Feature::Packing),
            (fs.recursion, Feature::Recursion),
        ] {
            if flag {
                out = out.with(feature);
            }
        }
        out
    }

    /// The fragment of features used by a program.
    pub fn of_program(program: &seqdl_syntax::Program) -> Fragment {
        Fragment::of_feature_set(&FeatureSet::of_program(program))
    }

    fn bit(feature: Feature) -> u8 {
        1 << (Feature::ALL
            .iter()
            .position(|f| *f == feature)
            .expect("feature") as u8)
    }

    /// Does the fragment contain `feature`?
    pub fn contains(self, feature: Feature) -> bool {
        self.0 & Fragment::bit(feature) != 0
    }

    /// The fragment with `feature` added.
    pub fn with(self, feature: Feature) -> Fragment {
        Fragment(self.0 | Fragment::bit(feature))
    }

    /// The fragment with `feature` removed.
    pub fn without(self, feature: Feature) -> Fragment {
        Fragment(self.0 & !Fragment::bit(feature))
    }

    /// Is this fragment a subset of `other`?
    pub fn is_subset_of(self, other: Fragment) -> bool {
        self.0 & !other.0 == 0
    }

    /// Union of two fragments.
    pub fn union(self, other: Fragment) -> Fragment {
        Fragment(self.0 | other.0)
    }

    /// The features of the fragment, in order.
    pub fn features(self) -> Vec<Feature> {
        Feature::ALL
            .into_iter()
            .filter(|f| self.contains(*f))
            .collect()
    }

    /// Number of features.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Is this the empty fragment?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The projection of the fragment onto {E, I, N, R}: the paper's `F̂ = F − {A, P}`
    /// (Section 6), since arity and packing are redundant.
    pub fn hat(self) -> Fragment {
        self.without(Feature::Arity).without(Feature::Packing)
    }

    /// All 16 fragments over {E, I, N, R} (the fragments classified by Figure 1).
    pub fn all_over_einr() -> Vec<Fragment> {
        let letters = [
            Feature::Equations,
            Feature::Intermediate,
            Feature::Negation,
            Feature::Recursion,
        ];
        (0..16u8)
            .map(|mask| {
                Fragment::from_features(
                    letters
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, f)| *f),
                )
            })
            .collect()
    }

    /// All 64 fragments over the full feature set Φ.
    pub fn all() -> Vec<Fragment> {
        (0..64u8).map(Fragment).collect()
    }
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let letters: Vec<String> = self.features().iter().map(|x| x.to_string()).collect();
        write!(f, "{{{}}}", letters.join(", "))
    }
}

impl FromStr for Fragment {
    type Err = String;
    /// Parse a fragment from letters, e.g. `"EIN"`, `"{E, I, N}"`, or `"{}"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = Fragment::empty();
        for c in s.chars() {
            if c.is_whitespace() || "{},".contains(c) {
                continue;
            }
            match Feature::from_letter(c) {
                Some(f) => out = out.with(f),
                None => return Err(format!("unknown feature letter `{c}`")),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_syntax::parse_program;

    #[test]
    fn fragment_set_operations() {
        let einr: Fragment = "EINR".parse().unwrap();
        assert_eq!(einr.len(), 4);
        assert!(einr.contains(Feature::Equations));
        assert!(!einr.contains(Feature::Packing));
        assert!(Fragment::empty().is_subset_of(einr));
        assert!(einr.is_subset_of(Fragment::full()));
        assert!(!einr.is_subset_of("EIN".parse().unwrap()));
        assert_eq!(einr.without(Feature::Equations).to_string(), "{I, N, R}");
        assert_eq!(einr.union("AP".parse().unwrap()), Fragment::full());
        assert_eq!(Fragment::full().hat(), einr);
    }

    #[test]
    fn parsing_and_display_round_trip() {
        for s in ["{}", "{E}", "{E, I, N, R}", "{A, E, I, N, P, R}"] {
            let f: Fragment = s.parse().unwrap();
            assert_eq!(f.to_string(), s);
        }
        assert!("XYZ".parse::<Fragment>().is_err());
    }

    #[test]
    fn enumerations_have_the_right_sizes() {
        assert_eq!(Fragment::all_over_einr().len(), 16);
        assert_eq!(Fragment::all().len(), 64);
        let distinct: std::collections::BTreeSet<_> =
            Fragment::all_over_einr().into_iter().collect();
        assert_eq!(distinct.len(), 16);
    }

    #[test]
    fn fragment_of_program_matches_feature_detection() {
        let p = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        assert_eq!(Fragment::of_program(&p), "E".parse().unwrap());
        let p =
            parse_program("T($x, $x) <- R($x).\nT($x, $y) <- T($x, $y·a).\nS($x) <- T($x, eps).")
                .unwrap();
        assert_eq!(Fragment::of_program(&p), "AIR".parse().unwrap());
    }
}
