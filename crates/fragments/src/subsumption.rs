//! The subsumption relation `F1 ≤ F2` (Theorem 6.1) and its constructive
//! if-direction (Figure 3).

use crate::fragment::{Feature, Fragment};
use seqdl_core::RelName;
use seqdl_rewrite::{
    eliminate_arity, eliminate_equations, eliminate_packing_nonrecursive,
    fold_intermediate_predicates, RewriteError,
};
use seqdl_syntax::Program;

/// The five conditions of Theorem 6.1, evaluated for a pair of fragments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SubsumptionReport {
    /// Condition 1: `N ∈ F1 ⇒ N ∈ F2`.
    pub negation_preserved: bool,
    /// Condition 2: `R ∈ F1 ⇒ R ∈ F2`.
    pub recursion_preserved: bool,
    /// Condition 3: `E ∈ F1 ⇒ (E ∈ F2 ∨ I ∈ F2)`.
    pub equations_covered: bool,
    /// Condition 4: `(I ∈ F1 ∧ R ∉ F1 ∧ N ∉ F1) ⇒ (I ∈ F2 ∨ E ∈ F2)`.
    pub intermediate_covered_without_nr: bool,
    /// Condition 5: `(I ∈ F1 ∧ (R ∈ F1 ∨ N ∈ F1)) ⇒ I ∈ F2`.
    pub intermediate_covered_with_nr: bool,
}

impl SubsumptionReport {
    /// Do all five conditions hold?
    pub fn holds(&self) -> bool {
        self.negation_preserved
            && self.recursion_preserved
            && self.equations_covered
            && self.intermediate_covered_without_nr
            && self.intermediate_covered_with_nr
    }

    /// The numbers (1–5) of the conditions that fail.
    pub fn failing_conditions(&self) -> Vec<usize> {
        [
            self.negation_preserved,
            self.recursion_preserved,
            self.equations_covered,
            self.intermediate_covered_without_nr,
            self.intermediate_covered_with_nr,
        ]
        .iter()
        .enumerate()
        .filter(|(_, ok)| !**ok)
        .map(|(i, _)| i + 1)
        .collect()
    }
}

/// Evaluate the five conditions of Theorem 6.1 for `F1 ≤ F2`.
pub fn subsumption_conditions(f1: Fragment, f2: Fragment) -> SubsumptionReport {
    use Feature::*;
    let has = |f: Fragment, x: Feature| f.contains(x);
    SubsumptionReport {
        negation_preserved: !has(f1, Negation) || has(f2, Negation),
        recursion_preserved: !has(f1, Recursion) || has(f2, Recursion),
        equations_covered: !has(f1, Equations) || has(f2, Equations) || has(f2, Intermediate),
        intermediate_covered_without_nr: !(has(f1, Intermediate)
            && !has(f1, Recursion)
            && !has(f1, Negation))
            || has(f2, Intermediate)
            || has(f2, Equations),
        intermediate_covered_with_nr: !(has(f1, Intermediate)
            && (has(f1, Recursion) || has(f1, Negation)))
            || has(f2, Intermediate),
    }
}

/// Is `F1 ≤ F2`, i.e. is every query computable in `F1` also computable in `F2`
/// (Theorem 6.1)?
pub fn subsumed_by(f1: Fragment, f2: Fragment) -> bool {
    subsumption_conditions(f1, f2).holds()
}

/// Constructively rewrite `program` (whose output relation is `output`) into the
/// target fragment, following the if-direction of Theorem 6.1 (Figure 3).
///
/// The target must subsume the program's own fragment; packing elimination is only
/// available for non-recursive programs (see DESIGN.md).
///
/// # Errors
/// * [`RewriteError::UnsupportedFeature`] if the target does not subsume the
///   program's fragment (no rewrite exists);
/// * any error of the individual elimination passes.
pub fn rewrite_into(
    program: &Program,
    output: RelName,
    target: Fragment,
) -> Result<Program, RewriteError> {
    let current = Fragment::of_program(program);
    if !subsumed_by(current, target) {
        return Err(RewriteError::UnsupportedFeature {
            rewrite: "fragment rewriting (Theorem 6.1)",
            feature: "a feature the target fragment cannot express",
        });
    }
    let mut result = program.clone();

    // Packing elimination specialises unary heads, so drop arity first when packing
    // has to go; arity can always be re-eliminated later (it is redundant).
    if !target.contains(Feature::Packing)
        && Fragment::of_program(&result).contains(Feature::Packing)
    {
        if Fragment::of_program(&result).contains(Feature::Arity) {
            result = eliminate_arity(&result)?;
        }
        result = eliminate_packing_nonrecursive(&result, output)?;
    }
    // Equations (Theorem 4.7) — only needed when the target lacks E; the rewrite
    // introduces I and A.
    if !target.contains(Feature::Equations)
        && Fragment::of_program(&result).contains(Feature::Equations)
    {
        result = eliminate_equations(&result)?;
    }
    // Intermediate predicates (Theorem 4.16) — only applicable without N and R, and
    // requires E in the target (condition 4 guarantees E ∈ F2 in that case).
    if !target.contains(Feature::Intermediate)
        && Fragment::of_program(&result).contains(Feature::Intermediate)
    {
        result = fold_intermediate_predicates(&result, output)?;
    }
    // Arity last (Theorem 4.2).
    if !target.contains(Feature::Arity) && Fragment::of_program(&result).contains(Feature::Arity) {
        result = eliminate_arity(&result)?;
    }

    // Re-eliminate equations introduced by folding/arity if the target lacks E.
    if !target.contains(Feature::Equations)
        && Fragment::of_program(&result).contains(Feature::Equations)
    {
        result = eliminate_equations(&result)?;
        if !target.contains(Feature::Arity)
            && Fragment::of_program(&result).contains(Feature::Arity)
        {
            result = eliminate_arity(&result)?;
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, rel, repeat_path, Instance};
    use seqdl_engine::run_unary_query;
    use seqdl_syntax::parse_program;

    fn frag(s: &str) -> Fragment {
        s.parse().unwrap()
    }

    #[test]
    fn reflexivity_and_monotonicity() {
        for f in Fragment::all() {
            assert!(subsumed_by(f, f), "{f} not ≤ itself");
            assert!(subsumed_by(f, Fragment::full()));
            assert!(subsumed_by(Fragment::empty(), f));
        }
    }

    #[test]
    fn transitivity_over_all_fragments() {
        let all = Fragment::all_over_einr();
        for &a in &all {
            for &b in &all {
                if !subsumed_by(a, b) {
                    continue;
                }
                for &c in &all {
                    if subsumed_by(b, c) {
                        assert!(subsumed_by(a, c), "{a} ≤ {b} ≤ {c} but not {a} ≤ {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn arity_and_packing_are_redundant_in_the_relation() {
        // F ≤ F − {A, P} for every fragment (Theorems 4.2 and 4.15).
        for f in Fragment::all() {
            assert!(subsumed_by(f, f.hat()), "{f} not ≤ {}", f.hat());
            assert!(subsumed_by(f.hat(), f));
        }
    }

    #[test]
    fn the_papers_headline_equivalences_and_separations() {
        // {E} ≡ {I} ≡ {E, I}  (Theorems 4.7, 4.16, 5.7).
        assert!(subsumed_by(frag("E"), frag("I")));
        assert!(subsumed_by(frag("I"), frag("E")));
        assert!(subsumed_by(frag("EI"), frag("E")));
        // E is primitive in the absence of I (Theorem 5.7).
        assert!(!subsumed_by(frag("E"), frag("ANPR")));
        // I is primitive in the presence of N (Theorem 5.5) and of R (Theorem 5.6).
        assert!(!subsumed_by(frag("IN"), frag("EN")));
        assert!(!subsumed_by(frag("IR"), frag("ER")));
        // Recursion and negation are primitive.
        assert!(!subsumed_by(frag("R"), frag("AEINP")));
        assert!(!subsumed_by(frag("N"), frag("AEIPR")));
        // {I, N, R} ≡ {E, I, N, R}; {I, R} ≡ {E, I, R}; {I, N} ≡ {E, I, N}.
        assert!(subsumed_by(frag("EINR"), frag("INR")));
        assert!(subsumed_by(frag("EIR"), frag("IR")));
        assert!(subsumed_by(frag("EIN"), frag("IN")));
        // {E, N} and {N} are incomparable with {R}-containing fragments lacking N.
        assert!(!subsumed_by(frag("EN"), frag("EIR")));
        assert!(!subsumed_by(frag("R"), frag("EN")));
    }

    #[test]
    fn figure_1_non_edges_fail_some_condition() {
        // {E, R} is not subsumed by {N, R} (condition 3) and vice versa (condition 1).
        let report = subsumption_conditions(frag("ER"), frag("NR"));
        assert!(!report.holds());
        assert_eq!(report.failing_conditions(), vec![3]);
        let report = subsumption_conditions(frag("NR"), frag("ER"));
        assert_eq!(report.failing_conditions(), vec![1]);
    }

    #[test]
    fn rewrite_into_moves_only_as_query_from_e_to_i() {
        // Example 3.1: the {E} program is rewritten into a fragment without E.
        let program = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        let target = frag("AI");
        let rewritten = rewrite_into(&program, rel("S"), target).unwrap();
        assert!(Fragment::of_program(&rewritten).is_subset_of(target));
        let input = Instance::unary(rel("R"), [repeat_path("a", 3), path_of(&["a", "b"])]);
        assert_eq!(
            run_unary_query(&program, &input, rel("S")).unwrap(),
            run_unary_query(&rewritten, &input, rel("S")).unwrap()
        );
    }

    #[test]
    fn rewrite_into_folds_intermediates_when_target_has_equations_only() {
        let program = parse_program("T($y) <- R(a·$y).\nS($z) <- T(b·$z).").unwrap();
        let target = frag("E");
        let rewritten = rewrite_into(&program, rel("S"), target).unwrap();
        assert!(Fragment::of_program(&rewritten).is_subset_of(target));
        let input = Instance::unary(rel("R"), [path_of(&["a", "b", "c"]), path_of(&["b", "c"])]);
        assert_eq!(
            run_unary_query(&program, &input, rel("S")).unwrap(),
            run_unary_query(&rewritten, &input, rel("S")).unwrap()
        );
    }

    #[test]
    fn rewrite_into_eliminates_packing() {
        // The packed-marker program: T stores R-strings with the Q-substring packed;
        // S reads them back.  Rewriting into {E, I} must drop the P feature.
        let program =
            parse_program("T($u·<$s>·$v) <- R($u·$s·$v), Q($s).\nS($s) <- T($u·<$s>·$v), Q($s).")
                .unwrap();
        let target = frag("EI");
        let rewritten = rewrite_into(&program, rel("S"), target).unwrap();
        assert!(
            Fragment::of_program(&rewritten).is_subset_of(target),
            "{} not within {target}: {rewritten}",
            Fragment::of_program(&rewritten)
        );
        let mut input = Instance::unary(rel("R"), [path_of(&["x", "a", "b", "y"])]);
        input
            .insert_fact(seqdl_core::Fact::new(rel("Q"), vec![path_of(&["a", "b"])]))
            .unwrap();
        assert_eq!(
            run_unary_query(&program, &input, rel("S")).unwrap(),
            run_unary_query(&rewritten, &input, rel("S")).unwrap()
        );
    }

    #[test]
    fn rewrite_into_rejects_non_subsuming_targets() {
        let program = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        assert!(rewrite_into(&program, rel("S"), frag("NR")).is_err());
    }
}
