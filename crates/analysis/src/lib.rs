//! # seqdl-analysis — static analysis and lint framework
//!
//! One pass pipeline over a program, one diagnostic vocabulary, three
//! consumers: the `seqdl check` command, the pre-flight warnings of `seqdl
//! run`/`seqdl query`, and the structural report of `seqdl analyze`.  The
//! same facts also feed the optimizer: the dead/always-false machinery is
//! shared with [`seqdl_rewrite::strip_dead`], so what the checker flags as
//! [`Lint::DeadRule`] is exactly what the `--strip-dead` rewrite removes
//! before lowering to RAM.
//!
//! The passes (see [`check_program`]):
//!
//! 1. **Well-formedness** — per-variable safety refinements (head-only,
//!    negation-shadowed, generic unsafe), arity consistency, stratification;
//!    these are error-severity because evaluation would reject the program.
//! 2. **Variable hygiene** — body variables that occur exactly once.
//! 3. **Reachability** — rules and relations that cannot contribute to the
//!    declared outputs or query goal.
//! 4. **Satisfiability** — statically empty relations (no facts, no
//!    satisfiable producing rule) and always-false rules (contradictory
//!    equations, conflicting first values via `seqdl_syntax::adornment`).
//! 5. **Redundancy** — duplicate rules (up to renaming) and subsumed rules,
//!    with a fragment-narrowing note via `seqdl_fragments` subsumption.
//! 6. **Divergence risk** — uncertified recursive cliques from
//!    `seqdl-termination`, with per-rule measures and a `--timeout` hint.
//!
//! Findings carry stable lint codes (`SD-E001`, `SD-W101`, …; see
//! [`Lint`]) and render as text or as a versioned JSON document
//! ([`check_json`]) following the `stats_json` conventions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod check;
pub mod diag;
pub mod render;

pub use check::{check_program, CheckOptions, CheckReport};
pub use diag::{Anchor, Diagnostic, Lint, Severity};
pub use render::{check_json, render_text};

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use seqdl_core::rel;
    use seqdl_syntax::parse_program;

    #[test]
    fn public_api_smoke_test() {
        let program = parse_program("T($x) <- R($x).\nS($x) <- T($x).").unwrap();
        let report = check_program(&program, &CheckOptions::for_outputs([rel("S")]));
        assert!(!report.has_errors());
        assert!(check_json(&report).contains("\"version\": 1"));
        assert!(render_text(&report).contains("check:"));
    }
}
