//! The diagnostic vocabulary: stable lint codes, severities, and per-rule
//! anchors.
//!
//! Every finding the checker can produce is one of the [`Lint`] variants
//! below; its code (`SD-…`) is a stable machine-readable identifier that
//! tooling may match on, its default [`Severity`] decides whether `seqdl
//! check` fails the program, and its [`Anchor`] points at the rule or
//! relation the finding is about.

use std::fmt;

/// How serious a diagnostic is.
///
/// Errors reject the program (evaluation would refuse it anyway); warnings
/// flag suspicious-but-legal constructs and fail `seqdl check` only under
/// `--deny warnings`; infos are observations.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// An observation; never fails a check.
    Info,
    /// Suspicious but legal; fails `seqdl check --deny warnings`.
    Warning,
    /// The program is ill-formed; evaluation would reject it.
    Error,
}

impl Severity {
    /// The stable machine-readable token (`"error"`, `"warning"`, `"info"`).
    pub fn token(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// The lints the checker knows, each with a stable code.
///
/// Codes are grouped by hundreds: `SD-E0xx` are well-formedness errors,
/// `SD-W1xx` reachability/satisfiability warnings, `SD-W2xx` variable
/// hygiene, `SD-W3xx` divergence risk, `SD-I4xx` informational notes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Lint {
    /// A rule has unlimited variables (Section 2.2) beyond the more specific
    /// cases below.
    UnsafeRule,
    /// A relation name is used with two different arities.
    InconsistentArity,
    /// The program violates stratified negation.
    NotStratified,
    /// A head variable never occurs in the rule body.
    HeadOnlyVariable,
    /// A variable occurs in the body only under negated literals, so nothing
    /// binds it.
    NegationShadowedVariable,
    /// A rule whose head relation cannot reach any output relation.
    DeadRule,
    /// An IDB relation none of whose facts can reach any output relation.
    DeadRelation,
    /// A relation that is statically empty (no facts, no satisfiable
    /// producing rule) yet read positively by some rule.
    EmptyRelation,
    /// A rule whose body is statically unsatisfiable.
    AlwaysFalseRule,
    /// A rule identical to an earlier rule up to variable renaming.
    DuplicateRule,
    /// A rule that derives a subset of what an earlier rule already derives.
    SubsumedRule,
    /// A body variable that occurs exactly once and so never constrains the
    /// result.
    UnusedVariable,
    /// A recursive clique without a termination guarantee.
    DivergenceRisk,
    /// The program's language-fragment classification.
    FragmentNote,
}

impl Lint {
    /// Every lint, in code order — the source of the README table and the
    /// JSON-schema test.
    pub const ALL: [Lint; 14] = [
        Lint::UnsafeRule,
        Lint::InconsistentArity,
        Lint::NotStratified,
        Lint::HeadOnlyVariable,
        Lint::NegationShadowedVariable,
        Lint::DeadRule,
        Lint::DeadRelation,
        Lint::EmptyRelation,
        Lint::AlwaysFalseRule,
        Lint::DuplicateRule,
        Lint::SubsumedRule,
        Lint::UnusedVariable,
        Lint::DivergenceRisk,
        Lint::FragmentNote,
    ];

    /// The stable lint code.
    pub fn code(self) -> &'static str {
        match self {
            Lint::UnsafeRule => "SD-E001",
            Lint::InconsistentArity => "SD-E002",
            Lint::NotStratified => "SD-E003",
            Lint::HeadOnlyVariable => "SD-E004",
            Lint::NegationShadowedVariable => "SD-E005",
            Lint::DeadRule => "SD-W101",
            Lint::DeadRelation => "SD-W102",
            Lint::EmptyRelation => "SD-W103",
            Lint::AlwaysFalseRule => "SD-W104",
            Lint::DuplicateRule => "SD-W105",
            Lint::SubsumedRule => "SD-W106",
            Lint::UnusedVariable => "SD-W201",
            Lint::DivergenceRisk => "SD-W301",
            Lint::FragmentNote => "SD-I401",
        }
    }

    /// The human-readable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            Lint::UnsafeRule => "unsafe-rule",
            Lint::InconsistentArity => "inconsistent-arity",
            Lint::NotStratified => "not-stratified",
            Lint::HeadOnlyVariable => "head-only-variable",
            Lint::NegationShadowedVariable => "negation-shadowed-variable",
            Lint::DeadRule => "dead-rule",
            Lint::DeadRelation => "dead-relation",
            Lint::EmptyRelation => "empty-relation",
            Lint::AlwaysFalseRule => "always-false-rule",
            Lint::DuplicateRule => "duplicate-rule",
            Lint::SubsumedRule => "subsumed-rule",
            Lint::UnusedVariable => "unused-variable",
            Lint::DivergenceRisk => "divergence-risk",
            Lint::FragmentNote => "fragment",
        }
    }

    /// The default severity.
    pub fn severity(self) -> Severity {
        match self {
            Lint::UnsafeRule
            | Lint::InconsistentArity
            | Lint::NotStratified
            | Lint::HeadOnlyVariable
            | Lint::NegationShadowedVariable => Severity::Error,
            Lint::DeadRule
            | Lint::DeadRelation
            | Lint::EmptyRelation
            | Lint::AlwaysFalseRule
            | Lint::DuplicateRule
            | Lint::SubsumedRule
            | Lint::UnusedVariable
            | Lint::DivergenceRisk => Severity::Warning,
            Lint::FragmentNote => Severity::Info,
        }
    }

    /// Look a lint up by its stable code.
    pub fn from_code(code: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.code() == code)
    }

    /// One-line description for the lint table.
    pub fn summary(self) -> &'static str {
        match self {
            Lint::UnsafeRule => "a rule variable is not limited (Section 2.2)",
            Lint::InconsistentArity => "a relation is used with two different arities",
            Lint::NotStratified => "negation is not stratified",
            Lint::HeadOnlyVariable => "a head variable never occurs in the body",
            Lint::NegationShadowedVariable => {
                "a variable occurs only under negation, so nothing binds it"
            }
            Lint::DeadRule => "the rule cannot contribute to any output relation",
            Lint::DeadRelation => "the relation cannot contribute to any output relation",
            Lint::EmptyRelation => "the relation is statically empty but read positively",
            Lint::AlwaysFalseRule => "the rule body is statically unsatisfiable",
            Lint::DuplicateRule => "the rule repeats an earlier rule up to renaming",
            Lint::SubsumedRule => "an earlier rule already derives everything this rule can",
            Lint::UnusedVariable => "a body variable occurs only once and constrains nothing",
            Lint::DivergenceRisk => "a recursive clique has no termination guarantee",
            Lint::FragmentNote => "the program's fragment classification",
        }
    }
}

/// What a diagnostic points at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Anchor {
    /// A specific rule, by stratum and index within the stratum.
    Rule {
        /// Index of the stratum.
        stratum: usize,
        /// Index of the rule within its stratum.
        rule_index: usize,
        /// Rendering of the rule.
        rule: String,
    },
    /// A relation name.
    Relation {
        /// The relation's name.
        relation: String,
    },
    /// The program as a whole.
    Program,
}

/// One finding: a lint instance with its message and anchor.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// The severity it fired at (the lint's default).
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// What the finding points at.
    pub anchor: Anchor,
}

impl Diagnostic {
    /// Build a diagnostic at the lint's default severity.
    pub fn new(lint: Lint, message: impl Into<String>, anchor: Anchor) -> Diagnostic {
        Diagnostic {
            lint,
            severity: lint.severity(),
            message: message.into(),
            anchor,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: ", self.severity, self.lint.code())?;
        match &self.anchor {
            Anchor::Rule {
                stratum,
                rule_index,
                rule,
            } => write!(f, "stratum {stratum} rule {rule_index} \"{rule}\": ")?,
            Anchor::Relation { relation } => write!(f, "relation {relation}: ")?,
            Anchor::Program => {}
        }
        f.write_str(&self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_round_trip() {
        let mut seen = std::collections::BTreeSet::new();
        for lint in Lint::ALL {
            assert!(seen.insert(lint.code()), "duplicate code {}", lint.code());
            assert_eq!(Lint::from_code(lint.code()), Some(lint));
        }
        assert_eq!(Lint::from_code("SD-X999"), None);
    }

    #[test]
    fn codes_encode_their_severity() {
        for lint in Lint::ALL {
            let expected = match lint.severity() {
                Severity::Error => "SD-E",
                Severity::Warning => "SD-W",
                Severity::Info => "SD-I",
            };
            assert!(lint.code().starts_with(expected), "{}", lint.code());
        }
    }

    #[test]
    fn diagnostics_render_with_code_and_anchor() {
        let d = Diagnostic::new(
            Lint::DeadRule,
            "unreachable from output S",
            Anchor::Rule {
                stratum: 0,
                rule_index: 1,
                rule: "U($x) <- R($x).".to_string(),
            },
        );
        let text = d.to_string();
        assert!(text.starts_with("warning[SD-W101]"), "{text}");
        assert!(text.contains("stratum 0 rule 1"), "{text}");
    }
}
