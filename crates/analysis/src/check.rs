//! The pass pipeline: run every lint over a program and collect the findings
//! into one [`CheckReport`].
//!
//! [`check_program`] is the single analysis entry point shared by `seqdl
//! check`, the pre-flight warnings of `seqdl run`/`seqdl query`, and the
//! structural halves of `seqdl analyze`/`seqdl termination` — each command
//! renders a different slice of the same report instead of re-deriving
//! program structure on its own.

use crate::diag::{Anchor, Diagnostic, Lint, Severity};
use seqdl_core::RelName;
use seqdl_fragments::{subsumed_by, Fragment};
use seqdl_rewrite::{
    needed_relations, statically_empty_relations, strip_dead_with_edb, StripReason,
};
use seqdl_syntax::analysis::{check_stratification, limited_vars};
use seqdl_syntax::{FeatureSet, Program, ProgramInfo, Rule, SyntaxError, Var};
use seqdl_termination::{analyse as analyse_termination, Measure, TerminationReport, Verdict};
use std::collections::{BTreeMap, BTreeSet};

/// What the checker should assume about the program's context.
#[derive(Clone, Debug, Default)]
pub struct CheckOptions {
    /// The output relations dead-code analysis is relative to.  Empty means
    /// "no declared outputs": reachability lints (dead rules/relations) are
    /// skipped entirely rather than flagging everything.
    pub outputs: BTreeSet<RelName>,
    /// The relations that hold at least one fact in the instance the program
    /// will run against, when known.  `None` assumes nothing about the EDB.
    pub nonempty_edb: Option<BTreeSet<RelName>>,
}

impl CheckOptions {
    /// Check relative to the given output relations, with no EDB knowledge.
    pub fn for_outputs(outputs: impl IntoIterator<Item = RelName>) -> CheckOptions {
        CheckOptions {
            outputs: outputs.into_iter().collect(),
            nonempty_edb: None,
        }
    }
}

/// Everything the pass pipeline found out about one program.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The findings, in pass order (well-formedness first).
    pub diagnostics: Vec<Diagnostic>,
    /// The outputs the reachability passes were relative to.
    pub outputs: BTreeSet<RelName>,
    /// The program's feature set.
    pub features: FeatureSet,
    /// The program's language fragment.
    pub fragment: Fragment,
    /// The termination analysis, verbatim.
    pub termination: TerminationReport,
    /// The well-formedness bundle, when the program is well-formed
    /// (`None` exactly when an error-severity diagnostic fired).
    pub info: Option<ProgramInfo>,
}

impl CheckReport {
    /// Number of diagnostics at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The distinct lint codes that fired.
    pub fn codes(&self) -> BTreeSet<&'static str> {
        self.diagnostics.iter().map(|d| d.lint.code()).collect()
    }

    /// The one-line summary `seqdl check` and `seqdl analyze` print.
    pub fn summary(&self) -> String {
        format!(
            "check: {} error(s), {} warning(s), {} info(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        )
    }

    /// Did any error-severity diagnostic fire?
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }
}

/// Render a [`Measure`] compactly: the bounded count plus each path variable
/// with its multiplicity, e.g. `1+$x` or `2+2·$y`.
fn measure_str(m: &Measure) -> String {
    let mut out = m.bounded.to_string();
    for (v, n) in &m.path_var_occurrences {
        if *n == 1 {
            out.push_str(&format!("+{v}"));
        } else {
            out.push_str(&format!("+{n}·{v}"));
        }
    }
    out
}

/// Rename the variables of a rule to canonical names in first-occurrence
/// order (`$c0`, `@c1`, …), so alpha-equivalent rules render identically.
fn canonical_rendering(rule: &Rule) -> String {
    let mut map: BTreeMap<Var, Var> = BTreeMap::new();
    let mut order: Vec<Var> = Vec::new();
    let mut note = |v: Var| {
        if !order.contains(&v) {
            order.push(v);
        }
    };
    for arg in &rule.head.args {
        for v in arg.var_occurrences() {
            note(v);
        }
    }
    for lit in &rule.body {
        for v in lit.vars() {
            note(v);
        }
    }
    for (i, v) in order.into_iter().enumerate() {
        let fresh = if v.is_atom_var() {
            Var::atom(&format!("c{i}"))
        } else {
            Var::path(&format!("c{i}"))
        };
        map.insert(v, fresh);
    }
    rule.rename_vars(&map).to_string()
}

/// The rules of a program with their (stratum, index-within-stratum)
/// coordinates, in program order.
fn indexed_rules(program: &Program) -> Vec<(usize, usize, &Rule)> {
    program
        .strata
        .iter()
        .enumerate()
        .flat_map(|(si, s)| s.rules.iter().enumerate().map(move |(ri, r)| (si, ri, r)))
        .collect()
}

fn rule_anchor(stratum: usize, rule_index: usize, rule: &Rule) -> Anchor {
    Anchor::Rule {
        stratum,
        rule_index,
        rule: rule.to_string(),
    }
}

/// Pass 1 — well-formedness: per-variable safety refinements (head-only,
/// negation-shadowed, generic unsafe), arity consistency, stratification.
fn well_formedness_pass(program: &Program, out: &mut Vec<Diagnostic>) {
    for (si, ri, rule) in indexed_rules(program) {
        let limited = limited_vars(rule);
        let body_vars: BTreeSet<Var> = rule.body.iter().flat_map(|l| l.vars()).collect();
        let positive_vars: BTreeSet<Var> = rule
            .body
            .iter()
            .filter(|l| l.positive)
            .flat_map(|l| l.vars())
            .collect();
        let mut generic: Vec<String> = Vec::new();
        for v in rule.vars() {
            if limited.contains(&v) {
                continue;
            }
            if !body_vars.contains(&v) {
                out.push(Diagnostic::new(
                    Lint::HeadOnlyVariable,
                    format!("head variable {v} never occurs in the body"),
                    rule_anchor(si, ri, rule),
                ));
            } else if !positive_vars.contains(&v) {
                out.push(Diagnostic::new(
                    Lint::NegationShadowedVariable,
                    format!("variable {v} occurs only under negation, so nothing binds it"),
                    rule_anchor(si, ri, rule),
                ));
            } else {
                generic.push(v.to_string());
            }
        }
        if !generic.is_empty() {
            out.push(Diagnostic::new(
                Lint::UnsafeRule,
                format!("unlimited variable(s) {}", generic.join(", ")),
                rule_anchor(si, ri, rule),
            ));
        }
    }
    if let Err(SyntaxError::InconsistentArity {
        relation,
        first,
        second,
    }) = program.relation_arities()
    {
        out.push(Diagnostic::new(
            Lint::InconsistentArity,
            format!("used with arity {first} and with arity {second}"),
            Anchor::Relation { relation },
        ));
    }
    if let Err(SyntaxError::NotStratified { message }) = check_stratification(program) {
        out.push(Diagnostic::new(
            Lint::NotStratified,
            message,
            Anchor::Program,
        ));
    }
}

/// Pass 2 — variable hygiene: body variables that occur exactly once.
fn variable_pass(program: &Program, out: &mut Vec<Diagnostic>) {
    for (si, ri, rule) in indexed_rules(program) {
        let limited = limited_vars(rule);
        let mut occurrences: BTreeMap<Var, usize> = BTreeMap::new();
        let count_expr = |e: &seqdl_syntax::PathExpr, occ: &mut BTreeMap<Var, usize>| {
            for v in e.var_occurrences() {
                *occ.entry(v).or_insert(0) += 1;
            }
        };
        for arg in &rule.head.args {
            count_expr(arg, &mut occurrences);
        }
        for lit in &rule.body {
            match &lit.atom {
                seqdl_syntax::Atom::Pred(p) => {
                    for arg in &p.args {
                        count_expr(arg, &mut occurrences);
                    }
                }
                seqdl_syntax::Atom::Eq(eq) => {
                    count_expr(&eq.lhs, &mut occurrences);
                    count_expr(&eq.rhs, &mut occurrences);
                }
            }
        }
        for (v, n) in occurrences {
            // A limited variable with a single occurrence sits in the body
            // (head-only variables are unlimited) and constrains nothing.
            if n == 1 && limited.contains(&v) {
                out.push(Diagnostic::new(
                    Lint::UnusedVariable,
                    format!("variable {v} occurs only once and constrains nothing"),
                    rule_anchor(si, ri, rule),
                ));
            }
        }
    }
}

/// Passes 3 and 4 — reachability and satisfiability: dead rules and
/// relations relative to the outputs, statically empty relations, and
/// always-false rules.  Reuses the [`seqdl_rewrite::strip_dead`] machinery so
/// the lints agree exactly with what the `--strip-dead` optimisation removes.
fn reachability_pass(program: &Program, options: &CheckOptions, out: &mut Vec<Diagnostic>) {
    let empty = statically_empty_relations(program, options.nonempty_edb.as_ref());
    let positively_read: BTreeSet<RelName> = program
        .rules()
        .flat_map(|r| r.positive_body_predicates())
        .map(|p| p.relation)
        .collect();
    for relation in &empty {
        if positively_read.contains(relation) {
            out.push(Diagnostic::new(
                Lint::EmptyRelation,
                "statically empty (no facts, no satisfiable producing rule) but read positively",
                Anchor::Relation {
                    relation: relation.to_string(),
                },
            ));
        }
    }

    if options.outputs.is_empty() {
        // Without declared outputs everything is "dead"; report only the
        // unconditional satisfiability findings.
        for (si, ri, rule) in indexed_rules(program) {
            if let Some(reason) = seqdl_rewrite::always_false_reason(rule, &empty) {
                out.push(Diagnostic::new(
                    Lint::AlwaysFalseRule,
                    reason.to_string(),
                    rule_anchor(si, ri, rule),
                ));
            }
        }
        return;
    }

    let report = strip_dead_with_edb(program, &options.outputs, options.nonempty_edb.as_ref());
    let outputs: Vec<String> = options.outputs.iter().map(|r| r.to_string()).collect();
    let outputs = outputs.join(", ");
    for removed in &report.removed {
        let anchor = Anchor::Rule {
            stratum: removed.stratum,
            rule_index: removed.rule_index,
            rule: removed.rule.clone(),
        };
        match &removed.reason {
            StripReason::Unreachable => out.push(Diagnostic::new(
                Lint::DeadRule,
                format!("cannot contribute to output(s) {outputs}"),
                anchor,
            )),
            reason => out.push(Diagnostic::new(
                Lint::AlwaysFalseRule,
                reason.to_string(),
                anchor,
            )),
        }
    }
    let needed = needed_relations(program, &options.outputs);
    for relation in program.idb_relations() {
        if !needed.contains(&relation) {
            out.push(Diagnostic::new(
                Lint::DeadRelation,
                format!("cannot contribute to output(s) {outputs}"),
                Anchor::Relation {
                    relation: relation.to_string(),
                },
            ));
        }
    }
}

/// Pass 5 — duplicate and subsumed rules.
///
/// Duplicates are exact repeats up to variable renaming (first-occurrence
/// canonicalization).  A rule is subsumed when an earlier rule has the same
/// head and a strict subset of its body literals: every valuation satisfying
/// the larger body satisfies the smaller one, so the later rule derives
/// nothing new.  Both checks are syntactic (shared variable names for
/// subsumption), hence conservative.
///
/// Returns the (stratum, rule index) coordinates of every redundant rule, so
/// the caller can reason about the program minus exactly those copies —
/// coordinates, not renderings, because a textually identical duplicate
/// shares its rendering with the kept original.
fn duplicate_pass(program: &Program, out: &mut Vec<Diagnostic>) -> BTreeSet<(usize, usize)> {
    let rules = indexed_rules(program);
    let mut canonical_seen: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut redundant: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (si, ri, rule) in &rules {
        let key = canonical_rendering(rule);
        match canonical_seen.get(&key) {
            Some((fs, fr)) => {
                redundant.insert((*si, *ri));
                out.push(Diagnostic::new(
                    Lint::DuplicateRule,
                    format!("repeats stratum {fs} rule {fr} up to variable renaming"),
                    rule_anchor(*si, *ri, rule),
                ));
            }
            None => {
                canonical_seen.insert(key, (*si, *ri));
            }
        }
    }
    for (si, ri, rule) in &rules {
        if redundant.contains(&(*si, *ri)) {
            continue;
        }
        let body: BTreeSet<String> = rule.body.iter().map(|l| l.to_string()).collect();
        for (oi, oj, other) in &rules {
            if (oi, oj) == (si, ri) || redundant.contains(&(*oi, *oj)) {
                continue;
            }
            let other_body: BTreeSet<String> = other.body.iter().map(|l| l.to_string()).collect();
            if other.head == rule.head
                && other_body.is_subset(&body)
                && other_body.len() < body.len()
            {
                redundant.insert((*si, *ri));
                out.push(Diagnostic::new(
                    Lint::SubsumedRule,
                    format!(
                        "stratum {oi} rule {oj} already derives everything this rule can \
                         (its body is a subset of this one)"
                    ),
                    rule_anchor(*si, *ri, rule),
                ));
                break;
            }
        }
    }
    redundant
}

/// Pass 6 — divergence risk: cliques the termination analysis could not
/// certify, with per-rule measures and a `--timeout` suggestion.
fn divergence_pass(program: &Program, report: &TerminationReport, out: &mut Vec<Diagnostic>) {
    if report.verdict == Verdict::Terminating {
        return;
    }
    for clique in &report.cliques {
        if clique.guarantee.is_some() {
            continue;
        }
        let relations: Vec<String> = clique.relations.iter().map(|r| r.to_string()).collect();
        for offending in &clique.offending_rules {
            // The report carries the rule's coordinates in the very program
            // we analysed, so the lookup is a direct index — no rendering
            // comparison that could silently miss or conflate duplicates.
            let rule = program
                .strata
                .get(offending.stratum)
                .and_then(|s| s.rules.get(offending.rule_index));
            let Some(rule) = rule else {
                // Coordinates out of range would mean the report came from a
                // different program; still surface the risk rather than
                // dropping the diagnostic.
                out.push(Diagnostic::new(
                    Lint::DivergenceRisk,
                    format!(
                        "recursion through {{{}}} has no termination guarantee (offending rule \
                         {}); consider running with --timeout",
                        relations.join(", "),
                        offending.rule,
                    ),
                    Anchor::Program,
                ));
                continue;
            };
            let head = Measure::of_predicate(&rule.head);
            let body = rule
                .positive_body_predicates()
                .iter()
                .filter(|p| clique.relations.contains(&p.relation))
                .map(|p| Measure::of_predicate(p))
                .max_by_key(Measure::total)
                .unwrap_or_default();
            out.push(Diagnostic::new(
                Lint::DivergenceRisk,
                format!(
                    "recursion through {{{}}} has no termination guarantee: head measure {} is \
                     not bounded by any clique body measure (largest {}); consider running with \
                     --timeout",
                    relations.join(", "),
                    measure_str(&head),
                    measure_str(&body),
                ),
                rule_anchor(offending.stratum, offending.rule_index, rule),
            ));
        }
    }
}

/// Run the full pass pipeline over `program`.
///
/// This never fails: ill-formed programs come back as error-severity
/// diagnostics (with `report.info == None`) rather than an `Err`, so the
/// checker can keep reporting past the first problem.
pub fn check_program(program: &Program, options: &CheckOptions) -> CheckReport {
    let mut diagnostics = Vec::new();
    well_formedness_pass(program, &mut diagnostics);
    variable_pass(program, &mut diagnostics);
    reachability_pass(program, options, &mut diagnostics);
    let redundant = duplicate_pass(program, &mut diagnostics);
    let termination = analyse_termination(program);
    divergence_pass(program, &termination, &mut diagnostics);

    let features = FeatureSet::of_program(program);
    let fragment = Fragment::of_program(program);
    let mut fragment_note = format!("program lies in fragment {fragment}");
    if !redundant.is_empty() {
        // Dropping redundant rules can only shrink the fragment, and a
        // smaller fragment always subsumes into the original (Theorem 6.1).
        // Filter by coordinates, not renderings: a textually identical
        // duplicate renders the same as its kept original.
        let kept: Vec<&Rule> = indexed_rules(program)
            .into_iter()
            .filter(|(si, ri, _)| !redundant.contains(&(*si, *ri)))
            .map(|(_, _, r)| r)
            .collect();
        let reduced = Fragment::of_program(&Program::single_stratum(
            kept.into_iter().cloned().collect(),
        ));
        if reduced != fragment && subsumed_by(reduced, fragment) {
            fragment_note.push_str(&format!(
                "; dropping the redundant rules narrows it to {reduced}"
            ));
        }
    }
    diagnostics.push(Diagnostic::new(
        Lint::FragmentNote,
        fragment_note,
        Anchor::Program,
    ));

    let has_errors = diagnostics.iter().any(|d| d.severity == Severity::Error);
    let info = if has_errors {
        None
    } else {
        ProgramInfo::analyse(program).ok()
    };
    CheckReport {
        diagnostics,
        outputs: options.outputs.clone(),
        features,
        fragment,
        termination,
        info,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use seqdl_core::rel;
    use seqdl_syntax::parse_program;

    fn check(src: &str, outputs: &[&str]) -> CheckReport {
        let program = parse_program(src).unwrap();
        let options = CheckOptions::for_outputs(outputs.iter().map(|n| rel(n)));
        check_program(&program, &options)
    }

    fn codes(report: &CheckReport) -> BTreeSet<&'static str> {
        report.codes()
    }

    #[test]
    fn clean_program_reports_only_the_fragment_note() {
        let report = check("T($x) <- R($x).\nS($x) <- T($x).", &["S"]);
        assert_eq!(codes(&report), BTreeSet::from(["SD-I401"]));
        assert!(!report.has_errors());
        assert!(report.info.is_some());
        assert_eq!(
            report.summary(),
            "check: 0 error(s), 0 warning(s), 1 info(s)"
        );
    }

    #[test]
    fn head_only_and_negation_shadowed_variables_refine_unsafe() {
        let report = check("S($x, $y) <- R($x).", &["S"]);
        assert!(
            codes(&report).contains("SD-E004"),
            "{:?}",
            report.diagnostics
        );
        let report = check("S($x) <- R($x), !B($y).", &["S"]);
        assert!(
            codes(&report).contains("SD-E005"),
            "{:?}",
            report.diagnostics
        );
        assert!(report.info.is_none());
    }

    #[test]
    fn dead_rules_and_relations_fire_together() {
        let report = check("T($x) <- R($x).\nU($x) <- R($x).\nS($x) <- T($x).", &["S"]);
        assert!(codes(&report).contains("SD-W101"));
        assert!(codes(&report).contains("SD-W102"));
    }

    #[test]
    fn duplicates_are_detected_up_to_renaming() {
        let report = check("S($x) <- R($x).\nS($y) <- R($y).", &["S"]);
        assert!(
            codes(&report).contains("SD-W105"),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn subsumed_rules_are_detected() {
        let report = check("S($x) <- R($x).\nS($x) <- R($x), B($x).", &["S"]);
        assert!(
            codes(&report).contains("SD-W106"),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn textually_identical_duplicates_keep_the_original_in_the_kept_set() {
        // Both copies render identically; the kept set must retain the first
        // one, so the "reduced" program still has the equation and the note
        // cannot claim a narrowing that deduplication alone would not give.
        let report = check(
            "S($x) <- R($x), a·$x = $x·a.\nS($x) <- R($x), a·$x = $x·a.",
            &["S"],
        );
        assert!(codes(&report).contains("SD-W105"), "{:?}", report.diagnostics);
        let note = report
            .diagnostics
            .iter()
            .find(|d| d.lint == Lint::FragmentNote)
            .unwrap();
        assert!(
            !note.message.contains("narrows"),
            "dropping one identical copy must not narrow the fragment: {}",
            note.message
        );
    }

    #[test]
    fn duplicate_offending_rules_get_their_own_divergence_anchors() {
        // Two textually identical uncertified recursive rules: each must be
        // anchored at its own coordinates, not both at the first occurrence.
        let report = check("T(a).\nT(a·$x) <- T($x).\nT(a·$x) <- T($x).", &["T"]);
        let anchors: Vec<(usize, usize)> = report
            .diagnostics
            .iter()
            .filter(|d| d.lint == Lint::DivergenceRisk)
            .filter_map(|d| match &d.anchor {
                Anchor::Rule {
                    stratum,
                    rule_index,
                    ..
                } => Some((*stratum, *rule_index)),
                _ => None,
            })
            .collect();
        assert_eq!(anchors.len(), 2, "{:?}", report.diagnostics);
        assert_ne!(anchors[0], anchors[1], "anchors must be distinct");
    }

    #[test]
    fn unused_variables_warn_but_do_not_error() {
        let report = check("S($x) <- R($x), B($y).", &["S"]);
        assert!(codes(&report).contains("SD-W201"));
        assert!(!report.has_errors());
    }

    #[test]
    fn divergence_risk_carries_measures_and_a_timeout_hint() {
        let report = check("T(a).\nT(a·$x) <- T($x).", &["T"]);
        let diag = report
            .diagnostics
            .iter()
            .find(|d| d.lint == Lint::DivergenceRisk)
            .unwrap();
        assert!(diag.message.contains("--timeout"), "{}", diag.message);
        assert!(diag.message.contains("head measure"), "{}", diag.message);
    }

    #[test]
    fn empty_edb_knowledge_produces_empty_relation_lints() {
        let program = parse_program("T($x) <- B($x).\nS($x) <- T($x).\nS($x) <- R($x).").unwrap();
        let options = CheckOptions {
            outputs: BTreeSet::from([rel("S")]),
            nonempty_edb: Some(BTreeSet::from([rel("R")])),
        };
        let report = check_program(&program, &options);
        assert!(
            report.codes().contains("SD-W103"),
            "{:?}",
            report.diagnostics
        );
        assert!(report.codes().contains("SD-W104"));
    }

    #[test]
    fn always_false_rules_are_reported_without_outputs_too() {
        let program = parse_program("S($x) <- R($x), a·$x = b·$x.").unwrap();
        let report = check_program(&program, &CheckOptions::default());
        assert!(report.codes().contains("SD-W104"));
        // No outputs declared: nothing is reported dead.
        assert!(!report.codes().contains("SD-W101"));
    }
}
