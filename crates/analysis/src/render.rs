//! Rendering a [`CheckReport`] for humans (text) and for tooling (JSON).
//!
//! The JSON document follows the `stats_json` conventions of
//! `seqdl-engine`: hand-rolled (no serde in this workspace), versioned
//! through a top-level `"version"` field, and pinned by
//! `crates/bench/tests/check_json_schema.rs`:
//!
//! ```json
//! {
//!   "version": 1,
//!   "outputs": ["S"],
//!   "fragment": "IR",
//!   "termination": {"verdict": "terminating"},
//!   "summary": {"errors": 0, "warnings": 2, "infos": 1},
//!   "diagnostics": [
//!     {"code": "SD-W101", "name": "dead-rule", "severity": "warning",
//!      "message": "cannot contribute to output(s) S",
//!      "anchor": {"kind": "rule", "stratum": 0, "rule_index": 1,
//!                 "rule": "U($x) <- R($x)."}}
//!   ]
//! }
//! ```
//!
//! `anchor.kind` is `"rule"` (with `stratum`, `rule_index`, `rule`),
//! `"relation"` (with `relation`), or `"program"` (no further fields).

use crate::check::CheckReport;
use crate::diag::{Anchor, Severity};
use seqdl_termination::Verdict;
use seqdl_trace::json_escape;
use std::fmt::Write as _;

/// Render the report as human-readable text: one line per diagnostic, then
/// the summary line.
pub fn render_text(report: &CheckReport) -> String {
    let mut out = String::new();
    for diag in &report.diagnostics {
        let _ = writeln!(out, "{diag}");
    }
    let _ = writeln!(out, "{}", report.summary());
    out
}

fn anchor_json(anchor: &Anchor) -> String {
    match anchor {
        Anchor::Rule {
            stratum,
            rule_index,
            rule,
        } => format!(
            "{{\"kind\":\"rule\",\"stratum\":{stratum},\"rule_index\":{rule_index},\"rule\":\"{}\"}}",
            json_escape(rule)
        ),
        Anchor::Relation { relation } => format!(
            "{{\"kind\":\"relation\",\"relation\":\"{}\"}}",
            json_escape(relation)
        ),
        Anchor::Program => "{\"kind\":\"program\"}".to_string(),
    }
}

/// Serialize the report as the versioned JSON document described in the
/// [module docs](self).
#[must_use]
pub fn check_json(report: &CheckReport) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"version\": 1,");
    let outputs: Vec<String> = report
        .outputs
        .iter()
        .map(|r| format!("\"{}\"", json_escape(&r.to_string())))
        .collect();
    let _ = writeln!(out, "  \"outputs\": [{}],", outputs.join(", "));
    let _ = writeln!(
        out,
        "  \"fragment\": \"{}\",",
        json_escape(&report.features.letters())
    );
    let verdict = match report.termination.verdict {
        Verdict::Terminating => "terminating",
        Verdict::Unknown => "unknown",
    };
    let _ = writeln!(out, "  \"termination\": {{\"verdict\": \"{verdict}\"}},");
    let _ = writeln!(
        out,
        "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"infos\": {}}},",
        report.count(Severity::Error),
        report.count(Severity::Warning),
        report.count(Severity::Info),
    );
    out.push_str("  \"diagnostics\": [");
    for (i, diag) in report.diagnostics.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"code\": \"{}\", \"name\": \"{}\", \"severity\": \"{}\", \
             \"message\": \"{}\", \"anchor\": {}}}",
            if i == 0 { "" } else { "," },
            diag.lint.code(),
            diag.lint.name(),
            diag.severity.token(),
            json_escape(&diag.message),
            anchor_json(&diag.anchor),
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::check::{check_program, CheckOptions};
    use seqdl_core::rel;
    use seqdl_syntax::parse_program;

    fn sample() -> CheckReport {
        let program = parse_program("T($x) <- R($x).\nU($x) <- R($x).\nS($x) <- T($x).").unwrap();
        check_program(&program, &CheckOptions::for_outputs([rel("S")]))
    }

    #[test]
    fn text_rendering_lists_diagnostics_and_summary() {
        let text = render_text(&sample());
        assert!(text.contains("warning[SD-W101]"), "{text}");
        assert!(text.contains("check: 0 error(s)"), "{text}");
    }

    #[test]
    fn json_document_carries_every_section() {
        let doc = check_json(&sample());
        for key in [
            "\"version\": 1",
            "\"outputs\": [\"S\"]",
            "\"termination\": {\"verdict\": \"terminating\"}",
            "\"summary\": {\"errors\": 0,",
            "\"code\": \"SD-W101\"",
            "\"severity\": \"warning\"",
            "\"kind\":\"rule\"",
            "\"rule_index\":",
        ] {
            assert!(doc.contains(key), "missing {key} in:\n{doc}");
        }
    }
}
