//! A minimal, self-contained JSON parser (the workspace vendors no serde).
//!
//! Shared by the schema tests for the recorded bench medians
//! (`tests/bench_json_schema.rs` over `BENCH_engine.json`), for the
//! `--stats-format json` evaluation-statistics document
//! (`tests/stats_json_schema.rs`), and for the `--trace-out` Chrome
//! trace-event export.  It parses exactly the JSON grammar — stricter than
//! `f64::from_str` on numbers — and rejects duplicate object keys, so the
//! hand-rolled writers in `seqdl-engine` and `seqdl-trace` are validated
//! against an independent reader.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is not preserved (duplicate keys are a parse
    /// error).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, or `None` for non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The object's map, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(self.error(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(out));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.error("bad \\u hex"))?,
                                16,
                            )
                            .map_err(|_| self.error("bad \\u hex"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(self.error(&format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.error("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        // `f64::from_str` is laxer than the JSON grammar (it accepts `+1`,
        // `1.`, `.5`, `01`); validate the token shape strictly first.
        if !json_number_shape(text) {
            return Err(self.error("invalid number"));
        }
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Does `text` match the JSON number grammar
/// (`-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`)?
fn json_number_shape(text: &str) -> bool {
    let mut rest = text.strip_prefix('-').unwrap_or(text).as_bytes();
    // Integer part: `0` or a nonzero-led digit run.
    match rest {
        [b'0', tail @ ..] => rest = tail,
        [b'1'..=b'9', ..] => {
            let digits = rest.iter().take_while(|b| b.is_ascii_digit()).count();
            rest = &rest[digits..];
        }
        _ => return false,
    }
    if let [b'.', tail @ ..] = rest {
        let digits = tail.iter().take_while(|b| b.is_ascii_digit()).count();
        if digits == 0 {
            return false;
        }
        rest = &tail[digits..];
    }
    if let [b'e' | b'E', tail @ ..] = rest {
        let tail = match tail {
            [b'+' | b'-', t @ ..] => t,
            t => t,
        };
        let digits = tail.iter().take_while(|b| b.is_ascii_digit()).count();
        if digits == 0 {
            return false;
        }
        rest = &tail[digits..];
    }
    rest.is_empty()
}

/// Parse one complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
/// A description of the first syntax error with its byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "{",
            "{\"a\": }",
            "[1, 2,, 3]",
            "{\"a\": 1} trailing",
            "{\"a\": 1, \"a\": 2}",
            "\"unterminated",
            // Numbers f64::from_str accepts but the JSON grammar does not.
            "{\"a\": +1}",
            "{\"a\": 1.}",
            "{\"a\": .5}",
            "{\"a\": 01}",
            "{\"a\": 1e}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed JSON: {bad:?}");
        }
        assert!(parse("{\"x\": [1, 2.5, -3e2, 1e+4, 0.25E-2, true, null, \"s\"]}").is_ok());
    }

    #[test]
    fn accessors_narrow_by_type() {
        let doc = parse("{\"n\": 2, \"s\": \"x\", \"a\": [1], \"o\": {}}").unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_number), Some(2.0));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert!(doc.get("o").and_then(Json::as_object).is_some());
        assert!(doc.get("missing").is_none());
        assert!(doc.as_number().is_none());
    }
}
