//! Textual reproduction of every figure of the paper plus the derived experiment
//! tables recorded in EXPERIMENTS.md.
//!
//! Usage: `cargo run -p seqdl-bench --bin harness [--release] [--threads N] [--mem-stats] [--no-ram]
//! [--stats-format text|json] [--profile] [--trace-out trace.json] [section…]`
//! where `section` is any of `fig1 fig2 fig3 arity equations packing folding
//! linearity reachability nfa query algebra regex termination`; with no arguments every section is printed.
//! `--threads N` sets the worker-pool size of the stratified executor columns in
//! the reachability and NFA sections (default 1; 0 = all cores).
//! `--mem-stats` appends memory-footprint columns (result facts, distinct
//! interned paths, approximate store KiB) to the reachability and NFA rows and
//! a peak-RSS footer per section; store numbers are cumulative per process.
//! `--no-ram` runs the reachability, NFA, and query sections through the legacy
//! tree-walking matcher instead of the lowered RAM instruction programs.
//! `--stats-format json` appends the machine-readable evaluation-statistics
//! document (the `seqdl --stats-format json` schema) for the largest workload
//! of the reachability, NFA, and query sections; `--profile` appends the
//! per-rule hot-rules table for the same runs; `--trace-out FILE` records the
//! reachability section's largest executor run as Chrome trace-event JSON
//! (open at https://ui.perfetto.dev).

use seqdl_bench as drivers;
use seqdl_engine::FixpointStrategy;
use std::time::Instant;

/// The observability add-ons requested for the reachability/NFA/query
/// sections.
struct Observability {
    json: bool,
    profile: bool,
    trace_out: Option<String>,
}

impl Observability {
    fn active(&self) -> bool {
        self.json || self.profile || self.trace_out.is_some()
    }

    /// Print the requested per-run add-ons for one labeled workload.
    fn emit(&self, label: &str, stats: &seqdl_engine::EvalStats) {
        if self.profile {
            println!("per-rule profile ({label}, hottest first):");
            let mut order: Vec<&seqdl_engine::RuleStats> = stats.rules.iter().collect();
            order.sort_by(|a, b| {
                b.wall
                    .cmp(&a.wall)
                    .then_with(|| (a.stratum, a.rule_ix).cmp(&(b.stratum, b.rule_ix)))
            });
            for r in order {
                println!(
                    "  s{}r{}: {} firing(s), {} fact(s), {:?}, {} probe(s), {} scan(s) — {}",
                    r.stratum,
                    r.rule_ix,
                    r.firings,
                    r.derived_facts,
                    r.wall,
                    r.index_probes,
                    r.scans,
                    r.rule
                );
            }
        }
        if self.json {
            println!("stats json ({label}):");
            print!(
                "{}",
                seqdl_engine::stats_json(stats, &seqdl_core::store_stats(), None)
            );
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = match args.iter().position(|a| a == "--threads") {
        Some(i) => {
            let value = args.get(i + 1).and_then(|v| v.parse::<usize>().ok());
            let Some(value) = value else {
                eprintln!("--threads expects a number");
                std::process::exit(2);
            };
            args.drain(i..=i + 1);
            value
        }
        None => 1,
    };
    let mem_stats = match args.iter().position(|a| a == "--mem-stats") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    let use_ram = match args.iter().position(|a| a == "--no-ram") {
        Some(i) => {
            args.remove(i);
            false
        }
        None => true,
    };
    let json = match args.iter().position(|a| a == "--stats-format") {
        Some(i) => {
            let value = args.get(i + 1).cloned();
            match value.as_deref() {
                Some("json") => {
                    args.drain(i..=i + 1);
                    true
                }
                Some("text") => {
                    args.drain(i..=i + 1);
                    false
                }
                _ => {
                    eprintln!("--stats-format expects `text` or `json`");
                    std::process::exit(2);
                }
            }
        }
        None => false,
    };
    let profile = match args.iter().position(|a| a == "--profile") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    let trace_out = match args.iter().position(|a| a == "--trace-out") {
        Some(i) => {
            let Some(value) = args.get(i + 1).cloned() else {
                eprintln!("--trace-out expects a file path");
                std::process::exit(2);
            };
            args.drain(i..=i + 1);
            Some(value)
        }
        None => None,
    };
    let obs = Observability {
        json,
        profile,
        trace_out,
    };
    let args = args;
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    if want("fig1") {
        section("FIG-1  Figure 1: Hasse diagram of fragment expressiveness");
        let diagram = drivers::figure1_diagram();
        println!(
            "equivalence classes over the 16 {{E,I,N,R}} fragments: {} (paper: 11)",
            diagram.classes.len()
        );
        println!(
            "equivalence classes over all 64 fragments (A, P included): {} (paper: 11, since A and P are redundant)",
            drivers::figure1_class_count_full()
        );
        println!("{}", diagram.render_text());
    }

    if want("fig2") {
        section("FIG-2  Figure 2: associative unification of  $x·<@y·$z>·@w = $u·$v·$u");
        let start = Instant::now();
        let solutions = drivers::figure2_solutions();
        println!(
            "search tree: {} nodes, {} successful branches (paper: 4), {} failure leaves  [{:?}]",
            solutions.tree.len(),
            solutions.tree.success_count(),
            solutions.tree.failure_count(),
            start.elapsed()
        );
        println!("complete set of symbolic solutions (paper lists 4):");
        for s in &solutions.solutions {
            println!("  {s}");
        }
        println!("\nunification scaling ($x1·…·$xk = a^n, number of symbolic solutions):");
        println!("{:>4} {:>4} {:>12}", "k", "n", "solutions");
        for k in [2usize, 3, 4] {
            for n in [4usize, 8, 12] {
                println!(
                    "{:>4} {:>4} {:>12}",
                    k,
                    n,
                    drivers::unify_split_family(k, n)
                );
            }
        }
    }

    if want("fig3") {
        section("FIG-3  Theorem 6.1: deciding F1 ≤ F2 for all 64×64 fragment pairs");
        let start = Instant::now();
        let subsumed = drivers::figure3_decide_all();
        println!("subsumed pairs: {subsumed} / 4096  [{:?}]", start.elapsed());
    }

    if want("arity") {
        section("EXP-A  Theorem 4.2: arity elimination (reversal query, Example 4.3)");
        println!("{:>8} {:>10} {:>10}", "max len", "original", "rewritten");
        for n in [4usize, 8, 16] {
            let (a, b) = drivers::arity_ablation(n);
            println!("{n:>8} {a:>10} {b:>10}");
        }
    }

    if want("equations") {
        section("EXP-E  Theorem 4.7: the only-a's query in {E}, {A,I}, {A,I,R}");
        println!("{:>6} {:>8} {:>8} {:>8}", "n", "{E}", "{A,I}", "{A,I,R}");
        for n in [4usize, 16, 64] {
            let sizes = drivers::equations_ablation(n);
            println!("{:>6} {:>8} {:>8} {:>8}", n, sizes[0], sizes[1], sizes[2]);
        }
        println!("\nnegated-equation elimination (Example 4.6), output sizes before/after:");
        for n in [2usize, 3, 4] {
            let (a, b) = drivers::equation_elimination_ablation(n);
            println!("  n = {n}: {a} vs {b}");
        }
    }

    if want("packing") {
        section("EXP-P  Lemma 4.13 / Example 4.14: packing elimination (Example 2.2)");
        for hay in [6usize, 10, 14] {
            let (rules, agree) = drivers::packing_ablation(hay);
            println!(
                "haystack length {hay:>3}: rewritten program has {rules} rules (paper: 28); answers agree: {agree}"
            );
        }
    }

    if want("folding") {
        section("EXP-I  Theorem 4.16: intermediate-predicate folding");
        println!(
            "{:>8} {:>8} {:>10} {:>10}",
            "strings", "max len", "original", "folded"
        );
        for (s, l) in [(4usize, 4usize), (8, 6), (16, 8)] {
            let (a, b) = drivers::folding_ablation(s, l);
            println!("{s:>8} {l:>8} {a:>10} {b:>10}");
        }
    }

    if want("linearity") {
        section("EXP-L  Lemma 5.1 vs Theorem 5.3: output-length growth on R(a^n)");
        println!(
            "{:>4} {:>16} {:>20} {:>16}",
            "n", "squaring (n^2)", "nonrecursive output", "Lemma 5.1 bound"
        );
        let bound_program = seqdl_fragments::witnesses::only_as_equation().program;
        for n in [2usize, 4, 8, 16] {
            println!(
                "{:>4} {:>16} {:>20} {:>16}",
                n,
                drivers::squaring_output_length(n),
                drivers::nonrecursive_output_length(n),
                drivers::lemma51_bound(&bound_program, n)
            );
        }
    }

    if want("reachability") {
        section("EXP-B  Section 5.1.1: graph reachability, naive vs semi-naive vs exec");
        let mem_cols = if mem_stats {
            format!(" {:>9} {:>9} {:>10}", "facts", "paths", "store KiB")
        } else {
            String::new()
        };
        println!(
            "{:>8} {:>8} {:>12} {:>12} {:>12}{mem_cols}",
            "nodes",
            "edges",
            "naive",
            "semi-naive",
            format!("exec({threads})")
        );
        for (nodes, edges) in [
            (8usize, 16usize),
            (16, 48),
            (32, 128),
            (64, 384),
            (128, 1024),
        ] {
            let t1 = Instant::now();
            let semi_result = drivers::reachability_result_configured(nodes, edges, use_ram);
            let t_semi = t1.elapsed();
            let semi = drivers::reachability_answer(&semi_result);
            // The quadratic naive baseline is only tractable at the small end.
            let naive_time = (nodes <= 32).then(|| {
                let t0 = Instant::now();
                let naive = drivers::reachability_run_configured(
                    nodes,
                    edges,
                    FixpointStrategy::Naive,
                    use_ram,
                );
                let elapsed = t0.elapsed();
                assert_eq!(naive, semi);
                elapsed
            });
            let t2 = Instant::now();
            let parallel =
                drivers::reachability_run_parallel_configured(nodes, edges, threads, use_ram);
            let t_exec = t2.elapsed();
            assert_eq!(semi, parallel, "executor must agree with the engine");
            let naive_col = naive_time.map_or("-".to_string(), |t| format!("{t:?}"));
            let mem_cols = if mem_stats {
                let m = drivers::mem_snapshot(&semi_result);
                format!(
                    " {:>9} {:>9} {:>10}",
                    m.facts,
                    m.distinct_paths,
                    m.store_bytes / 1024
                )
            } else {
                String::new()
            };
            println!(
                "{nodes:>8} {edges:>8} {naive_col:>12} {:>12?} {:>12?}{mem_cols}   (reachable: {semi})",
                t_semi, t_exec
            );
        }
        if mem_stats {
            println!("peak RSS: {} KiB", drivers::peak_rss_kib());
        }
        if obs.active() {
            // One extra run of the largest workload with the add-ons applied:
            // the trace session wraps exactly this run, so the exported spans
            // show one executor schedule with real thread ids.
            let trace = obs
                .trace_out
                .as_ref()
                .map(|p| (p.clone(), seqdl_trace::start()));
            let (_, stats) =
                drivers::reachability_exec_stats_configured(128, 1024, threads, use_ram);
            if let Some((path, session)) = trace {
                let events = session.finish();
                std::fs::write(&path, seqdl_trace::chrome_trace_json(&events))
                    .expect("write trace file");
                println!("trace: {} event(s) written to {path}", events.len());
            }
            obs.emit(&format!("reachability 128x1024, exec({threads})"), &stats);
        }
    }

    if want("nfa") {
        section("EXP-NFA  Example 2.1: NFA acceptance, naive vs semi-naive vs exec");
        let mem_cols = if mem_stats {
            format!(" {:>9} {:>9} {:>10}", "facts", "paths", "store KiB")
        } else {
            String::new()
        };
        println!(
            "{:>8} {:>8} {:>10} {:>12} {:>12} {:>12}{mem_cols}",
            "states",
            "words",
            "word len",
            "naive",
            "semi-naive",
            format!("exec({threads})")
        );
        for (states, words, len) in [
            (3usize, 8usize, 8usize),
            (5, 8, 16),
            (8, 16, 24),
            (12, 32, 40),
            (16, 48, 64),
        ] {
            let t1 = Instant::now();
            let semi_result = drivers::nfa_result_configured(states, words, len, use_ram);
            let t_semi = t1.elapsed();
            let b = drivers::nfa_answer(&semi_result);
            // The quadratic naive baseline is only tractable at the small end.
            let naive_time = (states <= 8).then(|| {
                let t0 = Instant::now();
                let a = drivers::nfa_run_configured(
                    states,
                    words,
                    len,
                    FixpointStrategy::Naive,
                    use_ram,
                );
                let elapsed = t0.elapsed();
                assert_eq!(a, b);
                elapsed
            });
            let t2 = Instant::now();
            let c = drivers::nfa_run_parallel_configured(states, words, len, threads, use_ram);
            let t_exec = t2.elapsed();
            assert_eq!(b, c, "executor must agree with the engine");
            let naive_col = naive_time.map_or("-".to_string(), |t| format!("{t:?}"));
            let mem_cols = if mem_stats {
                let m = drivers::mem_snapshot(&semi_result);
                format!(
                    " {:>9} {:>9} {:>10}",
                    m.facts,
                    m.distinct_paths,
                    m.store_bytes / 1024
                )
            } else {
                String::new()
            };
            println!(
                "{states:>8} {words:>8} {len:>10} {naive_col:>12} {:>12?} {:>12?}{mem_cols}   (accepted: {b})",
                t_semi, t_exec
            );
        }
        if mem_stats {
            println!("peak RSS: {} KiB", drivers::peak_rss_kib());
        }
        if obs.json || obs.profile {
            let (_, stats) = drivers::nfa_exec_stats_configured(16, 48, 64, threads, use_ram);
            obs.emit(&format!("nfa 16x64, exec({threads})"), &stats);
        }
    }

    if want("query") {
        section("EXP-Q  Demand-driven query evaluation: T(a·$y) on §5.1.1 reachability");
        println!(
            "{:>8} {:>8} {:>12} {:>12} {:>12} {:>12} {:>9}",
            "nodes", "edges", "full", "full fires", "demanded", "dem. fires", "answers"
        );
        for (nodes, edges) in [
            (8usize, 16usize),
            (16, 48),
            (32, 128),
            (64, 384),
            (128, 1024),
        ] {
            let t0 = Instant::now();
            let (full_answers, full_stats) =
                drivers::reachability_query_full_configured(nodes, edges, threads, use_ram);
            let t_full = t0.elapsed();
            let t1 = Instant::now();
            let (demanded_answers, demanded_stats) =
                drivers::reachability_query_demanded_configured(nodes, edges, threads, use_ram);
            let t_demanded = t1.elapsed();
            assert_eq!(
                full_answers, demanded_answers,
                "demanded answers must equal full-run-then-filter"
            );
            assert!(
                demanded_stats.rule_firings <= full_stats.rule_firings,
                "demand must not fire more rules"
            );
            println!(
                "{nodes:>8} {edges:>8} {t_full:>12?} {:>12} {t_demanded:>12?} {:>12} {:>9}",
                full_stats.rule_firings, demanded_stats.rule_firings, full_answers
            );
        }
        if obs.json || obs.profile {
            let (_, stats) =
                drivers::reachability_query_demanded_configured(128, 1024, threads, use_ram);
            obs.emit(&format!("query demanded 128x1024, exec({threads})"), &stats);
        }
    }

    if want("regex") {
        section("EXP-RX  Regular expressions compiled to Sequence Datalog (Section 1 remark)");
        println!("pattern: {}", drivers::regex_pattern());
        println!(
            "{:>8} {:>8} {:>18} {:>18}",
            "strings", "max len", "compiled datalog", "NFA simulation"
        );
        for (strings, len) in [(16usize, 12usize), (32, 16), (48, 24)] {
            let t0 = Instant::now();
            let a = drivers::regex_datalog_run(strings, len);
            let t_datalog = t0.elapsed();
            let t1 = Instant::now();
            let b = drivers::regex_nfa_run(strings, len);
            let t_nfa = t1.elapsed();
            assert_eq!(a, b, "compiled program and NFA must agree");
            println!(
                "{strings:>8} {len:>8} {:>18?} {:>18?}   (matches: {a})",
                t_datalog, t_nfa
            );
        }
    }

    if want("termination") {
        section("EXP-T  Conservative termination analysis (Section 2.3 discussion)");
        let (certified, total) = drivers::termination_survey();
        println!(
            "certified {certified} of {total} programs (the witness programs terminate; Example 2.3 is refused)"
        );
    }

    if want("algebra") {
        section("EXP-RA  Theorem 7.1 / Lemma 7.2: Datalog vs sequence relational algebra");
        println!(
            "normal form of the Section 5.2 program: {} rules (all in Lemma 7.2 shapes)",
            drivers::normal_form_size()
        );
        println!(
            "{:>8} {:>8} {:>10} {:>10}",
            "nodes", "edges", "datalog", "algebra"
        );
        for (nodes, edges) in [(6usize, 10usize), (10, 20), (14, 30)] {
            let (a, b) = drivers::algebra_roundtrip(nodes, edges);
            println!("{nodes:>8} {edges:>8} {a:>10} {b:>10}");
        }
    }
}

fn section(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}
