//! # seqdl-bench — experiment drivers
//!
//! Shared drivers for every figure of the paper and the derived experiments listed
//! in DESIGN.md / EXPERIMENTS.md.  The `harness` binary prints each reproduction as
//! text; the Criterion benches in `benches/` time the same drivers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;

use seqdl_core::{rel, repeat_path, Instance, Path, RelName};
use seqdl_engine::{Engine, EvalLimits, FixpointStrategy};
use seqdl_fragments::witnesses;
use seqdl_fragments::{equivalence_classes, Fragment, HasseDiagram};
use seqdl_rewrite::{
    eliminate_arity, eliminate_equations, eliminate_packing_nonrecursive,
    fold_intermediate_predicates, to_normal_form,
};
use seqdl_syntax::{parse_program, Program};
use seqdl_unify::{solve, SolutionSet, SolveOptions};
use seqdl_wgen::Workloads;
use std::collections::BTreeSet;

/// An engine configured with generous limits for experiments.
pub fn bench_engine() -> Engine {
    Engine::new().with_limits(EvalLimits {
        max_iterations: 100_000,
        max_facts: 5_000_000,
        max_path_len: 1_000_000,
        ..EvalLimits::default()
    })
}

/// [`bench_engine`] with the execution path selected explicitly: `use_ram`
/// runs the lowered RAM instruction programs, `false` the legacy tree-walking
/// matcher — the A/B axis of the `ram_lowering` bench and the harness's
/// `--no-ram` flag.
pub fn bench_engine_configured(use_ram: bool) -> Engine {
    bench_engine().with_ram(use_ram)
}

// ---------------------------------------------------------------------------
// FIG-1: the Hasse diagram of Figure 1
// ---------------------------------------------------------------------------

/// Build the Figure 1 Hasse diagram over the 16 fragments of {E, I, N, R}.
pub fn figure1_diagram() -> HasseDiagram {
    HasseDiagram::build(&Fragment::all_over_einr())
}

/// Number of equivalence classes over all 64 fragments (A, P included); the paper
/// predicts the same 11 classes because A and P are redundant.
pub fn figure1_class_count_full() -> usize {
    equivalence_classes(&Fragment::all()).len()
}

// ---------------------------------------------------------------------------
// FIG-2: the unification search DAG of Figure 2
// ---------------------------------------------------------------------------

/// Solve the Figure 2 equation `$x·⟨@y·$z⟩·@w = $u·$v·$u` and return the solution
/// set (4 symbolic solutions expected).
pub fn figure2_solutions() -> SolutionSet {
    let eq = seqdl_syntax::Equation::new(
        seqdl_syntax::parse_expr("$x·<@y·$z>·@w").unwrap(),
        seqdl_syntax::parse_expr("$u·$v·$u").unwrap(),
    );
    solve(&eq, &SolveOptions::default()).expect("Figure 2 equation is one-sided nonlinear")
}

/// A scaling family for unification: solve `$x1·…·$xk = a^n` (one-sided nonlinear),
/// returning the number of symbolic solutions.
pub fn unify_split_family(k: usize, n: usize) -> usize {
    let lhs: String = (1..=k)
        .map(|i| format!("$x{i}"))
        .collect::<Vec<_>>()
        .join("·");
    let rhs: String = vec!["a"; n].join("·");
    let eq = seqdl_syntax::Equation::new(
        seqdl_syntax::parse_expr(&lhs).unwrap(),
        seqdl_syntax::parse_expr(&rhs).unwrap(),
    );
    solve(&eq, &SolveOptions::default())
        .expect("ground right-hand side always terminates")
        .solutions
        .len()
}

// ---------------------------------------------------------------------------
// FIG-3: the subsumption decision procedure
// ---------------------------------------------------------------------------

/// Decide `F1 ≤ F2` for all 64×64 fragment pairs; returns the number of subsumed
/// pairs.
pub fn figure3_decide_all() -> usize {
    let all = Fragment::all();
    let mut count = 0usize;
    for &a in &all {
        for &b in &all {
            if seqdl_fragments::subsumed_by(a, b) {
                count += 1;
            }
        }
    }
    count
}

// ---------------------------------------------------------------------------
// Rewrite ablations (EXP-A, EXP-E, EXP-P, EXP-I)
// ---------------------------------------------------------------------------

/// Evaluate a unary query and return the output paths.
pub fn run_query(program: &Program, input: &Instance, output: RelName) -> BTreeSet<Path> {
    bench_engine()
        .run(program, input)
        .expect("experiment programs terminate within limits")
        .unary_paths(output)
}

/// EXP-A: the reversal query (Example 4.3) with arity vs after arity elimination.
/// Returns (original output size, rewritten output size) — they must agree.
pub fn arity_ablation(n: usize) -> (usize, usize) {
    let w = witnesses::reversal_with_arity();
    let rewritten = eliminate_arity(&w.program).expect("monadic EDB");
    let input = Workloads::new(42).random_strings(rel("R"), 4, n, 3);
    let a = run_query(&w.program, &input, w.output);
    let b = run_query(&rewritten, &input, w.output);
    assert_eq!(a, b);
    (a.len(), b.len())
}

/// EXP-E: the only-a's query in its three variants ({E}, {A,I}, {A,I,R}) on `a^n`
/// plus a non-a string; returns the (identical) output sizes.
pub fn equations_ablation(n: usize) -> Vec<usize> {
    let mut input = Workloads::new(7).a_power(rel("R"), n);
    input
        .insert_fact(seqdl_core::Fact::new(
            rel("R"),
            vec![Workloads::new(7).random_string(n, 2, 99)],
        ))
        .unwrap();
    [
        witnesses::only_as_equation(),
        witnesses::only_as_intermediate(),
        witnesses::only_as_recursion(),
    ]
    .iter()
    .map(|w| run_query(&w.program, &input, w.output).len())
    .collect()
}

/// EXP-E (elimination): run the mirrored-distinct-pairs query (Example 4.6) before
/// and after full equation elimination; returns the agreeing output sizes.
pub fn equation_elimination_ablation(n: usize) -> (usize, usize) {
    let w = witnesses::mirrored_distinct_pairs();
    let rewritten = eliminate_equations(&w.program).expect("elimination succeeds");
    let workloads = Workloads::new(11);
    let mut input = workloads.a_then_b(rel("R"), n);
    input
        .insert_fact(seqdl_core::Fact::new(
            rel("R"),
            vec![workloads.random_string(2 * n, 3, 5)],
        ))
        .unwrap();
    let a = run_query(&w.program, &input, w.output);
    let b = run_query(&rewritten, &input, w.output);
    assert_eq!(a, b);
    (a.len(), b.len())
}

/// EXP-P: Example 2.2 with packing vs the 28-rule packing-free program of Example
/// 4.14; returns (rule count of the rewriting, boolean answers agree).
pub fn packing_ablation(hay_len: usize) -> (usize, bool) {
    let w = witnesses::three_occurrences();
    let rewritten =
        eliminate_packing_nonrecursive(&w.program, w.output).expect("nonrecursive program");
    let workloads = Workloads::new(3);
    let mut input = Instance::unary(rel("R"), [workloads.random_string(hay_len, 2, 1)]);
    input
        .insert_fact(seqdl_core::Fact::new(
            rel("S"),
            vec![workloads.random_string(2, 2, 1)],
        ))
        .unwrap();
    let engine = bench_engine();
    let a = engine
        .run(&w.program, &input)
        .unwrap()
        .nullary_true(w.output);
    let b = engine
        .run(&rewritten, &input)
        .unwrap()
        .nullary_true(w.output);
    (rewritten.rule_count(), a == b)
}

/// EXP-I: a nonrecursive pipeline before and after intermediate-predicate folding;
/// returns the agreeing output sizes.
pub fn folding_ablation(strings: usize, max_len: usize) -> (usize, usize) {
    let program =
        parse_program("T1($y) <- R(x0·$y).\nT2($y·$y) <- T1($y).\nS($z) <- T2($z·x1).").unwrap();
    let folded = fold_intermediate_predicates(&program, rel("S")).expect("nonrecursive");
    let input = Workloads::new(9).random_strings(rel("R"), strings, max_len, 2);
    let a = run_query(&program, &input, rel("S"));
    let b = run_query(&folded, &input, rel("S"));
    assert_eq!(a, b);
    (a.len(), b.len())
}

// ---------------------------------------------------------------------------
// EXP-L: output-length growth (Lemma 5.1 / Theorem 5.3)
// ---------------------------------------------------------------------------

/// Run the squaring query on `a^n`: returns the maximum output path length (expected
/// `n²`, which no nonrecursive program can reach by Lemma 5.1).
pub fn squaring_output_length(n: usize) -> usize {
    let w = witnesses::squaring();
    let input = Workloads::new(0).a_power(rel("R"), n);
    run_query(&w.program, &input, w.output)
        .iter()
        .map(Path::len)
        .max()
        .unwrap_or(0)
}

/// The linear bound of Lemma 5.1 for a nonrecursive program: `a·x + b` where `a` is
/// the largest number of path-variable occurrences and `b` the largest number of
/// atom-like occurrences in any head.
pub fn lemma51_bound(program: &Program, max_input_len: usize) -> usize {
    let a = program
        .rules()
        .flat_map(|r| {
            r.head
                .args
                .iter()
                .map(seqdl_syntax::PathExpr::path_var_count)
        })
        .max()
        .unwrap_or(0);
    let b = program
        .rules()
        .flat_map(|r| {
            r.head
                .args
                .iter()
                .map(seqdl_syntax::PathExpr::atom_like_count)
        })
        .max()
        .unwrap_or(0);
    a * max_input_len + b
}

/// Maximum output length of the nonrecursive only-a's program on `a^n` (compare
/// against [`lemma51_bound`]).
pub fn nonrecursive_output_length(n: usize) -> usize {
    let w = witnesses::only_as_equation();
    let input = Workloads::new(0).a_power(rel("R"), n);
    run_query(&w.program, &input, w.output)
        .iter()
        .map(Path::len)
        .max()
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// EXP-B / EXP-NFA: engine scaling, naive vs semi-naive
// ---------------------------------------------------------------------------

/// Run graph reachability (Section 5.1.1) on a random digraph with the given
/// strategy; returns whether `b` is reachable from `a`.
pub fn reachability_run(nodes: usize, edges: usize, strategy: FixpointStrategy) -> bool {
    reachability_run_configured(nodes, edges, strategy, true)
}

/// [`reachability_run`] with the execution path selected explicitly.
pub fn reachability_run_configured(
    nodes: usize,
    edges: usize,
    strategy: FixpointStrategy,
    use_ram: bool,
) -> bool {
    let w = witnesses::reachability();
    let input = Workloads::new(17).digraph_instance(nodes, edges);
    bench_engine_configured(use_ram)
        .with_strategy(strategy)
        .run(&w.program, &input)
        .expect("terminates")
        .nullary_true(w.output)
}

/// Run the Example 2.1 NFA-acceptance program on a random NFA instance; returns the
/// number of accepted words.
pub fn nfa_run(states: usize, words: usize, word_len: usize, strategy: FixpointStrategy) -> usize {
    nfa_run_configured(states, words, word_len, strategy, true)
}

/// [`nfa_run`] with the execution path selected explicitly.
pub fn nfa_run_configured(
    states: usize,
    words: usize,
    word_len: usize,
    strategy: FixpointStrategy,
    use_ram: bool,
) -> usize {
    let w = witnesses::nfa_acceptance();
    let input = Workloads::new(23).nfa_instance(states, 2, words, word_len);
    bench_engine_configured(use_ram)
        .with_strategy(strategy)
        .run(&w.program, &input)
        .expect("terminates")
        .unary_paths_iter(w.output)
        .count()
}

/// A memory-footprint snapshot for the harness's `--mem-stats` columns: the
/// result instance's fact count plus the global hash-consed path store's
/// size.  Store numbers are cumulative for the process (the store is global
/// and append-only), so within one harness invocation each row reports the
/// footprint *after* that workload ran.
#[derive(Clone, Copy, Debug)]
pub struct MemStats {
    /// Facts in the result instance (input + derived).
    pub facts: usize,
    /// Distinct interned paths in the global store.
    pub distinct_paths: usize,
    /// Approximate bytes held by the store (owned values + table overhead).
    pub store_bytes: usize,
    /// Peak resident set size of the process in KiB (`VmHWM`; 0 if unknown).
    pub peak_rss_kib: usize,
}

/// Snapshot [`MemStats`] for a result instance.
pub fn mem_snapshot(result: &seqdl_core::Instance) -> MemStats {
    let store = seqdl_core::store_stats();
    MemStats {
        facts: result.fact_count(),
        distinct_paths: store.distinct_paths,
        store_bytes: store.total_bytes(),
        peak_rss_kib: peak_rss_kib(),
    }
}

/// `VmHWM` from `/proc/self/status`, in KiB (0 when unavailable).
pub fn peak_rss_kib() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")
                    .and_then(|rest| rest.split_whitespace().next()?.parse().ok())
            })
        })
        .unwrap_or(0)
}

/// The full semi-naive result instance of the §5.1.1 reachability workload —
/// the same computation [`reachability_run`] times, kept so `--mem-stats`
/// rows snapshot the instance the timed run produced instead of re-running.
pub fn reachability_result(nodes: usize, edges: usize) -> seqdl_core::Instance {
    reachability_result_configured(nodes, edges, true)
}

/// [`reachability_result`] with the execution path selected explicitly.
pub fn reachability_result_configured(
    nodes: usize,
    edges: usize,
    use_ram: bool,
) -> seqdl_core::Instance {
    let w = witnesses::reachability();
    let input = Workloads::new(17).digraph_instance(nodes, edges);
    bench_engine_configured(use_ram)
        .run(&w.program, &input)
        .expect("terminates")
}

/// The §5.1.1 answer read off a result instance.
pub fn reachability_answer(result: &seqdl_core::Instance) -> bool {
    result.nullary_true(witnesses::reachability().output)
}

/// The full semi-naive result instance of the Example 2.1 NFA workload; see
/// [`reachability_result`].
pub fn nfa_result(states: usize, words: usize, word_len: usize) -> seqdl_core::Instance {
    nfa_result_configured(states, words, word_len, true)
}

/// [`nfa_result`] with the execution path selected explicitly.
pub fn nfa_result_configured(
    states: usize,
    words: usize,
    word_len: usize,
    use_ram: bool,
) -> seqdl_core::Instance {
    let w = witnesses::nfa_acceptance();
    let input = Workloads::new(23).nfa_instance(states, 2, words, word_len);
    bench_engine_configured(use_ram)
        .run(&w.program, &input)
        .expect("terminates")
}

/// The NFA acceptance count read off a result instance.
pub fn nfa_answer(result: &seqdl_core::Instance) -> usize {
    result
        .unary_paths_iter(witnesses::nfa_acceptance().output)
        .count()
}

/// The stratified SCC executor with the bench engine's limits and the given
/// worker-pool size.
pub fn bench_executor(threads: usize) -> seqdl_exec::Executor {
    bench_executor_configured(threads, true)
}

/// [`bench_executor`] with the execution path selected explicitly.
pub fn bench_executor_configured(threads: usize, use_ram: bool) -> seqdl_exec::Executor {
    seqdl_exec::Executor::new()
        .with_engine(bench_engine_configured(use_ram))
        .with_threads(threads)
}

/// Run graph reachability (Section 5.1.1) through the stratified parallel
/// executor; must agree with [`reachability_run`].
pub fn reachability_run_parallel(nodes: usize, edges: usize, threads: usize) -> bool {
    reachability_run_parallel_configured(nodes, edges, threads, true)
}

/// [`reachability_run_parallel`] with the execution path selected explicitly.
pub fn reachability_run_parallel_configured(
    nodes: usize,
    edges: usize,
    threads: usize,
    use_ram: bool,
) -> bool {
    let w = witnesses::reachability();
    let input = Workloads::new(17).digraph_instance(nodes, edges);
    bench_executor_configured(threads, use_ram)
        .run(&w.program, &input)
        .expect("terminates")
        .nullary_true(w.output)
}

/// Run the Example 2.1 NFA-acceptance program through the stratified parallel
/// executor; must agree with [`nfa_run`].
pub fn nfa_run_parallel(states: usize, words: usize, word_len: usize, threads: usize) -> usize {
    nfa_run_parallel_configured(states, words, word_len, threads, true)
}

/// [`nfa_run_parallel`] with the execution path selected explicitly.
pub fn nfa_run_parallel_configured(
    states: usize,
    words: usize,
    word_len: usize,
    threads: usize,
    use_ram: bool,
) -> usize {
    let w = witnesses::nfa_acceptance();
    let input = Workloads::new(23).nfa_instance(states, 2, words, word_len);
    bench_executor_configured(threads, use_ram)
        .run(&w.program, &input)
        .expect("terminates")
        .unary_paths_iter(w.output)
        .count()
}

/// [`reachability_run_parallel_configured`] returning the run's statistics
/// alongside the answer — the observability hook behind the harness's
/// `--stats-format json`, `--profile`, and `--trace-out` modes.
pub fn reachability_exec_stats_configured(
    nodes: usize,
    edges: usize,
    threads: usize,
    use_ram: bool,
) -> (bool, seqdl_engine::EvalStats) {
    let w = witnesses::reachability();
    let input = Workloads::new(17).digraph_instance(nodes, edges);
    let (out, stats) = bench_executor_configured(threads, use_ram)
        .run_with_stats(&w.program, &input)
        .expect("terminates");
    (out.nullary_true(w.output), stats)
}

/// [`nfa_run_parallel_configured`] returning the run's statistics alongside
/// the accepted-word count.
pub fn nfa_exec_stats_configured(
    states: usize,
    words: usize,
    word_len: usize,
    threads: usize,
    use_ram: bool,
) -> (usize, seqdl_engine::EvalStats) {
    let w = witnesses::nfa_acceptance();
    let input = Workloads::new(23).nfa_instance(states, 2, words, word_len);
    let (out, stats) = bench_executor_configured(threads, use_ram)
        .run_with_stats(&w.program, &input)
        .expect("terminates");
    (out.unary_paths_iter(w.output).count(), stats)
}

// ---------------------------------------------------------------------------
// EXP-Q: demand-driven query evaluation (magic sets)
// ---------------------------------------------------------------------------

/// The single-source reachability goal `T(a·$y)` on the Section 5.1.1 edge
/// encoding: every node reachable from `a`.
pub fn reachability_goal() -> seqdl_syntax::Predicate {
    seqdl_rewrite::parse_goal("T(a·$y)").expect("goal parses")
}

/// Evaluate the §5.1.1 reachability program *in full* through the executor and
/// filter the `T` relation by [`reachability_goal`]; returns the answer count
/// and the run's statistics — the baseline the demanded run must match.
pub fn reachability_query_full(
    nodes: usize,
    edges: usize,
    threads: usize,
) -> (usize, seqdl_engine::EvalStats) {
    reachability_query_full_configured(nodes, edges, threads, true)
}

/// [`reachability_query_full`] with the execution path selected explicitly.
pub fn reachability_query_full_configured(
    nodes: usize,
    edges: usize,
    threads: usize,
    use_ram: bool,
) -> (usize, seqdl_engine::EvalStats) {
    let w = witnesses::reachability();
    let goal = reachability_goal();
    let input = Workloads::new(17).digraph_instance(nodes, edges);
    let (out, stats) = bench_executor_configured(threads, use_ram)
        .run_with_stats(&w.program, &input)
        .expect("terminates");
    let answers = out.relation(rel("T")).map_or(0, |r| {
        r.iter()
            .filter(|t| seqdl_rewrite::goal_matches(&goal, t))
            .count()
    });
    (answers, stats)
}

/// Evaluate the same goal *demand-driven*: magic-set rewrite, seed, run through
/// the executor, count the filtered answers.  Must agree with
/// [`reachability_query_full`] on the answer count while firing strictly fewer
/// rules on multi-source graphs.
pub fn reachability_query_demanded(
    nodes: usize,
    edges: usize,
    threads: usize,
) -> (usize, seqdl_engine::EvalStats) {
    reachability_query_demanded_configured(nodes, edges, threads, true)
}

/// [`reachability_query_demanded`] with the execution path selected explicitly.
pub fn reachability_query_demanded_configured(
    nodes: usize,
    edges: usize,
    threads: usize,
    use_ram: bool,
) -> (usize, seqdl_engine::EvalStats) {
    let w = witnesses::reachability();
    let goal = reachability_goal();
    let input = Workloads::new(17).digraph_instance(nodes, edges);
    let mp = seqdl_rewrite::magic(&w.program, &goal).expect("reachability goal rewrites");
    let (out, stats) = bench_executor_configured(threads, use_ram)
        .run_with_stats_seeded(&mp.program, &input, &mp.seeds)
        .expect("terminates");
    (mp.answers(&out).len(), stats)
}

// ---------------------------------------------------------------------------
// EXP-RA: algebra round trip (Section 7)
// ---------------------------------------------------------------------------

/// Translate the Section 5.2 program to the sequence relational algebra and evaluate
/// both on a random graph; returns (datalog answer size, algebra answer size).
pub fn algebra_roundtrip(nodes: usize, edges: usize) -> (usize, usize) {
    let w = witnesses::only_black_successors();
    let mut input = Workloads::new(31).digraph_instance(nodes, edges);
    // Colour every second node black.
    for i in (0..nodes).step_by(2) {
        let name = match i {
            0 => "a".to_string(),
            1 => "b".to_string(),
            _ => format!("n{i}"),
        };
        input
            .insert_fact(seqdl_core::Fact::new(
                rel("B"),
                vec![seqdl_core::path_of(&[name.as_str()])],
            ))
            .unwrap();
    }
    let datalog = run_query(&w.program, &input, w.output);
    let expr = seqdl_algebra::datalog_to_algebra(&w.program, w.output).expect("nonrecursive");
    let algebra: BTreeSet<Path> = seqdl_algebra::eval(&expr, &input)
        .expect("evaluation succeeds")
        .into_iter()
        .filter(|t| t.len() == 1)
        .map(|t| t[0])
        .collect();
    (datalog.len(), algebra.len())
}

/// Size (number of rules) of the Lemma 7.2 normal form of the Section 5.2 program.
pub fn normal_form_size() -> usize {
    let w = witnesses::only_black_successors();
    to_normal_form(&w.program)
        .expect("nonrecursive, equation-free")
        .rule_count()
}

/// Convenience used by benches: the `a^n` squaring instance.
pub fn squaring_instance(n: usize) -> Instance {
    Instance::unary(rel("R"), [repeat_path("a", n)])
}

// ---------------------------------------------------------------------------
// EXP-RX: regular expressions as recursion (Section 1 remark; extension)
// ---------------------------------------------------------------------------

/// A workload of random strings over a 3-letter alphabet for the regex experiments.
pub fn regex_workload(strings: usize, max_len: usize) -> Instance {
    Workloads::new(41).random_strings(rel("R"), strings, max_len, 3)
}

/// The regular expression used by the regex experiments: strings over {x0, x1, x2}
/// that contain an `x0 x1` factor and end in `x2`.
pub fn regex_pattern() -> seqdl_regex::Regex {
    seqdl_regex::parse_regex("%* x0 x1 %* x2").expect("pattern parses")
}

/// Run the compiled Sequence Datalog program for [`regex_pattern`] on a random
/// workload; returns the number of matching strings.
pub fn regex_datalog_run(strings: usize, max_len: usize) -> usize {
    let compiled =
        seqdl_regex::compile_match(&regex_pattern(), &seqdl_regex::CompileOptions::default());
    let input = regex_workload(strings, max_len);
    bench_engine()
        .run(&compiled.program, &input)
        .expect("terminates")
        .unary_paths_iter(compiled.output)
        .count()
}

/// Run the direct NFA simulation for [`regex_pattern`] on the same workload;
/// returns the number of matching strings (must agree with
/// [`regex_datalog_run`]).
pub fn regex_nfa_run(strings: usize, max_len: usize) -> usize {
    let nfa = seqdl_regex::Nfa::from_regex(&regex_pattern());
    let input = regex_workload(strings, max_len);
    input
        .unary_paths_iter(rel("R"))
        .filter(|p| nfa.accepts(p))
        .count()
}

// ---------------------------------------------------------------------------
// EXP-T: termination analysis (Section 2.3 discussion; extension)
// ---------------------------------------------------------------------------

/// Run the conservative termination analysis over every witness program plus the
/// diverging Example 2.3; returns (certified count, total count).
pub fn termination_survey() -> (usize, usize) {
    let mut programs: Vec<Program> = witnesses::all_witnesses()
        .into_iter()
        .map(|w| w.program)
        .collect();
    programs.push(parse_program("T(a).\nT(a·$x) <- T($x).").expect("Example 2.3 parses"));
    let total = programs.len();
    let certified = programs
        .iter()
        .filter(|p| seqdl_termination::guaranteed_terminating(p))
        .count();
    (certified, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_reproduces_eleven_classes() {
        assert_eq!(figure1_diagram().classes.len(), 11);
        assert_eq!(figure1_class_count_full(), 11);
    }

    #[test]
    fn figure2_reproduces_four_solutions() {
        let s = figure2_solutions();
        assert_eq!(s.solutions.len(), 4);
        assert_eq!(s.tree.success_count(), 4);
    }

    #[test]
    fn figure3_counts_are_consistent_with_reflexivity() {
        let count = figure3_decide_all();
        assert!(count >= 64, "at least the reflexive pairs");
        assert!(count < 64 * 64, "not everything is subsumed");
    }

    #[test]
    fn ablations_agree_between_original_and_rewritten_programs() {
        assert_eq!(arity_ablation(5).0, arity_ablation(5).1);
        let eq = equations_ablation(6);
        assert!(eq.iter().all(|&x| x == eq[0]));
        let (a, b) = folding_ablation(4, 5);
        assert_eq!(a, b);
        let (rules, agree) = packing_ablation(6);
        assert_eq!(rules, 28);
        assert!(agree);
        let (a, b) = equation_elimination_ablation(3);
        assert_eq!(a, b);
    }

    #[test]
    fn squaring_grows_quadratically_and_nonrecursive_stays_linear() {
        for n in [2usize, 3, 4] {
            assert_eq!(squaring_output_length(n), n * n);
            let linear = nonrecursive_output_length(n);
            let bound = lemma51_bound(&witnesses::only_as_equation().program, n);
            assert!(linear <= bound);
        }
    }

    #[test]
    fn engine_runs_agree_across_strategies() {
        assert_eq!(
            reachability_run(10, 20, FixpointStrategy::Naive),
            reachability_run(10, 20, FixpointStrategy::SemiNaive)
        );
        assert_eq!(
            nfa_run(3, 4, 6, FixpointStrategy::Naive),
            nfa_run(3, 4, 6, FixpointStrategy::SemiNaive)
        );
    }

    #[test]
    fn demanded_queries_agree_with_full_runs_and_fire_fewer_rules() {
        for threads in [1usize, 2] {
            let (full_answers, full_stats) = reachability_query_full(12, 30, threads);
            let (demanded_answers, demanded_stats) = reachability_query_demanded(12, 30, threads);
            assert_eq!(full_answers, demanded_answers, "threads = {threads}");
            assert!(
                demanded_stats.rule_firings < full_stats.rule_firings,
                "threads = {threads}: demanded {} vs full {}",
                demanded_stats.rule_firings,
                full_stats.rule_firings
            );
        }
    }

    #[test]
    fn algebra_roundtrip_agrees() {
        let (a, b) = algebra_roundtrip(8, 12);
        assert_eq!(a, b);
        assert!(normal_form_size() > 2);
    }
}
