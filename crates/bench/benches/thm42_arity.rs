//! EXP-A: reversal query before/after arity elimination (Theorem 4.2).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm42/reversal");
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| seqdl_bench::arity_ablation(n))
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
