//! EXP-P: packing elimination of Example 2.2 (Lemma 4.13 / Example 4.14).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm415/three_occurrences");
    for hay in [6usize, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(hay), &hay, |b, &hay| {
            b.iter(|| {
                let (rules, agree) = seqdl_bench::packing_ablation(hay);
                assert_eq!(rules, 28);
                assert!(agree);
            })
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
