//! FIG-1: build the Figure 1 Hasse diagram (11 equivalence classes).
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("fig1/equivalence_classes_16", |b| {
        b.iter(|| {
            let d = seqdl_bench::figure1_diagram();
            assert_eq!(d.classes.len(), 11);
        })
    });
    c.bench_function("fig1/equivalence_classes_64", |b| {
        b.iter(|| assert_eq!(seqdl_bench::figure1_class_count_full(), 11))
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
