//! EXP-L: quadratic output growth of the squaring query vs the linear bound of
//! Lemma 5.1.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("lem51/squaring");
    for n in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| assert_eq!(seqdl_bench::squaring_output_length(n), n * n))
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
