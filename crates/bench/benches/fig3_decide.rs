//! FIG-3: decide F1 <= F2 (Theorem 6.1) for all 64x64 fragment pairs.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("fig3/decide_all_pairs", |b| {
        b.iter(seqdl_bench::figure3_decide_all)
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
