//! RAM lowering A/B: the lowered flat instruction programs on the shared
//! interpreter (`ram`) against the legacy tree-walking matcher (`legacy`) on
//! the reachability (Section 5.1.1) and NFA-product (Example 2.1) ladders,
//! single-threaded semi-naive — the same derivations in the same order, so
//! the delta is pure execution overhead.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqdl_engine::FixpointStrategy;

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("ram_lowering/reachability");
    for (nodes, edges) in [
        (8usize, 16usize),
        (16, 48),
        (32, 128),
        (64, 384),
        (128, 1024),
    ] {
        for (path, use_ram) in [("ram", true), ("legacy", false)] {
            group.bench_with_input(
                BenchmarkId::new(path, nodes),
                &(nodes, edges),
                |b, &(n, e)| {
                    b.iter(|| {
                        seqdl_bench::reachability_run_configured(
                            n,
                            e,
                            FixpointStrategy::SemiNaive,
                            use_ram,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_nfa(c: &mut Criterion) {
    let mut group = c.benchmark_group("ram_lowering/nfa");
    for (states, words, len) in [
        (3usize, 8usize, 8usize),
        (5, 8, 16),
        (8, 16, 24),
        (12, 32, 40),
        (16, 48, 64),
    ] {
        for (path, use_ram) in [("ram", true), ("legacy", false)] {
            group.bench_with_input(
                BenchmarkId::new(path, format!("{states}x{len}")),
                &(states, words, len),
                |b, &(s, w, l)| {
                    b.iter(|| {
                        seqdl_bench::nfa_run_configured(
                            s,
                            w,
                            l,
                            FixpointStrategy::SemiNaive,
                            use_ram,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_reachability, bench_nfa);
criterion_main!(benches);
