//! EXP-B: graph reachability (Section 5.1.1), naive vs semi-naive evaluation.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqdl_engine::FixpointStrategy;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec511/reachability");
    for (nodes, edges) in [(8usize, 16usize), (16, 48)] {
        group.bench_with_input(
            BenchmarkId::new("naive", nodes),
            &(nodes, edges),
            |b, &(n, e)| b.iter(|| seqdl_bench::reachability_run(n, e, FixpointStrategy::Naive)),
        );
        group.bench_with_input(
            BenchmarkId::new("semi_naive", nodes),
            &(nodes, edges),
            |b, &(n, e)| {
                b.iter(|| seqdl_bench::reachability_run(n, e, FixpointStrategy::SemiNaive))
            },
        );
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
