//! Thread-count scaling of the stratified SCC executor on the two recursive
//! engine workloads (Section 5.1.1 reachability and Example 2.1 NFA product) at
//! their largest configured sizes, against the sequential engine baseline.
//! `threads = 1` runs in-line (no pool), isolating the scheduler overhead;
//! higher counts measure the delta-sharded parallel fixpoint.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqdl_engine::FixpointStrategy;

const THREADS: [usize; 3] = [1, 2, 4];

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_parallel/reachability");
    let (nodes, edges) = (128usize, 1024usize);
    group.bench_function(BenchmarkId::new("engine", nodes), |b| {
        b.iter(|| seqdl_bench::reachability_run(nodes, edges, FixpointStrategy::SemiNaive))
    });
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::new(&format!("exec_t{threads}"), nodes),
            &threads,
            |b, &t| b.iter(|| seqdl_bench::reachability_run_parallel(nodes, edges, t)),
        );
    }
    group.finish();
}

fn bench_nfa(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_parallel/nfa");
    let (states, words, len) = (16usize, 48usize, 64usize);
    group.bench_function(BenchmarkId::new("engine", format!("{states}x{len}")), |b| {
        b.iter(|| seqdl_bench::nfa_run(states, words, len, FixpointStrategy::SemiNaive))
    });
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::new(&format!("exec_t{threads}"), format!("{states}x{len}")),
            &threads,
            |b, &t| b.iter(|| seqdl_bench::nfa_run_parallel(states, words, len, t)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reachability, bench_nfa);
criterion_main!(benches);
