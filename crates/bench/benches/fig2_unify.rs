//! FIG-2: the associative-unification search tree of Figure 2, plus scaling.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("fig2/paper_equation", |b| {
        b.iter(|| assert_eq!(seqdl_bench::figure2_solutions().solutions.len(), 4))
    });
    let mut group = c.benchmark_group("fig2/split_family");
    for n in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| seqdl_bench::unify_split_family(3, n))
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
