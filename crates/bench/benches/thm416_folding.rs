//! EXP-I: intermediate-predicate folding (Theorem 4.16).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm416/pipeline");
    for n in [4usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| seqdl_bench::folding_ablation(n, 6))
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
