//! EXP-RX: regular-expression matching compiled to Sequence Datalog (recursion as
//! syntactic sugar) versus direct NFA simulation — the ablation quantifies the cost
//! of running regular matching on the generic engine.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext/regex");
    for (strings, len) in [(16usize, 12usize), (32, 16)] {
        group.bench_with_input(
            BenchmarkId::new("compiled_datalog", format!("{strings}x{len}")),
            &(strings, len),
            |b, &(s, l)| b.iter(|| seqdl_bench::regex_datalog_run(s, l)),
        );
        group.bench_with_input(
            BenchmarkId::new("nfa_simulation", format!("{strings}x{len}")),
            &(strings, len),
            |b, &(s, l)| b.iter(|| seqdl_bench::regex_nfa_run(s, l)),
        );
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
