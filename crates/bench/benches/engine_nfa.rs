//! EXP-NFA: NFA acceptance (Example 2.1), naive vs semi-naive evaluation.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqdl_engine::FixpointStrategy;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/nfa");
    for (states, words, len) in [(3usize, 8usize, 8usize), (5, 8, 16)] {
        group.bench_with_input(
            BenchmarkId::new("naive", format!("{states}x{len}")),
            &(states, words, len),
            |b, &(s, w, l)| b.iter(|| seqdl_bench::nfa_run(s, w, l, FixpointStrategy::Naive)),
        );
        group.bench_with_input(
            BenchmarkId::new("semi_naive", format!("{states}x{len}")),
            &(states, words, len),
            |b, &(s, w, l)| b.iter(|| seqdl_bench::nfa_run(s, w, l, FixpointStrategy::SemiNaive)),
        );
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
