//! Engine scaling: the reachability (Section 5.1.1) and NFA-product (Example 2.1)
//! workloads at sizes where the pre-index quadratic relation scan dominated.
//! Semi-naive evaluation scales to the large configurations; naive evaluation is
//! kept at the small end as the quadratic baseline.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqdl_engine::FixpointStrategy;

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling/reachability");
    group.bench_with_input(
        BenchmarkId::new("naive", 32),
        &(32usize, 128usize),
        |b, &(n, e)| b.iter(|| seqdl_bench::reachability_run(n, e, FixpointStrategy::Naive)),
    );
    for (nodes, edges) in [(32usize, 128usize), (64, 384), (128, 1024)] {
        group.bench_with_input(
            BenchmarkId::new("semi_naive", nodes),
            &(nodes, edges),
            |b, &(n, e)| {
                b.iter(|| seqdl_bench::reachability_run(n, e, FixpointStrategy::SemiNaive))
            },
        );
    }
    group.finish();
}

fn bench_nfa(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling/nfa");
    group.bench_with_input(
        BenchmarkId::new("naive", "8x24"),
        &(8usize, 16usize, 24usize),
        |b, &(s, w, l)| b.iter(|| seqdl_bench::nfa_run(s, w, l, FixpointStrategy::Naive)),
    );
    for (states, words, len) in [(8usize, 16usize, 24usize), (12, 32, 40), (16, 48, 64)] {
        group.bench_with_input(
            BenchmarkId::new("semi_naive", format!("{states}x{len}")),
            &(states, words, len),
            |b, &(s, w, l)| b.iter(|| seqdl_bench::nfa_run(s, w, l, FixpointStrategy::SemiNaive)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reachability, bench_nfa);
criterion_main!(benches);
