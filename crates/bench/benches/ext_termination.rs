//! EXP-T: cost of the conservative termination analysis over the witness programs.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("ext/termination_survey", |b| {
        b.iter(|| {
            let (certified, total) = seqdl_bench::termination_survey();
            assert!(certified < total, "Example 2.3 must stay uncertified");
            certified
        })
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
