//! EXP-E: the only-a's query in its three fragments (Theorem 4.7), and
//! negated-equation elimination (Lemma 4.5).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm47/only_as");
    for n in [8usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| seqdl_bench::equations_ablation(n))
        });
    }
    group.finish();
    c.bench_function("thm47/negated_equation_elimination", |b| {
        b.iter(|| seqdl_bench::equation_elimination_ablation(3))
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
