//! EXP-RA: Datalog vs sequence relational algebra (Theorem 7.1).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("sec7/normal_form", |b| {
        b.iter(seqdl_bench::normal_form_size)
    });
    let mut group = c.benchmark_group("sec7/roundtrip");
    for (nodes, edges) in [(6usize, 10usize), (10, 20)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &(nodes, edges),
            |b, &(n, e)| {
                b.iter(|| {
                    let (a, bb) = seqdl_bench::algebra_roundtrip(n, e);
                    assert_eq!(a, bb);
                })
            },
        );
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
