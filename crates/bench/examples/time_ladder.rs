use seqdl_engine::FixpointStrategy;
use std::time::Instant;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

fn time_us<F: FnMut()>(mut f: F, iters: usize) -> f64 {
    f(); // warm-up
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    median(samples)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let use_ram = match args.iter().position(|a| a == "--no-ram") {
        Some(i) => {
            args.remove(i);
            false
        }
        None => true,
    };
    let iters: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(15);
    for (n, e) in [
        (8usize, 16usize),
        (16, 48),
        (32, 128),
        (64, 384),
        (128, 1024),
    ] {
        let m = time_us(
            || {
                seqdl_bench::reachability_run_configured(
                    n,
                    e,
                    FixpointStrategy::SemiNaive,
                    use_ram,
                );
            },
            iters,
        );
        println!("reachability/semi_naive/{n} {m:.1}");
    }
    for (s, w, l) in [
        (3usize, 8usize, 8usize),
        (5, 8, 16),
        (8, 16, 24),
        (12, 32, 40),
        (16, 48, 64),
    ] {
        let m = time_us(
            || {
                seqdl_bench::nfa_run_configured(s, w, l, FixpointStrategy::SemiNaive, use_ram);
            },
            iters,
        );
        println!("nfa/semi_naive/{s}x{l} {m:.1}");
    }
}
