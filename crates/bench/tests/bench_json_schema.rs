//! Schema check for `BENCH_engine.json`: the file must stay well-formed JSON
//! (validated by a small self-contained parser — the workspace vendors no
//! serde) and keep the sections and keys the CI perf artifacts and the README
//! methodology refer to.  Run explicitly in CI as
//! `cargo test -p seqdl-bench --test bench_json_schema`.

use std::collections::BTreeMap;

/// A minimal JSON value: exactly what the bench file needs.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(map) => Some(map),
            _ => None,
        }
    }

    fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(self.error(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(out));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.error("bad \\u hex"))?,
                                16,
                            )
                            .map_err(|_| self.error("bad \\u hex"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(self.error(&format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        // `f64::from_str` is laxer than the JSON grammar (it accepts `+1`,
        // `1.`, `.5`, `01`); validate the token shape strictly first.
        if !json_number_shape(text) {
            return Err(self.error("invalid number"));
        }
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Does `text` match the JSON number grammar
/// (`-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`)?
fn json_number_shape(text: &str) -> bool {
    let mut rest = text.strip_prefix('-').unwrap_or(text).as_bytes();
    // Integer part: `0` or a nonzero-led digit run.
    match rest {
        [b'0', tail @ ..] => rest = tail,
        [b'1'..=b'9', ..] => {
            let digits = rest.iter().take_while(|b| b.is_ascii_digit()).count();
            rest = &rest[digits..];
        }
        _ => return false,
    }
    if let [b'.', tail @ ..] = rest {
        let digits = tail.iter().take_while(|b| b.is_ascii_digit()).count();
        if digits == 0 {
            return false;
        }
        rest = &tail[digits..];
    }
    if let [b'e' | b'E', tail @ ..] = rest {
        let tail = match tail {
            [b'+' | b'-', t @ ..] => t,
            t => t,
        };
        let digits = tail.iter().take_while(|b| b.is_ascii_digit()).count();
        if digits == 0 {
            return false;
        }
        rest = &tail[digits..];
    }
    rest.is_empty()
}

fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content"));
    }
    Ok(v)
}

fn load() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let text = std::fs::read_to_string(path).expect("BENCH_engine.json exists at the repo root");
    parse(&text).unwrap_or_else(|e| panic!("BENCH_engine.json is not valid JSON: {e}"))
}

#[test]
fn bench_json_is_valid_and_has_the_required_sections() {
    let doc = load();
    for key in ["description", "date", "baseline_commit", "gate", "benches"] {
        assert!(doc.get(key).is_some(), "missing top-level key {key:?}");
    }
    for section in [
        "engine_parallel",
        "query_demand",
        "engine_scaling",
        "path_interning",
        "ram_lowering",
    ] {
        assert!(
            doc.get(section).and_then(Json::as_object).is_some(),
            "missing or non-object section {section:?}"
        );
    }
}

#[test]
fn path_interning_section_records_the_gate_workloads() {
    let doc = load();
    let section = doc
        .get("path_interning")
        .expect("path_interning section present");
    assert!(section.get("note").and_then(Json::as_str).is_some());
    let medians = section
        .get("medians_us")
        .and_then(Json::as_object)
        .expect("path_interning.medians_us object");
    for workload in ["reachability/semi_naive/128", "nfa/semi_naive/16x64"] {
        for side in ["before", "after"] {
            let key = format!("{workload}/{side}");
            let value = medians
                .get(&key)
                .and_then(Json::as_number)
                .unwrap_or_else(|| panic!("missing median {key:?}"));
            assert!(value > 0.0, "median {key:?} must be positive");
        }
        let before = medians[&format!("{workload}/before")].as_number().unwrap();
        let after = medians[&format!("{workload}/after")].as_number().unwrap();
        assert!(
            before / after >= 2.0,
            "recorded speedup for {workload} is below the 2x gate: {before} -> {after}"
        );
    }
    assert!(
        section
            .get("mem")
            .and_then(Json::as_object)
            .is_some_and(|m| m.contains_key("peak_rss_kib")),
        "path_interning.mem must record peak_rss_kib"
    );
}

#[test]
fn ram_lowering_section_records_the_full_ladders() {
    let doc = load();
    let section = doc
        .get("ram_lowering")
        .expect("ram_lowering section present");
    assert!(section.get("note").and_then(Json::as_str).is_some());
    assert!(section
        .get("baseline_commit")
        .and_then(Json::as_str)
        .is_some());
    let medians = section
        .get("medians_us")
        .and_then(Json::as_object)
        .expect("ram_lowering.medians_us object");
    let ladders = [
        "reachability/semi_naive/8",
        "reachability/semi_naive/16",
        "reachability/semi_naive/32",
        "reachability/semi_naive/64",
        "reachability/semi_naive/128",
        "nfa/semi_naive/3x8",
        "nfa/semi_naive/5x16",
        "nfa/semi_naive/8x24",
        "nfa/semi_naive/12x40",
        "nfa/semi_naive/16x64",
    ];
    for workload in ladders {
        let get = |side: &str| {
            let key = format!("{workload}/{side}");
            medians
                .get(&key)
                .and_then(Json::as_number)
                .unwrap_or_else(|| panic!("missing median {key:?}"))
        };
        let (before, after) = (get("before"), get("after"));
        assert!(before > 0.0 && after > 0.0, "{workload} medians positive");
        // Parity-or-better everywhere except the two smallest reachability
        // sizes, whose 26-31us totals pay the per-run lower() setup; the
        // recorded note explains the protocol.
        assert!(
            before / after >= 0.8,
            "ram_lowering {workload} regresses beyond the recorded setup cost: {before} -> {after}"
        );
    }
    let ratio = |wl: &str| {
        medians[&format!("{wl}/before")].as_number().unwrap()
            / medians[&format!("{wl}/after")].as_number().unwrap()
    };
    assert!(
        ratio("reachability/semi_naive/128") >= 1.15,
        "largest reachability size must show a clear RAM-path win"
    );
    assert!(
        ratio("nfa/semi_naive/16x64") >= 1.0,
        "largest NFA size must be at least parity"
    );
    let counters = section
        .get("counters")
        .and_then(Json::as_object)
        .expect("ram_lowering.counters object");
    for key in [
        "reachability/128/instructions_executed",
        "reachability/128/fused_probes",
        "nfa/16x64/instructions_executed",
        "nfa/16x64/fused_probes",
    ] {
        assert!(
            counters
                .get(key)
                .and_then(Json::as_number)
                .is_some_and(|v| v > 0.0),
            "missing or non-positive counter {key:?}"
        );
    }
}

#[test]
fn bench_medians_are_positive_numbers() {
    let doc = load();
    let benches = doc.get("benches").and_then(Json::as_object).unwrap();
    for (name, entry) in benches {
        for field in ["before_us", "after_us", "speedup"] {
            let v = entry
                .get(field)
                .and_then(Json::as_number)
                .unwrap_or_else(|| panic!("bench {name:?} missing numeric {field:?}"));
            assert!(v > 0.0, "bench {name:?} field {field:?} must be positive");
        }
    }
}

#[test]
fn parser_rejects_malformed_documents() {
    for bad in [
        "{",
        "{\"a\": }",
        "[1, 2,, 3]",
        "{\"a\": 1} trailing",
        "{\"a\": 1, \"a\": 2}",
        "\"unterminated",
        // Numbers f64::from_str accepts but the JSON grammar does not.
        "{\"a\": +1}",
        "{\"a\": 1.}",
        "{\"a\": .5}",
        "{\"a\": 01}",
        "{\"a\": 1e}",
    ] {
        assert!(parse(bad).is_err(), "accepted malformed JSON: {bad:?}");
    }
    assert!(parse("{\"x\": [1, 2.5, -3e2, 1e+4, 0.25E-2, true, null, \"s\"]}").is_ok());
}
