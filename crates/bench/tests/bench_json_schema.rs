//! Schema check for `BENCH_engine.json`: the file must stay well-formed JSON
//! (validated by the self-contained parser in `seqdl_bench::json` — the
//! workspace vendors no serde) and keep the sections and keys the CI perf
//! artifacts and the README methodology refer to.  Run explicitly in CI as
//! `cargo test -p seqdl-bench --test bench_json_schema`.

use seqdl_bench::json::{parse, Json};

fn load() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let text = std::fs::read_to_string(path).expect("BENCH_engine.json exists at the repo root");
    parse(&text).unwrap_or_else(|e| panic!("BENCH_engine.json is not valid JSON: {e}"))
}

#[test]
fn bench_json_is_valid_and_has_the_required_sections() {
    let doc = load();
    for key in ["description", "date", "baseline_commit", "gate", "benches"] {
        assert!(doc.get(key).is_some(), "missing top-level key {key:?}");
    }
    for section in [
        "engine_parallel",
        "query_demand",
        "engine_scaling",
        "path_interning",
        "ram_lowering",
        "trace_overhead",
    ] {
        assert!(
            doc.get(section).and_then(Json::as_object).is_some(),
            "missing or non-object section {section:?}"
        );
    }
}

#[test]
fn path_interning_section_records_the_gate_workloads() {
    let doc = load();
    let section = doc
        .get("path_interning")
        .expect("path_interning section present");
    assert!(section.get("note").and_then(Json::as_str).is_some());
    let medians = section
        .get("medians_us")
        .and_then(Json::as_object)
        .expect("path_interning.medians_us object");
    for workload in ["reachability/semi_naive/128", "nfa/semi_naive/16x64"] {
        for side in ["before", "after"] {
            let key = format!("{workload}/{side}");
            let value = medians
                .get(&key)
                .and_then(Json::as_number)
                .unwrap_or_else(|| panic!("missing median {key:?}"));
            assert!(value > 0.0, "median {key:?} must be positive");
        }
        let before = medians[&format!("{workload}/before")].as_number().unwrap();
        let after = medians[&format!("{workload}/after")].as_number().unwrap();
        assert!(
            before / after >= 2.0,
            "recorded speedup for {workload} is below the 2x gate: {before} -> {after}"
        );
    }
    assert!(
        section
            .get("mem")
            .and_then(Json::as_object)
            .is_some_and(|m| m.contains_key("peak_rss_kib")),
        "path_interning.mem must record peak_rss_kib"
    );
}

#[test]
fn ram_lowering_section_records_the_full_ladders() {
    let doc = load();
    let section = doc
        .get("ram_lowering")
        .expect("ram_lowering section present");
    assert!(section.get("note").and_then(Json::as_str).is_some());
    assert!(section
        .get("baseline_commit")
        .and_then(Json::as_str)
        .is_some());
    let medians = section
        .get("medians_us")
        .and_then(Json::as_object)
        .expect("ram_lowering.medians_us object");
    let ladders = [
        "reachability/semi_naive/8",
        "reachability/semi_naive/16",
        "reachability/semi_naive/32",
        "reachability/semi_naive/64",
        "reachability/semi_naive/128",
        "nfa/semi_naive/3x8",
        "nfa/semi_naive/5x16",
        "nfa/semi_naive/8x24",
        "nfa/semi_naive/12x40",
        "nfa/semi_naive/16x64",
    ];
    for workload in ladders {
        let get = |side: &str| {
            let key = format!("{workload}/{side}");
            medians
                .get(&key)
                .and_then(Json::as_number)
                .unwrap_or_else(|| panic!("missing median {key:?}"))
        };
        let (before, after) = (get("before"), get("after"));
        assert!(before > 0.0 && after > 0.0, "{workload} medians positive");
        // Parity-or-better everywhere except the two smallest reachability
        // sizes, whose 26-31us totals pay the per-run lower() setup; the
        // recorded note explains the protocol.
        assert!(
            before / after >= 0.8,
            "ram_lowering {workload} regresses beyond the recorded setup cost: {before} -> {after}"
        );
    }
    let ratio = |wl: &str| {
        medians[&format!("{wl}/before")].as_number().unwrap()
            / medians[&format!("{wl}/after")].as_number().unwrap()
    };
    assert!(
        ratio("reachability/semi_naive/128") >= 1.15,
        "largest reachability size must show a clear RAM-path win"
    );
    assert!(
        ratio("nfa/semi_naive/16x64") >= 1.0,
        "largest NFA size must be at least parity"
    );
    let counters = section
        .get("counters")
        .and_then(Json::as_object)
        .expect("ram_lowering.counters object");
    for key in [
        "reachability/128/instructions_executed",
        "reachability/128/fused_probes",
        "nfa/16x64/instructions_executed",
        "nfa/16x64/fused_probes",
    ] {
        assert!(
            counters
                .get(key)
                .and_then(Json::as_number)
                .is_some_and(|v| v > 0.0),
            "missing or non-positive counter {key:?}"
        );
    }
}

#[test]
fn trace_overhead_section_records_disabled_tracing_parity() {
    let doc = load();
    let section = doc
        .get("trace_overhead")
        .expect("trace_overhead section present");
    assert!(section.get("note").and_then(Json::as_str).is_some());
    assert!(section
        .get("baseline_commit")
        .and_then(Json::as_str)
        .is_some());
    let medians = section
        .get("medians_us")
        .and_then(Json::as_object)
        .expect("trace_overhead.medians_us object");
    let ratios = section
        .get("paired_ratio")
        .and_then(Json::as_object)
        .expect("trace_overhead.paired_ratio object");
    // Disabled tracing is a single relaxed atomic load per probe point: the
    // gate workloads must stay within 2% of the pre-instrumentation binary.
    // Both bench executables measure the same driver functions, so each
    // workload pools the interleaved paired rounds from ram_lowering AND
    // engine_scaling; the gated statistic is the median paired after/before
    // ratio (the recorded note explains the protocol and why the per-binary
    // ratio-of-medians is not comparable across executables).
    for workload in [
        "reachability/semi_naive/128",
        "nfa/semi_naive/16x64",
        "reachability/semi_naive/64",
        "nfa/semi_naive/12x40",
    ] {
        let get = |side: &str| {
            let key = format!("{workload}/{side}");
            medians
                .get(&key)
                .and_then(Json::as_number)
                .unwrap_or_else(|| panic!("missing median {key:?}"))
        };
        let (before, after) = (get("before"), get("after"));
        assert!(before > 0.0 && after > 0.0, "{workload} medians positive");
        let ratio = ratios
            .get(workload)
            .and_then(Json::as_number)
            .unwrap_or_else(|| panic!("missing paired ratio for {workload:?}"));
        assert!(
            ratio <= 1.02,
            "trace_overhead {workload} exceeds the 2% disabled-overhead budget: \
             median paired ratio {ratio}"
        );
    }
}

#[test]
fn bench_medians_are_positive_numbers() {
    let doc = load();
    let benches = doc.get("benches").and_then(Json::as_object).unwrap();
    for (name, entry) in benches {
        for field in ["before_us", "after_us", "speedup"] {
            let v = entry
                .get(field)
                .and_then(Json::as_number)
                .unwrap_or_else(|| panic!("bench {name:?} missing numeric {field:?}"));
            assert!(v > 0.0, "bench {name:?} field {field:?} must be positive");
        }
    }
}
