//! Schema check for the `--stats-format json` document: `seqdl_engine::stats_json`
//! output on a real run must parse with the independent reader in
//! `seqdl_bench::json` and keep the keys and invariants the bench harness and
//! the CI artifacts consume.  Run explicitly in CI as
//! `cargo test -p seqdl-bench --test stats_json_schema`.

use seqdl_bench::json::{parse, Json};
use seqdl_engine::{stats_json, EvalError, EvalStats, LimitKind};

/// A parsed document from one §5.1.1 reachability run through the executor.
fn run_document(threads: usize) -> Json {
    let (reachable, stats) = seqdl_bench::reachability_exec_stats_configured(16, 48, threads, true);
    assert!(
        reachable,
        "workload sanity: the digraph has a reachable pair"
    );
    let text = stats_json(&stats, &seqdl_core::store_stats(), None);
    parse(&text).unwrap_or_else(|e| panic!("stats JSON does not parse: {e}\n{text}"))
}

#[test]
fn ok_document_has_the_versioned_sections_and_types() {
    let doc = run_document(1);
    assert_eq!(
        doc.get("version").and_then(Json::as_number),
        Some(1.0),
        "schema version"
    );
    assert_eq!(
        doc.get("outcome")
            .and_then(|o| o.get("status"))
            .and_then(Json::as_str),
        Some("ok")
    );
    let totals = doc
        .get("totals")
        .and_then(Json::as_object)
        .expect("totals object");
    for key in [
        "iterations",
        "derived_facts",
        "rule_firings",
        "index_probes",
        "scans",
        "instructions_executed",
        "fused_probes",
        "emit_memo_hits",
    ] {
        assert!(
            totals.get(key).and_then(Json::as_number).is_some(),
            "totals.{key} must be a number"
        );
    }
    let strata = doc
        .get("strata")
        .and_then(Json::as_array)
        .expect("strata array");
    assert!(!strata.is_empty(), "at least one stratum");
    let mut pct_sum = 0.0;
    for s in strata {
        for key in [
            "rules",
            "iterations",
            "derived_facts",
            "rule_firings",
            "shards",
            "wall_us",
            "wall_pct",
        ] {
            assert!(
                s.get(key).and_then(Json::as_number).is_some(),
                "stratum key {key} must be a number"
            );
        }
        pct_sum += s.get("wall_pct").and_then(Json::as_number).unwrap_or(0.0);
    }
    // Percentages are of the summed stratum walls, so they add to ~100
    // (rounding each entry to 2 decimals) unless every wall rounded to zero.
    assert!(
        pct_sum == 0.0 || (pct_sum - 100.0).abs() < 0.5,
        "stratum wall percentages must sum to ~100, got {pct_sum}"
    );
    let store = doc
        .get("store")
        .and_then(Json::as_object)
        .expect("store object");
    for key in ["distinct_paths", "bytes"] {
        assert!(
            store
                .get(key)
                .and_then(Json::as_number)
                .is_some_and(|v| v > 0.0),
            "store.{key} must be positive"
        );
    }
}

#[test]
fn per_rule_profile_attributes_every_firing() {
    for threads in [1usize, 4] {
        let doc = run_document(threads);
        let total = doc
            .get("totals")
            .and_then(|t| t.get("rule_firings"))
            .and_then(Json::as_number)
            .expect("totals.rule_firings");
        let rules = doc
            .get("rules")
            .and_then(Json::as_array)
            .expect("rules array");
        assert!(!rules.is_empty(), "profiled rules at {threads} thread(s)");
        let mut attributed = 0.0;
        for r in rules {
            for key in [
                "stratum",
                "index",
                "firings",
                "derived_facts",
                "wall_us",
                "index_probes",
                "scans",
                "instructions",
                "fused_probes",
                "emit_memo_hits",
            ] {
                assert!(
                    r.get(key).and_then(Json::as_number).is_some(),
                    "rule key {key} must be a number"
                );
            }
            assert!(
                r.get("rule")
                    .and_then(Json::as_str)
                    .is_some_and(|s| s.contains("<-")),
                "rule text must render the rule"
            );
            attributed += r.get("firings").and_then(Json::as_number).unwrap_or(0.0);
        }
        assert_eq!(
            attributed, total,
            "per-rule firings must sum to the total at {threads} thread(s)"
        );
    }
}

#[test]
fn failure_outcomes_parse_with_their_discriminants() {
    let store = seqdl_core::store_stats();
    let limit = EvalError::LimitExceeded {
        what: LimitKind::Facts,
        limit: 7,
    };
    let doc = parse(&stats_json(&EvalStats::default(), &store, Some(&limit))).unwrap();
    let outcome = doc.get("outcome").expect("outcome object");
    assert_eq!(outcome.get("status").and_then(Json::as_str), Some("limit"));
    assert_eq!(outcome.get("kind").and_then(Json::as_str), Some("facts"));
    assert_eq!(outcome.get("limit").and_then(Json::as_number), Some(7.0));

    let cancelled = EvalError::Cancelled {
        reason: "deadline of 50ms exceeded".into(),
        partial_stats: Box::default(),
    };
    let doc = parse(&stats_json(&EvalStats::default(), &store, Some(&cancelled))).unwrap();
    let outcome = doc.get("outcome").expect("outcome object");
    assert_eq!(
        outcome.get("status").and_then(Json::as_str),
        Some("cancelled")
    );
    assert!(outcome
        .get("reason")
        .and_then(Json::as_str)
        .is_some_and(|r| r.contains("deadline")));
}

#[test]
fn chrome_trace_export_parses_as_json() {
    // A traced parallel run's `--trace-out` document must be valid JSON with
    // the Chrome trace-event fields on every record.
    let session = seqdl_trace::start();
    let (reachable, _) = seqdl_bench::reachability_exec_stats_configured(16, 48, 4, true);
    let events = session.finish();
    assert!(reachable);
    assert!(!events.is_empty(), "a traced run records events");
    let text = seqdl_trace::chrome_trace_json(&events);
    let doc = parse(&text).unwrap_or_else(|e| panic!("trace JSON does not parse: {e}"));
    let records = doc.as_array().expect("trace is a JSON array");
    assert_eq!(records.len(), events.len());
    for r in records {
        assert!(r.get("name").and_then(Json::as_str).is_some());
        assert!(r
            .get("ph")
            .and_then(Json::as_str)
            .is_some_and(|p| matches!(p, "B" | "E" | "C" | "i")));
        assert_eq!(r.get("pid").and_then(Json::as_number), Some(1.0));
        assert!(r.get("tid").and_then(Json::as_number).is_some());
        assert!(r.get("ts").and_then(Json::as_number).is_some());
    }
    assert!(
        records
            .iter()
            .any(|r| r.get("name").and_then(Json::as_str) == Some("run")),
        "the run span is recorded"
    );
}
