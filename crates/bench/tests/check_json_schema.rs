//! Schema check for the `seqdl check --format json` document:
//! `seqdl_analysis::check_json` output must parse with the independent
//! reader in `seqdl_bench::json` and keep the keys, lint codes, severities,
//! and rule anchors the CI artifacts consume.  Run explicitly in CI as
//! `cargo test -p seqdl-bench --test check_json_schema`.

use seqdl_analysis::{check_json, check_program, CheckOptions, Lint, Severity};
use seqdl_bench::json::{parse, Json};
use seqdl_core::rel;
use seqdl_syntax::parse_program;

/// A program exercising warning diagnostics of every anchor kind: a dead
/// rule (rule anchor), its dead relation (relation anchor), a duplicate, an
/// unused variable, a divergence-risk clique, and the fragment note
/// (program anchor).
fn defect_document() -> Json {
    let program = parse_program(concat!(
        "U($x) <- R($x).\n",
        "T($x) <- R($x), B($y).\n",
        "T($z) <- R($z), B($w).\n",
        "S(a·$x) <- S($x).\n",
        "S($x) <- T($x).\n",
    ))
    .unwrap();
    let report = check_program(&program, &CheckOptions::for_outputs([rel("S")]));
    assert!(!report.has_errors(), "fixture must be warning-only");
    let text = check_json(&report);
    parse(&text).unwrap_or_else(|e| panic!("check JSON does not parse: {e}\n{text}"))
}

#[test]
fn document_has_the_versioned_sections_and_types() {
    let doc = defect_document();
    assert_eq!(
        doc.get("version").and_then(Json::as_number),
        Some(1.0),
        "schema version"
    );
    let outputs = doc
        .get("outputs")
        .and_then(Json::as_array)
        .expect("outputs array");
    assert_eq!(outputs.len(), 1);
    assert_eq!(outputs[0].as_str(), Some("S"));
    // The fragment is the feature-letter string (a subset of AEINPR).
    let fragment = doc
        .get("fragment")
        .and_then(Json::as_str)
        .expect("fragment string");
    assert!(
        fragment.chars().all(|c| "AEINPR".contains(c)),
        "fragment letters: {fragment}"
    );
    let verdict = doc
        .get("termination")
        .and_then(|t| t.get("verdict"))
        .and_then(Json::as_str)
        .expect("termination verdict");
    assert!(
        verdict == "terminating" || verdict == "unknown",
        "{verdict}"
    );
    let summary = doc
        .get("summary")
        .and_then(Json::as_object)
        .expect("summary object");
    for key in ["errors", "warnings", "infos"] {
        assert!(
            summary.get(key).and_then(Json::as_number).is_some(),
            "summary.{key} must be a number"
        );
    }
}

#[test]
fn diagnostics_carry_codes_severities_and_anchors() {
    let doc = defect_document();
    let diagnostics = doc
        .get("diagnostics")
        .and_then(Json::as_array)
        .expect("diagnostics array");
    assert!(!diagnostics.is_empty());
    let mut codes = Vec::new();
    let mut anchor_kinds = Vec::new();
    for d in diagnostics {
        let code = d.get("code").and_then(Json::as_str).expect("code string");
        // Every reported code resolves to a registered lint, and the JSON
        // severity and name agree with the registry.
        let lint = Lint::from_code(code).unwrap_or_else(|| panic!("unknown code {code}"));
        assert_eq!(d.get("name").and_then(Json::as_str), Some(lint.name()));
        let severity = d
            .get("severity")
            .and_then(Json::as_str)
            .expect("severity string");
        let expected = match lint.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        };
        assert_eq!(severity, expected, "{code}");
        assert!(
            d.get("message").and_then(Json::as_str).is_some(),
            "{code}: message must be a string"
        );
        let anchor = d.get("anchor").expect("anchor object");
        let kind = anchor
            .get("kind")
            .and_then(Json::as_str)
            .expect("anchor kind");
        match kind {
            "rule" => {
                assert!(
                    anchor.get("stratum").and_then(Json::as_number).is_some(),
                    "{code}: rule anchors carry a stratum"
                );
                assert!(
                    anchor.get("rule_index").and_then(Json::as_number).is_some(),
                    "{code}: rule anchors carry a rule_index"
                );
                let rule = anchor
                    .get("rule")
                    .and_then(Json::as_str)
                    .expect("rule text");
                assert!(rule.contains('.'), "{code}: anchor rule renders as source");
            }
            "relation" => {
                assert!(
                    anchor.get("relation").and_then(Json::as_str).is_some(),
                    "{code}: relation anchors carry the relation name"
                );
            }
            "program" => {}
            other => panic!("unknown anchor kind {other}"),
        }
        codes.push(code.to_string());
        anchor_kinds.push(kind.to_string());
    }
    // The fixture fires the dead-rule, dead-relation, duplicate,
    // unused-variable, and divergence lints plus the fragment note.
    for code in [
        "SD-W101", "SD-W102", "SD-W105", "SD-W201", "SD-W301", "SD-I401",
    ] {
        assert!(codes.iter().any(|c| c == code), "missing {code}: {codes:?}");
    }
    for kind in ["rule", "relation", "program"] {
        assert!(
            anchor_kinds.iter().any(|k| k == kind),
            "missing anchor kind {kind}: {anchor_kinds:?}"
        );
    }
    // Counts in the summary agree with the diagnostics array.
    let summary = doc.get("summary").expect("summary");
    let count = |sev: &str| {
        diagnostics
            .iter()
            .filter(|d| d.get("severity").and_then(Json::as_str) == Some(sev))
            .count() as f64
    };
    assert_eq!(
        summary.get("errors").and_then(Json::as_number),
        Some(count("error"))
    );
    assert_eq!(
        summary.get("warnings").and_then(Json::as_number),
        Some(count("warning"))
    );
    assert_eq!(
        summary.get("infos").and_then(Json::as_number),
        Some(count("info"))
    );
}

#[test]
fn error_documents_report_error_severity() {
    // $y is head-only: SD-E004 at error severity.
    let program = parse_program("S($x, $y) <- R($x).").unwrap();
    let report = check_program(&program, &CheckOptions::for_outputs([rel("S")]));
    assert!(report.has_errors());
    let doc = parse(&check_json(&report)).unwrap();
    let errors = doc
        .get("summary")
        .and_then(|s| s.get("errors"))
        .and_then(Json::as_number)
        .expect("error count");
    assert!(errors >= 1.0);
    let diagnostics = doc.get("diagnostics").and_then(Json::as_array).unwrap();
    assert!(diagnostics
        .iter()
        .any(|d| d.get("code").and_then(Json::as_str) == Some("SD-E004")));
}
