//! # seqdl-wgen — workload generators
//!
//! Deterministic, seedable generators for the workloads used by the benchmark
//! harness and the examples.  The paper is a theory paper with no evaluation
//! datasets; these generators synthesise inputs for the application domains its
//! introduction motivates (process mining, graph paths, JSON-style records) plus the
//! string families its proofs use (`a^n`, `a^n b^n`, random strings over a small
//! alphabet).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod programs;

pub use programs::{InjectedDefect, ProgramConfig, ProgramGenerator};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqdl_core::{path_of, repeat_path, AtomId, Fact, Instance, Path, RelName};

/// Pre-interned atoms `x0, x1, …` for an alphabet of the given size.  Interning is
/// a lock + string hash per call, so generators intern each letter once instead of
/// once per generated value.
fn alphabet_atoms(alphabet: usize) -> Vec<AtomId> {
    (0..alphabet.max(1))
        .map(|i| AtomId::new(&format!("x{i}")))
        .collect()
}

/// A seeded workload generator.
#[derive(Clone, Debug)]
pub struct Workloads {
    seed: u64,
}

impl Workloads {
    /// A generator with the given seed; equal seeds produce equal workloads.
    pub fn new(seed: u64) -> Workloads {
        Workloads { seed }
    }

    fn rng(&self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt)
    }

    /// The instance `{R(a^n)}` used by the squaring and only-a's experiments.
    pub fn a_power(&self, relation: RelName, n: usize) -> Instance {
        Instance::unary(relation, [repeat_path("a", n)])
    }

    /// The instance `{R(a^n·b^n)}` (Example 4.6 style inputs).
    pub fn a_then_b(&self, relation: RelName, n: usize) -> Instance {
        let mut p = repeat_path("a", n);
        p.extend(repeat_path("b", n));
        Instance::unary(relation, [p])
    }

    /// A random flat string over an alphabet of `alphabet` letters (`x0`, `x1`, …).
    pub fn random_string(&self, len: usize, alphabet: usize, salt: u64) -> Path {
        self.random_string_from(&alphabet_atoms(alphabet), len, salt)
    }

    /// Like [`Workloads::random_string`], over a pre-interned alphabet — callers
    /// building many strings intern the letters once instead of once per string.
    fn random_string_from(&self, letters: &[AtomId], len: usize, salt: u64) -> Path {
        let mut rng = self.rng(salt);
        Path::from_atoms((0..len).map(|_| letters[rng.gen_range(0..letters.len())]))
    }

    /// A unary relation of `count` random strings of length up to `max_len`.
    pub fn random_strings(
        &self,
        relation: RelName,
        count: usize,
        max_len: usize,
        alphabet: usize,
    ) -> Instance {
        let letters = alphabet_atoms(alphabet);
        let mut rng = self.rng(1);
        let paths = (0..count).map(|i| {
            let len = rng.gen_range(0..=max_len);
            self.random_string_from(&letters, len, 1000 + i as u64)
        });
        Instance::unary(relation, paths)
    }

    /// A random NFA over `states` states and `alphabet` letters, as the relations
    /// `N` (initial), `D` (transitions), `F` (final) of Example 2.1, together with a
    /// unary relation `R` of `word_count` random input words of length `word_len`.
    pub fn nfa_instance(
        &self,
        states: usize,
        alphabet: usize,
        word_count: usize,
        word_len: usize,
    ) -> Instance {
        let mut rng = self.rng(2);
        let mut inst = Instance::new();
        let state_atoms: Vec<AtomId> = (0..states.max(1))
            .map(|i| AtomId::new(&format!("q{i}")))
            .collect();
        let letter_atoms = alphabet_atoms(alphabet);
        let state = |i: usize| Path::from_atoms([state_atoms[i]]);
        let letter = |i: usize| Path::from_atoms([letter_atoms[i]]);
        let (d, r) = (RelName::new("D"), RelName::new("R"));
        inst.insert_fact(Fact::new(RelName::new("N"), vec![state(0)]))
            .expect("fresh instance");
        inst.insert_fact(Fact::new(
            RelName::new("F"),
            vec![state(states.saturating_sub(1))],
        ))
        .expect("fresh instance");
        // Roughly two outgoing transitions per (state, letter) pair on average.
        for q in 0..states {
            for a in 0..alphabet {
                for _ in 0..2 {
                    if rng.gen_bool(0.7) {
                        let to = rng.gen_range(0..states);
                        inst.insert_fact(Fact::new(d, vec![state(q), letter(a), state(to)]))
                            .expect("arity is consistent");
                    }
                }
            }
        }
        for i in 0..word_count {
            let word = self.random_string_from(&letter_atoms, word_len, 2000 + i as u64);
            inst.insert_fact(Fact::new(r, vec![word]))
                .expect("arity is consistent");
        }
        inst
    }

    /// A random directed graph on `nodes` nodes with `edges` edges, encoded as
    /// length-2 paths in the unary relation `R` (Section 5.1.1), with nodes named
    /// `a`, `b`, `n2`, `n3`, … so that the reachability witness query `a →* b`
    /// applies.
    pub fn digraph_instance(&self, nodes: usize, edges: usize) -> Instance {
        let mut rng = self.rng(3);
        let node_atoms: Vec<AtomId> = (0..nodes.max(2))
            .map(|i| match i {
                0 => AtomId::new("a"),
                1 => AtomId::new("b"),
                _ => AtomId::new(&format!("n{i}")),
            })
            .collect();
        let mut inst = Instance::new();
        let r = RelName::new("R");
        inst.declare_relation(r, 1);
        for _ in 0..edges {
            let from = rng.gen_range(0..node_atoms.len());
            let to = rng.gen_range(0..node_atoms.len());
            inst.insert_fact(Fact::new(
                r,
                vec![Path::from_atoms([node_atoms[from], node_atoms[to]])],
            ))
            .expect("arity is consistent");
        }
        inst
    }

    /// A process-mining event log: `traces` traces of length up to `max_len` over a
    /// small activity vocabulary, in the unary relation `Log`.  Roughly half the
    /// traces violate the "every 'order' is eventually followed by 'pay'" policy.
    pub fn event_log(&self, traces: usize, max_len: usize) -> Instance {
        let mut rng = self.rng(4);
        let activities = ["start", "order", "ship", "pay", "close"];
        let paths = (0..traces).map(|_| {
            let len = rng.gen_range(2..=max_len.max(2));
            let mut events: Vec<&str> = (0..len)
                .map(|_| activities[rng.gen_range(0..activities.len())])
                .collect();
            if rng.gen_bool(0.5) {
                // Make the trace compliant: append a final payment.
                events.push("pay");
            }
            path_of(&events)
        });
        Instance::unary(RelName::new("Log"), paths)
    }

    /// The JSON-motivated "Sales" relation of the introduction: item·year·value
    /// triples as length-3 paths in the unary relation `Sales`.
    pub fn sales_instance(&self, items: usize, years: usize) -> Instance {
        let mut rng = self.rng(5);
        let mut inst = Instance::new();
        inst.declare_relation(RelName::new("Sales"), 1);
        for i in 0..items {
            for y in 0..years {
                let value = rng.gen_range(0..1000u32);
                inst.insert_fact(Fact::new(
                    RelName::new("Sales"),
                    vec![path_of(&[
                        format!("item{i}").as_str(),
                        format!("{}", 2020 + y).as_str(),
                        format!("{value}").as_str(),
                    ])],
                ))
                .expect("arity is consistent");
            }
        }
        inst
    }

    /// A random flat instance over a monadic schema: `relations` unary relations
    /// `R0, R1, …`, each with `per_relation` random strings.
    pub fn random_flat_instance(
        &self,
        relations: usize,
        per_relation: usize,
        max_len: usize,
        alphabet: usize,
    ) -> Instance {
        let letters = alphabet_atoms(alphabet);
        let mut inst = Instance::new();
        let mut rng = self.rng(6);
        for r in 0..relations {
            let relation = RelName::new(&format!("R{r}"));
            inst.declare_relation(relation, 1);
            for i in 0..per_relation {
                let len = rng.gen_range(0..=max_len);
                let path = self.random_string_from(&letters, len, (r * 10_000 + i) as u64);
                inst.insert_fact(Fact::new(relation, vec![path]))
                    .expect("arity is consistent");
            }
        }
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::rel;

    #[test]
    fn generators_are_deterministic_in_the_seed() {
        let a = Workloads::new(7);
        let b = Workloads::new(7);
        let c = Workloads::new(8);
        assert_eq!(
            a.random_strings(rel("R"), 10, 8, 3),
            b.random_strings(rel("R"), 10, 8, 3)
        );
        assert_ne!(
            a.random_strings(rel("R"), 10, 8, 3),
            c.random_strings(rel("R"), 10, 8, 3)
        );
        assert_eq!(a.nfa_instance(4, 2, 5, 6), b.nfa_instance(4, 2, 5, 6));
        assert_eq!(a.digraph_instance(10, 20), b.digraph_instance(10, 20));
    }

    #[test]
    fn string_families_have_the_right_shape() {
        let w = Workloads::new(1);
        assert_eq!(w.a_power(rel("R"), 5).unary_paths(rel("R")).len(), 1);
        assert_eq!(w.a_power(rel("R"), 5).max_path_len(), 5);
        let ab = w.a_then_b(rel("R"), 3);
        let path = ab.unary_paths(rel("R")).into_iter().next().unwrap();
        assert_eq!(path.len(), 6);
        assert_eq!(path.to_string(), "a·a·a·b·b·b");
        assert_eq!(w.random_string(12, 2, 0).len(), 12);
        assert!(w.random_string(12, 2, 0).is_flat());
    }

    #[test]
    fn nfa_instances_have_the_example_2_1_schema() {
        let w = Workloads::new(3);
        let inst = w.nfa_instance(5, 2, 4, 8);
        let schema = inst.schema();
        assert_eq!(schema.arity(rel("N")), Some(1));
        assert_eq!(schema.arity(rel("D")), Some(3));
        assert_eq!(schema.arity(rel("F")), Some(1));
        assert_eq!(schema.arity(rel("R")), Some(1));
        assert_eq!(inst.unary_paths(rel("R")).len(), 4);
        assert!(inst.is_flat());
    }

    #[test]
    fn digraphs_are_two_bounded_and_flat() {
        let w = Workloads::new(4);
        let inst = w.digraph_instance(12, 30);
        assert!(inst.is_flat());
        assert!(inst.is_two_bounded());
    }

    #[test]
    fn event_logs_and_sales_have_expected_relations() {
        let w = Workloads::new(5);
        let log = w.event_log(10, 6);
        assert_eq!(log.unary_paths(rel("Log")).len(), 10);
        let sales = w.sales_instance(3, 2);
        assert_eq!(sales.unary_paths(rel("Sales")).len(), 6);
        assert!(sales.unary_paths(rel("Sales")).iter().all(|p| p.len() == 3));
    }

    #[test]
    fn random_flat_instances_cover_the_requested_schema() {
        let w = Workloads::new(6);
        let inst = w.random_flat_instance(3, 5, 6, 2);
        assert_eq!(inst.relation_names().len(), 3);
        assert!(inst.is_flat());
        assert!(inst.fact_count() <= 15);
        assert!(inst.schema().is_monadic());
    }
}
