//! Random *safe, stratified, nonrecursive* Sequence Datalog programs.
//!
//! The generator is used for differential testing: every generated program is safe
//! and stratified by construction, terminates (it is nonrecursive), and exercises a
//! configurable subset of the paper's features (equations, negation, arity,
//! intermediate predicates).  Equal seeds produce equal programs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqdl_core::RelName;
use seqdl_syntax::{Literal, PathExpr, Predicate, Program, Rule, Stratum, Term, Var};

/// Configuration for [`ProgramGenerator`].
#[derive(Clone, Copy, Debug)]
pub struct ProgramConfig {
    /// Number of strata to generate (each stratum only reads relations defined in
    /// earlier strata or the EDB, so stratification holds by construction).
    pub strata: usize,
    /// Number of rules per stratum; each rule defines its own IDB relation.
    pub rules_per_stratum: usize,
    /// Allow positive equations that decompose a bound variable.
    pub allow_equations: bool,
    /// Allow negated predicates over the EDB and earlier strata.
    pub allow_negation: bool,
    /// Allow binary IDB relations (the A feature); otherwise everything is unary.
    pub allow_arity: bool,
    /// Allow *terminating* recursive rules (the R feature): a stratum may gain a
    /// suffix-consuming rule `H($y) <- H(@u·$y).` for one of its unary heads.
    /// Such rules only derive suffixes of already-derived paths, so the fixpoint
    /// stays finite, and they never appear under negation (negated predicates
    /// only draw from earlier strata), so stratification is preserved.
    pub allow_recursion: bool,
}

impl Default for ProgramConfig {
    fn default() -> Self {
        ProgramConfig {
            strata: 2,
            rules_per_stratum: 2,
            allow_equations: true,
            allow_negation: true,
            allow_arity: true,
            allow_recursion: false,
        }
    }
}

/// A defect [`ProgramGenerator::random_program_with_defects`] injected into a
/// program, with the stable lint code `seqdl check` must report for it.
///
/// The codes are plain strings here (wgen sits below the analysis crate in
/// the dependency order); the property suite resolves them against
/// `seqdl_analysis::Lint::from_code` to keep them honest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectedDefect {
    /// The lint code the checker must report, e.g. `"SD-W105"`.
    pub code: &'static str,
    /// What was injected, for failure messages.
    pub description: String,
}

/// A seeded generator of random nonrecursive programs over the EDB schema
/// `{R0/1, R1/1}`.
#[derive(Clone, Debug)]
pub struct ProgramGenerator {
    seed: u64,
}

impl ProgramGenerator {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> ProgramGenerator {
        ProgramGenerator { seed }
    }

    /// The EDB relations every generated program reads: `R0` and `R1`, both unary.
    pub fn edb_relations() -> Vec<(RelName, usize)> {
        vec![(RelName::new("R0"), 1), (RelName::new("R1"), 1)]
    }

    /// Generate a random safe, stratified, nonrecursive program.  The relation
    /// defined by the last rule of the last stratum is a natural "output" relation
    /// for differential tests.
    pub fn random_nonrecursive_program(&self, salt: u64, config: &ProgramConfig) -> Program {
        let config = ProgramConfig {
            allow_recursion: false,
            ..*config
        };
        self.random_program(salt, &config)
    }

    /// Generate a random safe, stratified, *terminating* program; with
    /// [`ProgramConfig::allow_recursion`] set, strata may contain
    /// suffix-consuming recursive rules.
    pub fn random_program(&self, salt: u64, config: &ProgramConfig) -> Program {
        let mut rng =
            StdRng::seed_from_u64(self.seed.wrapping_mul(0x51_7C_C1_B7_27_22_0A_95) ^ salt);
        // Relations available to rule bodies: the EDB plus the heads of *earlier*
        // strata (never the current one, so the program is nonrecursive and
        // trivially stratified even with negation).
        let mut available: Vec<(RelName, usize)> = Self::edb_relations();
        let mut strata = Vec::new();

        for stratum_index in 0..config.strata.max(1) {
            let mut rules = Vec::new();
            let mut defined_here: Vec<(RelName, usize)> = Vec::new();
            for rule_index in 0..config.rules_per_stratum.max(1) {
                let head_arity = if config.allow_arity && rng.gen_bool(0.4) {
                    2
                } else {
                    1
                };
                let head_relation = RelName::new(&format!("S{stratum_index}_{rule_index}"));
                let rule =
                    self.random_rule(&mut rng, config, &available, head_relation, head_arity);
                defined_here.push((head_relation, head_arity));
                rules.push(rule);
            }
            // Optionally close one unary head of this stratum under suffixes with
            // a recursive rule.  The body predicate binds both variables, so the
            // rule is safe; derivations only shorten paths, so it terminates.
            if config.allow_recursion && rng.gen_bool(0.6) {
                if let Some(&(head, _)) = defined_here.iter().find(|(_, arity)| *arity == 1) {
                    let u = Var::atom("ru");
                    let y = Var::path("ry");
                    rules.push(Rule::new(
                        Predicate::new(head, vec![PathExpr::var(y)]),
                        vec![Literal::pred(Predicate::new(
                            head,
                            vec![PathExpr::from_terms([Term::Var(u), Term::Var(y)])],
                        ))],
                    ));
                }
            }
            available.extend(defined_here);
            strata.push(Stratum::new(rules));
        }
        Program::new(strata)
    }

    /// Generate a random program and inject three known defects into it: a
    /// dead rule (fresh head relation `Dead0` nothing reads), a duplicate of
    /// the last rule with freshly renamed variables, and a rule carrying a
    /// variable that occurs only once (`Lint0`).  Returns the program plus
    /// the lint codes `seqdl check` must report for the injections.
    ///
    /// The injected rules derive only fresh relations (or repeat an existing
    /// rule), so the program's output relation — the head of the last
    /// pre-injection rule, which the duplicate preserves — computes exactly
    /// what the clean program computes.
    pub fn random_program_with_defects(
        &self,
        salt: u64,
        config: &ProgramConfig,
    ) -> (Program, Vec<InjectedDefect>) {
        let mut program = self.random_program(salt, config);
        let mut defects = Vec::new();

        // Dead rule: a fresh relation nothing reads, prepended to the first
        // stratum so the natural output (last rule of the last stratum) keeps
        // its position.
        let v = Var::path("dead0");
        let dead = Rule::new(
            Predicate::new(RelName::new("Dead0"), vec![PathExpr::var(v)]),
            vec![Literal::pred(Predicate::new(
                RelName::new("R0"),
                vec![PathExpr::var(v)],
            ))],
        );
        defects.push(InjectedDefect {
            code: "SD-W101",
            description: format!("dead rule {dead}"),
        });
        defects.push(InjectedDefect {
            code: "SD-W102",
            description: "dead relation Dead0".to_string(),
        });
        program.strata[0].rules.insert(0, dead);

        // Unused variable: $unused0 occurs exactly once.  The rule is dead
        // too (nothing reads Lint0), but the variable lint is what it is for.
        let x = Var::path("lx");
        let unused = Var::path("unused0");
        let lint = Rule::new(
            Predicate::new(RelName::new("Lint0"), vec![PathExpr::var(x)]),
            vec![
                Literal::pred(Predicate::new(RelName::new("R0"), vec![PathExpr::var(x)])),
                Literal::pred(Predicate::new(
                    RelName::new("R1"),
                    vec![PathExpr::var(unused)],
                )),
            ],
        );
        defects.push(InjectedDefect {
            code: "SD-W201",
            description: format!("unused variable in {lint}"),
        });
        program.strata[0].rules.insert(1, lint);

        // Duplicate rule: repeat the output rule with renamed variables,
        // right after the original, so the last rule's head relation — the
        // natural output — is unchanged.
        if let Some(last) = program.strata.last_mut() {
            if let Some(original) = last.rules.last().cloned() {
                // Rename every variable to a fixed `dup{i}` name (Rule::
                // freshen_vars draws from a global counter, which would make
                // equal seeds produce unequal programs).
                let map: std::collections::BTreeMap<Var, Var> = original
                    .vars()
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let name = format!("dup{i}");
                        let fresh = match v.kind {
                            seqdl_syntax::VarKind::Atom => Var::atom(&name),
                            seqdl_syntax::VarKind::Path => Var::path(&name),
                        };
                        (v, fresh)
                    })
                    .collect();
                let copy = original.rename_vars(&map);
                defects.push(InjectedDefect {
                    code: "SD-W105",
                    description: format!("duplicate of {original}"),
                });
                last.rules.push(copy);
            }
        }

        (program, defects)
    }

    /// Generate a random *goal* pattern for `relation` with the given arity:
    /// per column, one of a free path variable, a ground prefix followed by a
    /// path variable (demanding a first value), a fully ground path, or `ε`.
    /// The constants are drawn from the vocabulary the program generator and
    /// [`crate::Workloads::random_flat_instance`] use, so goals sometimes have
    /// answers and sometimes do not — both matter to differential tests.
    pub fn random_goal(&self, salt: u64, relation: RelName, arity: usize) -> Predicate {
        let mut rng =
            StdRng::seed_from_u64(self.seed.wrapping_mul(0xD1_B5_4A_32_D1_92_ED_03) ^ salt);
        let constants = ["a", "b", "c", "x0", "x1"];
        let constant =
            |rng: &mut StdRng| Term::constant(constants[rng.gen_range(0..constants.len())]);
        let args: Vec<PathExpr> = (0..arity)
            .map(|column| {
                let tail = Var::path(&format!("g{column}"));
                match rng.gen_range(0..4u8) {
                    // Free column.
                    0 => PathExpr::var(tail),
                    // Bound first value, free tail.
                    1 => {
                        let mut terms = vec![constant(&mut rng)];
                        if rng.gen_bool(0.5) {
                            terms.push(constant(&mut rng));
                        }
                        terms.push(Term::Var(tail));
                        PathExpr::from_terms(terms)
                    }
                    // Fully ground column.
                    2 => {
                        let len = rng.gen_range(1usize..=2);
                        PathExpr::from_terms((0..len).map(|_| constant(&mut rng)))
                    }
                    // The empty path.
                    _ => PathExpr::empty(),
                }
            })
            .collect();
        Predicate::new(relation, args)
    }

    fn random_rule(
        &self,
        rng: &mut StdRng,
        config: &ProgramConfig,
        available: &[(RelName, usize)],
        head_relation: RelName,
        head_arity: usize,
    ) -> Rule {
        let mut next_var = 0usize;
        let fresh = |next_var: &mut usize| {
            let v = Var::path(&format!("v{next_var}"));
            *next_var += 1;
            v
        };

        // 1–2 positive body predicates over available relations, with fresh path
        // variables as arguments (every variable is therefore limited).
        let mut body = Vec::new();
        let mut bound: Vec<Var> = Vec::new();
        let predicate_count = 1 + usize::from(rng.gen_bool(0.5));
        for _ in 0..predicate_count {
            let (relation, arity) = available[rng.gen_range(0..available.len())];
            let args: Vec<PathExpr> = (0..arity)
                .map(|_| {
                    let v = fresh(&mut next_var);
                    bound.push(v);
                    PathExpr::var(v)
                })
                .collect();
            body.push(Literal::pred(Predicate::new(relation, args)));
        }

        // Optionally decompose one bound variable with a positive equation, binding
        // two new variables (the E feature; the new variables are limited because
        // the other side of the equation is).
        if config.allow_equations && rng.gen_bool(0.6) {
            let target = bound[rng.gen_range(0..bound.len())];
            let left = fresh(&mut next_var);
            let right = fresh(&mut next_var);
            body.push(Literal::eq(
                PathExpr::var(target),
                PathExpr::var(left).concat(&PathExpr::var(right)),
            ));
            bound.push(left);
            bound.push(right);
        }

        // Optionally a negated predicate over an available relation, using already
        // bound variables only (safe) — relations come from earlier strata or the
        // EDB, so stratification is preserved.
        if config.allow_negation && rng.gen_bool(0.5) {
            let (relation, arity) = available[rng.gen_range(0..available.len())];
            let args: Vec<PathExpr> = (0..arity)
                .map(|_| PathExpr::var(bound[rng.gen_range(0..bound.len())]))
                .collect();
            body.push(Literal::not_pred(Predicate::new(relation, args)));
        }

        // Head arguments: short concatenations of bound variables and constants.
        let constants = ["a", "b", "c"];
        let head_args: Vec<PathExpr> = (0..head_arity)
            .map(|_| {
                let pieces = 1 + usize::from(rng.gen_bool(0.5));
                let terms: Vec<Term> = (0..pieces)
                    .map(|_| {
                        if rng.gen_bool(0.7) {
                            Term::Var(bound[rng.gen_range(0..bound.len())])
                        } else {
                            Term::constant(constants[rng.gen_range(0..constants.len())])
                        }
                    })
                    .collect();
                PathExpr::from_terms(terms)
            })
            .collect();

        Rule::new(Predicate::new(head_relation, head_args), body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_syntax::analysis::{check_safety, check_stratification};
    use seqdl_syntax::FeatureSet;

    #[test]
    fn generated_programs_are_safe_stratified_and_nonrecursive() {
        let generator = ProgramGenerator::new(7);
        for salt in 0..40u64 {
            let program = generator.random_nonrecursive_program(salt, &ProgramConfig::default());
            check_safety(&program)
                .unwrap_or_else(|e| panic!("salt {salt}: unsafe: {e}\n{program}"));
            check_stratification(&program)
                .unwrap_or_else(|e| panic!("salt {salt}: not stratified: {e}\n{program}"));
            assert!(
                !FeatureSet::of_program(&program).recursion,
                "salt {salt}: recursive"
            );
        }
    }

    #[test]
    fn recursive_programs_are_safe_stratified_and_sometimes_recursive() {
        let generator = ProgramGenerator::new(21);
        let config = ProgramConfig {
            allow_recursion: true,
            ..ProgramConfig::default()
        };
        let mut saw_recursion = false;
        for salt in 0..40u64 {
            let program = generator.random_program(salt, &config);
            check_safety(&program)
                .unwrap_or_else(|e| panic!("salt {salt}: unsafe: {e}\n{program}"));
            check_stratification(&program)
                .unwrap_or_else(|e| panic!("salt {salt}: not stratified: {e}\n{program}"));
            saw_recursion |= FeatureSet::of_program(&program).recursion;
        }
        assert!(saw_recursion, "allow_recursion never produced a cycle");
    }

    #[test]
    fn generated_programs_respect_the_feature_switches() {
        let generator = ProgramGenerator::new(9);
        let config = ProgramConfig {
            allow_equations: false,
            allow_negation: false,
            allow_arity: false,
            ..ProgramConfig::default()
        };
        for salt in 0..20u64 {
            let program = generator.random_nonrecursive_program(salt, &config);
            let features = FeatureSet::of_program(&program);
            assert!(!features.equations, "salt {salt}");
            assert!(!features.negation, "salt {salt}");
            assert!(!features.arity, "salt {salt}");
            assert!(!features.packing, "salt {salt}");
        }
    }

    #[test]
    fn defect_injection_preserves_safety_stratification_and_the_output_rule() {
        let generator = ProgramGenerator::new(17);
        let config = ProgramConfig {
            allow_recursion: true,
            ..ProgramConfig::default()
        };
        for salt in 0..40u64 {
            let clean = generator.random_program(salt, &config);
            let (seeded, defects) = generator.random_program_with_defects(salt, &config);
            check_safety(&seeded).unwrap_or_else(|e| panic!("salt {salt}: unsafe: {e}\n{seeded}"));
            check_stratification(&seeded)
                .unwrap_or_else(|e| panic!("salt {salt}: not stratified: {e}\n{seeded}"));
            // Exactly the four designed defect codes.
            let mut codes: Vec<&str> = defects.iter().map(|d| d.code).collect();
            codes.sort_unstable();
            assert_eq!(codes, ["SD-W101", "SD-W102", "SD-W105", "SD-W201"]);
            // The natural output relation (head of the last rule) is the same
            // as in the clean program: the appended duplicate repeats it.
            let clean_out = clean.rules().last().unwrap().head.relation;
            let seeded_out = seeded.rules().last().unwrap().head.relation;
            assert_eq!(clean_out, seeded_out, "salt {salt}");
            assert_eq!(seeded.rule_count(), clean.rule_count() + 3, "salt {salt}");
        }
    }

    #[test]
    fn defect_injection_is_deterministic() {
        let generator = ProgramGenerator::new(23);
        let (a, da) = generator.random_program_with_defects(5, &ProgramConfig::default());
        let (b, db) = generator.random_program_with_defects(5, &ProgramConfig::default());
        assert_eq!(a, b);
        assert_eq!(da, db);
    }

    #[test]
    fn random_goals_cover_the_binding_patterns() {
        let generator = ProgramGenerator::new(13);
        let relation = RelName::new("S1_0");
        let (mut free, mut prefix, mut ground, mut empty) = (false, false, false, false);
        for salt in 0..60u64 {
            let goal = generator.random_goal(salt, relation, 2);
            assert_eq!(goal.relation, relation);
            assert_eq!(goal.arity(), 2);
            for arg in &goal.args {
                let vars = arg.vars();
                if arg.is_empty() {
                    empty = true;
                } else if vars.is_empty() {
                    ground = true;
                } else if arg.terms().len() == 1 {
                    free = true;
                } else {
                    prefix = true;
                }
            }
        }
        assert!(free && prefix && ground && empty, "all four patterns occur");
    }

    #[test]
    fn generation_is_deterministic_in_seed_and_salt() {
        let a = ProgramGenerator::new(3).random_nonrecursive_program(5, &ProgramConfig::default());
        let b = ProgramGenerator::new(3).random_nonrecursive_program(5, &ProgramConfig::default());
        let c = ProgramGenerator::new(4).random_nonrecursive_program(5, &ProgramConfig::default());
        assert_eq!(a, b);
        assert_ne!(a.to_string(), c.to_string());
    }

    #[test]
    fn programs_grow_with_the_configuration() {
        let generator = ProgramGenerator::new(11);
        let small = generator.random_nonrecursive_program(
            1,
            &ProgramConfig {
                strata: 1,
                rules_per_stratum: 1,
                ..ProgramConfig::default()
            },
        );
        let large = generator.random_nonrecursive_program(
            1,
            &ProgramConfig {
                strata: 3,
                rules_per_stratum: 4,
                ..ProgramConfig::default()
            },
        );
        assert_eq!(small.rule_count(), 1);
        assert_eq!(large.rule_count(), 12);
        assert_eq!(large.stratum_count(), 3);
    }
}
