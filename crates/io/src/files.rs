//! File-level helpers: load programs and instances from disk, save instances.

use crate::instance_text::{parse_instance, write_instance, InstanceParseError};
use seqdl_core::Instance;
use seqdl_syntax::{parse_program, Program, SyntaxError};
use std::fmt;
use std::path::Path as FsPath;

/// Errors raised by the file helpers.
#[derive(Debug)]
pub enum IoError {
    /// The file could not be read or written.
    File {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file was read but is not a well-formed program.
    Program {
        /// The path involved.
        path: String,
        /// The underlying parse error.
        source: SyntaxError,
    },
    /// The file was read but is not a well-formed instance.
    Instance {
        /// The path involved.
        path: String,
        /// The underlying parse error.
        source: InstanceParseError,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::File { path, source } => write!(f, "{path}: {source}"),
            IoError::Program { path, source } => write!(f, "{path}: {source}"),
            IoError::Instance { path, source } => write!(f, "{path}: {source}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Strip full-line comments (`#` or `%` as the first non-whitespace character).
fn strip_comment_lines(text: &str) -> String {
    text.lines()
        .filter(|line| {
            let trimmed = line.trim_start();
            !(trimmed.starts_with('#') || trimmed.starts_with('%'))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Load a Sequence Datalog program from a `.sdl` file.
///
/// # Errors
/// File-system errors and parse errors, each tagged with the path.
pub fn load_program(path: impl AsRef<FsPath>) -> Result<Program, IoError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|source| IoError::File {
        path: path.display().to_string(),
        source,
    })?;
    parse_program(&strip_comment_lines(&text)).map_err(|source| IoError::Program {
        path: path.display().to_string(),
        source,
    })
}

/// Load a sequence database instance from a `.sdi` file.
///
/// # Errors
/// File-system errors and parse errors, each tagged with the path.
pub fn load_instance(path: impl AsRef<FsPath>) -> Result<Instance, IoError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|source| IoError::File {
        path: path.display().to_string(),
        source,
    })?;
    parse_instance(&text).map_err(|source| IoError::Instance {
        path: path.display().to_string(),
        source,
    })
}

/// Save an instance to a `.sdi` file in the textual format of
/// [`crate::instance_text::write_instance`].
///
/// # Errors
/// File-system errors, tagged with the path.
pub fn save_instance(path: impl AsRef<FsPath>, instance: &Instance) -> Result<(), IoError> {
    let path = path.as_ref();
    std::fs::write(path, write_instance(instance)).map_err(|source| IoError::File {
        path: path.display().to_string(),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, rel, Fact};

    fn temp_file(name: &str) -> std::path::PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("seqdl-io-test-{}-{name}", std::process::id()));
        dir
    }

    #[test]
    fn programs_load_from_files_with_comments() {
        let path = temp_file("program.sdl");
        std::fs::write(
            &path,
            "# the only-a's query (Example 3.1)\nS($x) <- R($x), a·$x = $x·a.\n% trailing comment\n",
        )
        .unwrap();
        let program = load_program(&path).unwrap();
        assert_eq!(program.rule_count(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn instances_round_trip_through_files() {
        let path = temp_file("instance.sdi");
        let mut instance = Instance::unary(rel("R"), [path_of(&["a", "b"])]);
        instance.declare_relation(rel("D"), 3);
        instance
            .insert_fact(Fact::new(
                rel("D"),
                vec![path_of(&["q0"]), path_of(&["a"]), path_of(&["q1"])],
            ))
            .unwrap();
        save_instance(&path, &instance).unwrap();
        let back = load_instance(&path).unwrap();
        assert_eq!(back.fact_count(), instance.fact_count());
        assert_eq!(back.unary_paths(rel("R")), instance.unary_paths(rel("R")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_files_report_the_path() {
        let err = load_program("/nonexistent/prog.sdl").unwrap_err();
        assert!(err.to_string().contains("/nonexistent/prog.sdl"));
        let err = load_instance("/nonexistent/inst.sdi").unwrap_err();
        assert!(err.to_string().contains("/nonexistent/inst.sdi"));
    }

    #[test]
    fn malformed_files_report_parse_errors() {
        let path = temp_file("bad.sdl");
        std::fs::write(&path, "S($x <- R($x).").unwrap();
        assert!(matches!(load_program(&path), Err(IoError::Program { .. })));
        std::fs::remove_file(&path).ok();

        let path = temp_file("bad.sdi");
        std::fs::write(&path, "R($x).").unwrap();
        assert!(matches!(
            load_instance(&path),
            Err(IoError::Instance { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
