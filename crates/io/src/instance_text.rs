//! The textual instance format: ground facts, one per line.

use seqdl_core::{Fact, Instance, Path, RelName};
use seqdl_syntax::parse_rule;
use std::fmt;

/// Errors raised while parsing an instance file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for InstanceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instance parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for InstanceParseError {}

/// Render an instance in the textual format: one `@relation` declaration per
/// relation (so empty relations survive the round trip) followed by one ground fact
/// per line, both sorted for reproducible output.
pub fn write_instance(instance: &Instance) -> String {
    let mut out = String::new();
    // `relation_names_iter` walks the instance's map in name order without
    // materialising a vector.
    for name in instance.relation_names_iter() {
        if let Some(relation) = instance.relation(name) {
            out.push_str(&format!("@relation {}/{}.\n", name, relation.arity()));
        }
    }
    let mut rendered: Vec<String> = instance.facts().map(|f| render_fact(&f)).collect();
    rendered.sort();
    for fact in rendered {
        out.push_str(&fact);
        out.push('\n');
    }
    out
}

fn render_fact(fact: &Fact) -> String {
    if fact.tuple.is_empty() {
        return format!("{}.", fact.relation);
    }
    let args: Vec<String> = fact.tuple.iter().map(Path::to_string).collect();
    format!("{}({}).", fact.relation, args.join(", "))
}

/// Parse the textual instance format produced by [`write_instance`].
///
/// Lines whose first non-whitespace character is `#` or `%` are comments; blank
/// lines are ignored.  `@relation R/2.` declares a relation.  Every other line must
/// be a single ground fact terminated by `.`.
///
/// # Errors
/// Reports the first offending line: syntax errors, non-ground facts, facts with a
/// body, or arity clashes.
pub fn parse_instance(text: &str) -> Result<Instance, InstanceParseError> {
    let mut instance = Instance::new();
    for (index, raw_line) in text.lines().enumerate() {
        let line_number = index + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        if let Some(declaration) = line.strip_prefix("@relation") {
            let (name, arity) =
                parse_declaration(declaration).map_err(|message| InstanceParseError {
                    line: line_number,
                    message,
                })?;
            instance.declare_relation(RelName::new(&name), arity);
            continue;
        }
        let fact = parse_fact_line(line).map_err(|message| InstanceParseError {
            line: line_number,
            message,
        })?;
        instance.insert_fact(fact).map_err(|e| InstanceParseError {
            line: line_number,
            message: e.to_string(),
        })?;
    }
    Ok(instance)
}

fn parse_declaration(rest: &str) -> Result<(String, usize), String> {
    let rest = rest.trim().trim_end_matches('.');
    let (name, arity) = rest
        .split_once('/')
        .ok_or_else(|| "expected `@relation Name/arity.`".to_string())?;
    let arity: usize = arity
        .trim()
        .parse()
        .map_err(|_| format!("invalid arity `{}`", arity.trim()))?;
    let name = name.trim();
    if name.is_empty() {
        return Err("empty relation name".to_string());
    }
    Ok((name.to_string(), arity))
}

fn parse_fact_line(line: &str) -> Result<Fact, String> {
    let rule = parse_rule(line).map_err(|e| e.to_string())?;
    if !rule.body.is_empty() {
        return Err("facts must not have a body".to_string());
    }
    let mut tuple = Vec::with_capacity(rule.head.args.len());
    for arg in &rule.head.args {
        match arg.as_path() {
            Some(path) => tuple.push(path),
            None => {
                return Err(format!(
                    "component `{arg}` is not ground; instance files may only contain ground facts"
                ))
            }
        }
    }
    Ok(Fact::new(rule.head.relation, tuple))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{atom, path_of, rel, Value};

    fn roundtrip(instance: &Instance) -> Instance {
        parse_instance(&write_instance(instance)).expect("round trip parses")
    }

    #[test]
    fn simple_unary_instances_round_trip() {
        let instance = Instance::unary(
            rel("R"),
            [path_of(&["a", "b", "c"]), path_of(&["a"]), Path::empty()],
        );
        let back = roundtrip(&instance);
        assert_eq!(back.unary_paths(rel("R")), instance.unary_paths(rel("R")));
        assert_eq!(back.fact_count(), 3);
    }

    #[test]
    fn higher_arity_and_nullary_facts_round_trip() {
        let mut instance = Instance::new();
        instance.declare_relation(rel("D"), 3);
        instance.declare_relation(rel("Flag"), 0);
        instance
            .insert_fact(Fact::new(
                rel("D"),
                vec![path_of(&["q0"]), path_of(&["a"]), path_of(&["q1"])],
            ))
            .unwrap();
        instance
            .insert_fact(Fact::new(rel("Flag"), vec![]))
            .unwrap();
        let back = roundtrip(&instance);
        assert!(back.nullary_true(rel("Flag")));
        assert!(back.contains_fact(&Fact::new(
            rel("D"),
            vec![path_of(&["q0"]), path_of(&["a"]), path_of(&["q1"])],
        )));
    }

    #[test]
    fn packed_values_round_trip() {
        let packed =
            Path::from_values([Value::Atom(atom("c")), Value::packed(path_of(&["a", "b"]))]);
        let instance = Instance::unary(rel("R"), [packed]);
        let back = roundtrip(&instance);
        assert!(back.unary_paths(rel("R")).contains(&packed));
    }

    #[test]
    fn odd_atom_names_round_trip_via_quoting() {
        let instance = Instance::unary(
            rel("Log"),
            [path_of(&["receive-payment", "2020", "has space", "eps"])],
        );
        let back = roundtrip(&instance);
        assert_eq!(
            back.unary_paths(rel("Log")),
            instance.unary_paths(rel("Log"))
        );
    }

    #[test]
    fn empty_relations_survive_via_declarations() {
        let mut instance = Instance::new();
        instance.declare_relation(rel("Empty"), 2);
        instance.declare_relation(rel("R"), 1);
        instance
            .insert_fact(Fact::new(rel("R"), vec![path_of(&["a"])]))
            .unwrap();
        let back = roundtrip(&instance);
        assert!(back.relation(rel("Empty")).is_some());
        assert_eq!(back.relation(rel("Empty")).unwrap().arity(), 2);
        assert_eq!(back.relation(rel("Empty")).unwrap().len(), 0);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a comment\n\n% another comment\nR(a·b).\n   \nR(c).\n";
        let instance = parse_instance(text).unwrap();
        assert_eq!(instance.unary_paths(rel("R")).len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_instance("R(a).\nR($x).\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("ground"));

        let err = parse_instance("R(a).\nS(b) <- R(a).\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("body"));

        let err = parse_instance("R(a).\nR(a, b).\n").unwrap_err();
        assert_eq!(err.line, 2, "arity clash is reported on the offending line");

        let err = parse_instance("@relation R.\n").unwrap_err();
        assert_eq!(err.line, 1);

        let err = parse_instance("@relation R/x.\n").unwrap_err();
        assert!(err.message.contains("arity"));

        assert!(parse_instance("not a fact\n").is_err());
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let mut a = Instance::new();
        a.declare_relation(rel("B"), 1);
        a.declare_relation(rel("A"), 1);
        a.insert_fact(Fact::new(rel("B"), vec![path_of(&["z"])]))
            .unwrap();
        a.insert_fact(Fact::new(rel("A"), vec![path_of(&["y"])]))
            .unwrap();
        a.insert_fact(Fact::new(rel("A"), vec![path_of(&["x"])]))
            .unwrap();
        let first = write_instance(&a);
        let second = write_instance(&parse_instance(&first).unwrap());
        assert_eq!(first, second, "writing is idempotent after one round trip");
    }
}
