//! # seqdl-io — loading and storing sequence databases and programs
//!
//! A small, dependency-free text format for sequence database instances, plus
//! helpers for reading programs and instances from files:
//!
//! * An **instance file** (`.sdi`) is a list of ground facts, one per line, in the
//!   same syntax the engine and the paper use: `R(a·b·c).`, `D(q0, a, q1).`,
//!   `Flag().` for nullary facts.  Blank lines and `#`/`%` comments are ignored.
//!   An optional declaration line `@relation R/1.` declares a relation (so that
//!   empty relations survive a round trip).
//! * A **program file** (`.sdl`) is ordinary Sequence Datalog source as accepted by
//!   [`seqdl_syntax::parse_program`], with the same comment conventions.
//!
//! [`write_instance`] and [`parse_instance`] round-trip every instance, including
//! ones with packed values.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod files;
pub mod instance_text;

pub use files::{load_instance, load_program, save_instance, IoError};
pub use instance_text::{parse_instance, write_instance, InstanceParseError};

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, rel, Instance};

    #[test]
    fn public_api_smoke_test() {
        let instance = Instance::unary(rel("R"), [path_of(&["a", "b"])]);
        let text = write_instance(&instance);
        let back = parse_instance(&text).unwrap();
        assert_eq!(back.unary_paths(rel("R")), instance.unary_paths(rel("R")));
    }
}
