//! Variable substitutions and symbolic solutions (Section 4.3.1).

use seqdl_syntax::{Equation, PathExpr, Var};
use std::collections::BTreeMap;
use std::fmt;

/// A variable substitution: a partial map from variables to path expressions.
///
/// A substitution ρ is a *symbolic solution* of an equation `e1 = e2` if
/// `ρ(e1)` and `ρ(e2)` are the same path expression.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Substitution {
    map: BTreeMap<Var, PathExpr>,
}

impl Substitution {
    /// The identity (empty) substitution.
    pub fn identity() -> Substitution {
        Substitution::default()
    }

    /// A substitution with a single binding.
    pub fn single(var: Var, expr: PathExpr) -> Substitution {
        let mut s = Substitution::identity();
        s.bind(var, expr);
        s
    }

    /// Bind `var` to `expr` (overwriting any previous binding).
    pub fn bind(&mut self, var: Var, expr: PathExpr) {
        self.map.insert(var, expr);
    }

    /// The image of `var`, if bound.
    pub fn get(&self, var: Var) -> Option<&PathExpr> {
        self.map.get(&var)
    }

    /// Is the substitution the identity?
    pub fn is_identity(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the substitution empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &PathExpr)> + '_ {
        self.map.iter().map(|(v, e)| (*v, e))
    }

    /// The domain of the substitution.
    pub fn domain(&self) -> Vec<Var> {
        self.map.keys().copied().collect()
    }

    /// The underlying map, for use with [`PathExpr::substitute`].
    pub fn as_map(&self) -> &BTreeMap<Var, PathExpr> {
        &self.map
    }

    /// Apply the substitution to a path expression.
    pub fn apply(&self, expr: &PathExpr) -> PathExpr {
        expr.substitute(&self.map)
    }

    /// Apply the substitution to both sides of an equation.
    pub fn apply_eq(&self, eq: &Equation) -> Equation {
        Equation::new(self.apply(&eq.lhs), self.apply(&eq.rhs))
    }

    /// Composition `step ∘ self`: first apply `self`, then `step`.
    ///
    /// The result maps every variable `v` in `self`'s domain to `step(self(v))`,
    /// and every variable in `step`'s domain but not `self`'s to `step(v)`.
    pub fn then(&self, step: &Substitution) -> Substitution {
        let mut out = BTreeMap::new();
        for (v, e) in &self.map {
            out.insert(*v, step.apply(e));
        }
        for (v, e) in &step.map {
            out.entry(*v).or_insert_with(|| e.clone());
        }
        Substitution { map: out }
    }

    /// Restrict the substitution to the given variables.
    pub fn restricted_to(&self, vars: &[Var]) -> Substitution {
        Substitution {
            map: self
                .map
                .iter()
                .filter(|(v, _)| vars.contains(v))
                .map(|(v, e)| (*v, e.clone()))
                .collect(),
        }
    }

    /// Is this substitution a symbolic solution of `eq`, i.e. does applying it make
    /// both sides syntactically equal?
    pub fn solves(&self, eq: &Equation) -> bool {
        self.apply(&eq.lhs) == self.apply(&eq.rhs)
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (v, e)) in self.map.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v} -> {e}")?;
        }
        f.write_str("}")
    }
}

impl FromIterator<(Var, PathExpr)> for Substitution {
    fn from_iter<T: IntoIterator<Item = (Var, PathExpr)>>(iter: T) -> Self {
        Substitution {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_syntax::parse_expr;

    fn e(s: &str) -> PathExpr {
        parse_expr(s).unwrap()
    }

    #[test]
    fn application_substitutes_and_flattens() {
        let s = Substitution::single(Var::path("x"), e("a·$y"));
        assert_eq!(s.apply(&e("$x·$x")), e("a·$y·a·$y"));
        assert_eq!(s.apply(&e("<$x>·b")), e("<a·$y>·b"));
        assert_eq!(s.apply(&e("$z")), e("$z"));
    }

    #[test]
    fn composition_applies_left_then_right() {
        // self: $x ↦ $u·$x   then step: $u ↦ @w  gives  $x ↦ @w·$x, $u ↦ @w.
        let first = Substitution::single(Var::path("x"), e("$u·$x"));
        let step = Substitution::single(Var::path("u"), e("@w"));
        let composed = first.then(&step);
        assert_eq!(composed.get(Var::path("x")), Some(&e("@w·$x")));
        assert_eq!(composed.get(Var::path("u")), Some(&e("@w")));
        assert_eq!(composed.len(), 2);
    }

    #[test]
    fn composition_with_identity_is_identity() {
        let s = Substitution::single(Var::path("x"), e("a"));
        assert_eq!(s.then(&Substitution::identity()), s);
        assert_eq!(Substitution::identity().then(&s), s);
    }

    #[test]
    fn solves_checks_syntactic_equality_after_application() {
        // Paper Example 4.8, first solution of $x·⟨@y·$z⟩·@w = $u·$v·$u:
        //   {$x ↦ @w, $u ↦ @w, $v ↦ ⟨@y·$z⟩}
        let eq = Equation::new(e("$x·<@y·$z>·@w"), e("$u·$v·$u"));
        let sol: Substitution = [
            (Var::path("x"), e("@w")),
            (Var::path("u"), e("@w")),
            (Var::path("v"), e("<@y·$z>")),
        ]
        .into_iter()
        .collect();
        assert!(sol.solves(&eq));
        let not_sol = Substitution::single(Var::path("x"), e("@w"));
        assert!(!not_sol.solves(&eq));
    }

    #[test]
    fn restriction_keeps_only_requested_vars() {
        let s: Substitution = [(Var::path("x"), e("a")), (Var::path("y"), e("b"))]
            .into_iter()
            .collect();
        let r = s.restricted_to(&[Var::path("x")]);
        assert_eq!(r.len(), 1);
        assert!(r.get(Var::path("y")).is_none());
    }

    #[test]
    fn display_matches_paper_notation() {
        let s = Substitution::single(Var::path("u"), e("<@y·$z>·@w"));
        assert_eq!(s.to_string(), "{$u -> <@y·$z>·@w}");
        assert_eq!(Substitution::identity().to_string(), "{}");
    }
}
