//! The extended pig-pug rewriting procedure (Sections 4.3.1 and 4.3.2).

use crate::subst::Substitution;
use crate::tree::{NodeStatus, SearchTree};
use seqdl_syntax::{Equation, PathExpr, Term, Var, VarKind};
use std::collections::BTreeSet;
use std::fmt;

/// Options bounding the pig-pug search.
///
/// On one-sided nonlinear equations the procedure terminates on its own; the limits
/// exist so that other inputs (such as `$x·a = a·$x`, whose solution set has no
/// finite complete representation by substitutions) fail loudly instead of looping.
#[derive(Clone, Copy, Debug)]
pub struct SolveOptions {
    /// Maximum number of search-tree nodes before giving up.
    pub max_nodes: usize,
    /// Maximum branch depth before giving up.
    pub max_depth: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_nodes: 50_000,
            max_depth: 500,
        }
    }
}

/// Errors raised by the unification procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnifyError {
    /// The search exceeded the configured node or depth limit.
    SearchLimit {
        /// Number of nodes explored when the limit was hit.
        nodes: usize,
    },
    /// The empty-word closure would need to enumerate too many subsets.
    TooManyVariables {
        /// Number of path variables in the equation.
        count: usize,
    },
}

impl fmt::Display for UnifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnifyError::SearchLimit { nodes } => {
                write!(
                    f,
                    "associative unification exceeded the search limit after {nodes} nodes"
                )
            }
            UnifyError::TooManyVariables { count } => write!(
                f,
                "empty-word closure over {count} path variables is too large"
            ),
        }
    }
}

impl std::error::Error for UnifyError {}

/// The result of a pig-pug run: the complete set of symbolic solutions (restricted
/// to the variables of the input equation, de-duplicated) and the search tree.
#[derive(Clone, Debug)]
pub struct SolutionSet {
    /// The symbolic solutions, one per successful branch (de-duplicated).
    pub solutions: Vec<Substitution>,
    /// The search tree explored by the procedure.
    pub tree: SearchTree,
}

impl SolutionSet {
    /// Is the equation unsatisfiable under nonempty-word semantics?
    pub fn is_unsatisfiable(&self) -> bool {
        self.solutions.is_empty()
    }
}

/// Is the equation *one-sided nonlinear*: does every variable that occurs more than
/// once (counting both sides) occur in only one side?  Pig-pug terminates on such
/// equations \[Durán et al. 2018\].
pub fn is_one_sided_nonlinear(eq: &Equation) -> bool {
    let lhs_occ = eq.lhs.var_occurrences();
    let rhs_occ = eq.rhs.var_occurrences();
    let all_vars: BTreeSet<Var> = lhs_occ.iter().chain(rhs_occ.iter()).copied().collect();
    for v in all_vars {
        let in_lhs = lhs_occ.iter().filter(|x| **x == v).count();
        let in_rhs = rhs_occ.iter().filter(|x| **x == v).count();
        if in_lhs + in_rhs > 1 && in_lhs > 0 && in_rhs > 0 {
            return false;
        }
    }
    true
}

/// Solve an equation under the classical *nonempty-word* semantics: variables range
/// over nonempty paths (atomic variables over atomic values).
///
/// Returns the complete set of symbolic solutions and the search tree.
///
/// # Errors
/// [`UnifyError::SearchLimit`] if the search exceeds the configured bounds.
pub fn solve(eq: &Equation, options: &SolveOptions) -> Result<SolutionSet, UnifyError> {
    let mut tree = SearchTree::with_root(eq.clone());
    let original_vars = eq.vars();
    let mut solutions: Vec<Substitution> = Vec::new();
    // Depth-first work list of (node id, depth).
    let mut work: Vec<(usize, usize)> = vec![(tree.root(), 0)];

    while let Some((node_id, depth)) = work.pop() {
        if tree.len() > options.max_nodes || depth > options.max_depth {
            return Err(UnifyError::SearchLimit { nodes: tree.len() });
        }
        let equation = tree.node(node_id).equation.clone();
        match step(&equation, options)? {
            StepResult::Success => {
                tree.set_status(node_id, NodeStatus::Success);
                let branch = tree.branch_substitution(node_id);
                let restricted = branch.restricted_to(&original_vars);
                if !solutions.contains(&restricted) {
                    solutions.push(restricted);
                }
            }
            StepResult::Failure => {
                tree.set_status(node_id, NodeStatus::Failure);
            }
            StepResult::Children(children) => {
                if children.is_empty() {
                    tree.set_status(node_id, NodeStatus::Failure);
                } else {
                    for (step_subst, child_eq) in children {
                        let child_id = tree.add_child(node_id, step_subst, child_eq);
                        work.push((child_id, depth + 1));
                    }
                }
            }
        }
    }

    // Keep only genuine symbolic solutions (defensive; every branch composition
    // should already solve the equation).
    solutions.retain(|s| s.solves(eq));
    Ok(SolutionSet { solutions, tree })
}

/// Solve an equation allowing variables to denote the *empty* path, using the
/// closure of footnote 4: for every subset `Y` of the path variables, solve the
/// equation with the variables of `Y` replaced by `ε` and extend each solution by
/// `Y ↦ ε`.  Atomic variables always denote atomic values and are never emptied.
///
/// # Errors
/// [`UnifyError::TooManyVariables`] if the equation has more than 16 path variables,
/// and any error of [`solve`].
pub fn solve_allowing_empty(
    eq: &Equation,
    options: &SolveOptions,
) -> Result<Vec<Substitution>, UnifyError> {
    let path_vars: Vec<Var> = eq
        .vars()
        .into_iter()
        .filter(|v| v.kind == VarKind::Path)
        .collect();
    if path_vars.len() > 16 {
        return Err(UnifyError::TooManyVariables {
            count: path_vars.len(),
        });
    }
    let mut all: Vec<Substitution> = Vec::new();
    for mask in 0u32..(1u32 << path_vars.len()) {
        let emptied: Vec<Var> = path_vars
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, v)| *v)
            .collect();
        let empty_map: std::collections::BTreeMap<Var, PathExpr> =
            emptied.iter().map(|v| (*v, PathExpr::empty())).collect();
        let eq_y = Equation::new(eq.lhs.substitute(&empty_map), eq.rhs.substitute(&empty_map));
        let base = solve(&eq_y, options)?;
        for sol in base.solutions {
            let mut extended = sol;
            for v in &emptied {
                extended.bind(*v, PathExpr::empty());
            }
            if extended.solves(eq) && !all.contains(&extended) {
                all.push(extended);
            }
        }
    }
    Ok(all)
}

enum StepResult {
    Success,
    Failure,
    Children(Vec<(Option<Substitution>, Equation)>),
}

/// Apply one step of the (extended) rewriting relation to an equation.
fn step(eq: &Equation, options: &SolveOptions) -> Result<StepResult, UnifyError> {
    let lhs = eq.lhs.terms();
    let rhs = eq.rhs.terms();
    match (lhs.first(), rhs.first()) {
        (None, None) => return Ok(StepResult::Success),
        (None, Some(_)) | (Some(_), None) => return Ok(StepResult::Failure),
        _ => {}
    }
    let l = lhs[0].clone();
    let r = rhs[0].clone();
    let rest_l = PathExpr::from_terms(lhs[1..].iter().cloned());
    let rest_r = PathExpr::from_terms(rhs[1..].iter().cloned());

    // Cancellation rule: identical first symbols cancel.
    if l == r {
        return Ok(StepResult::Children(vec![(
            None,
            Equation::new(rest_l, rest_r),
        )]));
    }

    let single = |t: Term| PathExpr::singleton(t);
    let child = |rho: Substitution, new_lhs: PathExpr, new_rhs: PathExpr| {
        (Some(rho), Equation::new(new_lhs, new_rhs))
    };

    let result = match (&l, &r) {
        // --- classical word-equation rules -------------------------------------
        // (a)-(c): two distinct path variables at the front.
        (Term::Var(x), Term::Var(y)) if x.is_path_var() && y.is_path_var() => {
            let mut children = Vec::new();
            // (a) x ↦ y·x : x denotes more than y.
            let rho_a =
                Substitution::single(*x, single(Term::Var(*y)).concat(&single(Term::Var(*x))));
            children.push(child(
                rho_a.clone(),
                single(Term::Var(*x)).concat(&rho_a.apply(&rest_l)),
                rho_a.apply(&rest_r),
            ));
            // (b) x ↦ y : both denote the same.
            let rho_b = Substitution::single(*x, single(Term::Var(*y)));
            children.push(child(
                rho_b.clone(),
                rho_b.apply(&rest_l),
                rho_b.apply(&rest_r),
            ));
            // (c) y ↦ x·y : y denotes more than x.
            let rho_c =
                Substitution::single(*y, single(Term::Var(*x)).concat(&single(Term::Var(*y))));
            children.push(child(
                rho_c.clone(),
                rho_c.apply(&rest_l),
                single(Term::Var(*y)).concat(&rho_c.apply(&rest_r)),
            ));
            StepResult::Children(children)
        }
        // (d)-(e): path variable vs constant.
        (Term::Var(x), Term::Const(a)) if x.is_path_var() => {
            let mut children = Vec::new();
            let rho_d =
                Substitution::single(*x, single(Term::Const(*a)).concat(&single(Term::Var(*x))));
            children.push(child(
                rho_d.clone(),
                single(Term::Var(*x)).concat(&rho_d.apply(&rest_l)),
                rho_d.apply(&rest_r),
            ));
            let rho_e = Substitution::single(*x, single(Term::Const(*a)));
            children.push(child(
                rho_e.clone(),
                rho_e.apply(&rest_l),
                rho_e.apply(&rest_r),
            ));
            StepResult::Children(children)
        }
        // (f)-(g): constant vs path variable.
        (Term::Const(a), Term::Var(y)) if y.is_path_var() => {
            let mut children = Vec::new();
            let rho_f =
                Substitution::single(*y, single(Term::Const(*a)).concat(&single(Term::Var(*y))));
            children.push(child(
                rho_f.clone(),
                rho_f.apply(&rest_l),
                single(Term::Var(*y)).concat(&rho_f.apply(&rest_r)),
            ));
            let rho_g = Substitution::single(*y, single(Term::Const(*a)));
            children.push(child(
                rho_g.clone(),
                rho_g.apply(&rest_l),
                rho_g.apply(&rest_r),
            ));
            StepResult::Children(children)
        }
        // Distinct constants at the front: failure leaf.
        (Term::Const(_), Term::Const(_)) => StepResult::Failure,

        // --- extension rules of Section 4.3.2 ----------------------------------
        // (h): two distinct atomic variables must coincide.
        (Term::Var(x), Term::Var(y)) if x.is_atom_var() && y.is_atom_var() => {
            let rho = Substitution::single(*x, single(Term::Var(*y)));
            StepResult::Children(vec![child(
                rho.clone(),
                rho.apply(&rest_l),
                rho.apply(&rest_r),
            )])
        }
        // Atomic variable vs constant (either orientation): the variable is the
        // constant.
        (Term::Var(x), Term::Const(a)) if x.is_atom_var() => {
            let rho = Substitution::single(*x, single(Term::Const(*a)));
            StepResult::Children(vec![child(
                rho.clone(),
                rho.apply(&rest_l),
                rho.apply(&rest_r),
            )])
        }
        (Term::Const(a), Term::Var(y)) if y.is_atom_var() => {
            let rho = Substitution::single(*y, single(Term::Const(*a)));
            StepResult::Children(vec![child(
                rho.clone(),
                rho.apply(&rest_l),
                rho.apply(&rest_r),
            )])
        }
        // (i): atomic variable vs path variable.
        (Term::Var(x), Term::Var(y)) if x.is_atom_var() && y.is_path_var() => {
            let mut children = Vec::new();
            let rho1 =
                Substitution::single(*y, single(Term::Var(*x)).concat(&single(Term::Var(*y))));
            children.push(child(
                rho1.clone(),
                rho1.apply(&rest_l),
                single(Term::Var(*y)).concat(&rho1.apply(&rest_r)),
            ));
            let rho2 = Substitution::single(*y, single(Term::Var(*x)));
            children.push(child(
                rho2.clone(),
                rho2.apply(&rest_l),
                rho2.apply(&rest_r),
            ));
            StepResult::Children(children)
        }
        // (j): path variable vs atomic variable.
        (Term::Var(x), Term::Var(y)) if x.is_path_var() && y.is_atom_var() => {
            let mut children = Vec::new();
            let rho1 =
                Substitution::single(*x, single(Term::Var(*y)).concat(&single(Term::Var(*x))));
            children.push(child(
                rho1.clone(),
                single(Term::Var(*x)).concat(&rho1.apply(&rest_l)),
                rho1.apply(&rest_r),
            ));
            let rho2 = Substitution::single(*x, single(Term::Var(*y)));
            children.push(child(
                rho2.clone(),
                rho2.apply(&rest_l),
                rho2.apply(&rest_r),
            ));
            StepResult::Children(children)
        }
        // (k): two packed expressions at the front — solve the inner equation first.
        (Term::Packed(w1), Term::Packed(w3)) => {
            let inner = Equation::new(w1.clone(), w3.clone());
            let inner_solutions = solve_allowing_empty(&inner, options)?;
            let children = inner_solutions
                .into_iter()
                .map(|rho| {
                    (
                        Some(rho.clone()),
                        Equation::new(rho.apply(&rest_l), rho.apply(&rest_r)),
                    )
                })
                .collect();
            StepResult::Children(children)
        }
        // (l): packed expression vs path variable.
        (Term::Packed(w1), Term::Var(y)) if y.is_path_var() => {
            let packed = PathExpr::singleton(Term::Packed(w1.clone()));
            let mut children = Vec::new();
            let rho1 = Substitution::single(*y, packed.concat(&single(Term::Var(*y))));
            children.push(child(
                rho1.clone(),
                rho1.apply(&rest_l),
                single(Term::Var(*y)).concat(&rho1.apply(&rest_r)),
            ));
            let rho2 = Substitution::single(*y, packed);
            children.push(child(
                rho2.clone(),
                rho2.apply(&rest_l),
                rho2.apply(&rest_r),
            ));
            StepResult::Children(children)
        }
        // (m): path variable vs packed expression.
        (Term::Var(x), Term::Packed(w2)) if x.is_path_var() => {
            let packed = PathExpr::singleton(Term::Packed(w2.clone()));
            let mut children = Vec::new();
            let rho1 = Substitution::single(*x, packed.concat(&single(Term::Var(*x))));
            children.push(child(
                rho1.clone(),
                single(Term::Var(*x)).concat(&rho1.apply(&rest_l)),
                rho1.apply(&rest_r),
            ));
            let rho2 = Substitution::single(*x, packed);
            children.push(child(
                rho2.clone(),
                rho2.apply(&rest_l),
                rho2.apply(&rest_r),
            ));
            StepResult::Children(children)
        }
        // Atomic variable or constant vs packed expression (either orientation):
        // never satisfiable (extra non-successful leaves of Section 4.3.2).
        (Term::Var(x), Term::Packed(_)) if x.is_atom_var() => StepResult::Failure,
        (Term::Packed(_), Term::Var(y)) if y.is_atom_var() => StepResult::Failure,
        (Term::Const(_), Term::Packed(_)) | (Term::Packed(_), Term::Const(_)) => {
            StepResult::Failure
        }
        // All cases are covered above; the compiler cannot see that.
        _ => unreachable!("unhandled pig-pug case: {l} vs {r}"),
    };
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_syntax::parse_expr;

    fn eq(l: &str, r: &str) -> Equation {
        Equation::new(parse_expr(l).unwrap(), parse_expr(r).unwrap())
    }

    fn solve_ok(l: &str, r: &str) -> SolutionSet {
        solve(&eq(l, r), &SolveOptions::default()).unwrap()
    }

    #[test]
    fn ground_equations_are_checked_directly() {
        assert_eq!(solve_ok("a·b", "a·b").solutions.len(), 1);
        assert!(solve_ok("a·b", "a·b").solutions[0].is_identity());
        assert!(solve_ok("a·b", "a·c").is_unsatisfiable());
        assert!(solve_ok("a·b", "a").is_unsatisfiable());
        assert_eq!(solve_ok("eps", "eps").solutions.len(), 1);
        assert!(solve_ok("<a>", "a").is_unsatisfiable());
        assert_eq!(solve_ok("<a·b>", "<a·b>").solutions.len(), 1);
    }

    #[test]
    fn simple_variable_equations() {
        // $x = a·b has exactly one solution.
        let s = solve_ok("$x", "a·b");
        assert_eq!(s.solutions.len(), 1);
        assert_eq!(
            s.solutions[0].get(Var::path("x")),
            Some(&parse_expr("a·b").unwrap())
        );
        // @x = a.
        let s = solve_ok("@x", "a");
        assert_eq!(s.solutions.len(), 1);
        // @x = a·b is unsatisfiable (atomic variables denote single atoms).
        assert!(solve_ok("@x", "a·b").is_unsatisfiable());
        // @x = <a> is unsatisfiable (atomic variables denote atomic values).
        assert!(solve_ok("@x", "<a>").is_unsatisfiable());
    }

    #[test]
    fn splitting_a_ground_word_between_two_variables() {
        // $x·$y = a·b·c under nonempty semantics: (a)(b·c) and (a·b)(c).
        let s = solve_ok("$x·$y", "a·b·c");
        assert_eq!(s.solutions.len(), 2);
        for sol in &s.solutions {
            assert!(sol.solves(&eq("$x·$y", "a·b·c")));
        }
        // Allowing empty adds (ε)(a·b·c) and (a·b·c)(ε).
        let all = solve_allowing_empty(&eq("$x·$y", "a·b·c"), &SolveOptions::default()).unwrap();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn one_sided_nonlinearity_detection() {
        assert!(!is_one_sided_nonlinear(&eq("$x·a", "a·$x")));
        assert!(is_one_sided_nonlinear(&eq("$x·<@y·$z>·@w", "$u·$v·$u")));
        assert!(is_one_sided_nonlinear(&eq("$x·$x", "a·b·c·d")));
        assert!(is_one_sided_nonlinear(&eq("$x", "$y")));
        assert!(!is_one_sided_nonlinear(&eq("$x·$y·$x", "$z·$x")));
    }

    #[test]
    fn nonlinear_same_side_repetition_terminates() {
        // $x·$x = a·b·a·b: the only nonempty solution is $x = a·b.
        let s = solve_ok("$x·$x", "a·b·a·b");
        assert_eq!(s.solutions.len(), 1);
        assert_eq!(
            s.solutions[0].get(Var::path("x")),
            Some(&parse_expr("a·b").unwrap())
        );
        // $x·$x = a·b·a is unsatisfiable.
        assert!(solve_ok("$x·$x", "a·b·a").is_unsatisfiable());
    }

    #[test]
    fn figure_2_equation_has_exactly_four_symbolic_solutions() {
        // Example 4.8 / Figure 2: $x·⟨@y·$z⟩·@w = $u·$v·$u.
        let equation = eq("$x·<@y·$z>·@w", "$u·$v·$u");
        let s = solve(&equation, &SolveOptions::default()).unwrap();
        assert_eq!(s.solutions.len(), 4, "solutions: {:#?}", s.solutions);
        for sol in &s.solutions {
            assert!(sol.solves(&equation));
        }
        // The first solution listed in the paper must be among them.
        let expected: Substitution = [
            (Var::path("x"), parse_expr("@w").unwrap()),
            (Var::path("u"), parse_expr("@w").unwrap()),
            (Var::path("v"), parse_expr("<@y·$z>").unwrap()),
        ]
        .into_iter()
        .collect();
        assert!(
            s.solutions.contains(&expected),
            "missing the paper's first solution; got {:#?}",
            s.solutions
        );
        // The tree has exactly four successful branches (the bold edges of Fig. 2).
        assert_eq!(s.tree.success_count(), 4);
        assert!(s.tree.failure_count() > 0);
    }

    #[test]
    fn packing_structure_mismatches_fail() {
        assert!(solve_ok("<$x>", "a·<$y>").is_unsatisfiable());
        assert!(solve_ok("<a>·b", "<a>·c").is_unsatisfiable());
        // Inner packing is solved recursively (rule (k)).
        let s = solve_ok("<$x>·b", "<a·c>·b");
        assert_eq!(s.solutions.len(), 1);
        assert_eq!(
            s.solutions[0].get(Var::path("x")),
            Some(&parse_expr("a·c").unwrap())
        );
        // Nested packing.
        let s = solve_ok("<<$x>>", "<<a>>");
        assert_eq!(s.solutions.len(), 1);
    }

    #[test]
    fn atomic_variables_inside_word_equations() {
        // @a·$y = b·c·d: @a must be b and $y the rest.
        let s = solve_ok("@a·$y", "b·c·d");
        assert_eq!(s.solutions.len(), 1);
        assert_eq!(
            s.solutions[0].get(Var::atom("a")),
            Some(&parse_expr("b").unwrap())
        );
        assert_eq!(
            s.solutions[0].get(Var::path("y")),
            Some(&parse_expr("c·d").unwrap())
        );
        // Two atomic variables: @a·@b = c·c.
        let s = solve_ok("@a·@b", "c·c");
        assert_eq!(s.solutions.len(), 1);
    }

    #[test]
    fn non_terminating_equation_hits_the_search_limit() {
        let opts = SolveOptions {
            max_nodes: 500,
            max_depth: 50,
        };
        let err = solve(&eq("$x·a", "a·$x"), &opts).unwrap_err();
        assert!(matches!(err, UnifyError::SearchLimit { .. }));
    }

    #[test]
    fn empty_word_closure_rejects_huge_variable_counts() {
        let lhs: String = (0..17)
            .map(|i| format!("$v{i}"))
            .collect::<Vec<_>>()
            .join("·");
        let equation = eq(&lhs, "a");
        assert!(matches!(
            solve_allowing_empty(&equation, &SolveOptions::default()),
            Err(UnifyError::TooManyVariables { count: 17 })
        ));
    }

    #[test]
    fn empty_word_closure_finds_empty_assignments() {
        // $x·a = a under nonempty semantics is unsatisfiable, but with empties
        // $x ↦ ε works.
        assert!(solve_ok("$x·a", "a").is_unsatisfiable());
        let all = solve_allowing_empty(&eq("$x·a", "a"), &SolveOptions::default()).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].get(Var::path("x")), Some(&PathExpr::empty()));
    }

    #[test]
    fn all_solutions_returned_are_symbolic_solutions() {
        let cases = [
            ("$x·$y·$x", "a·b·a"),
            ("$x·b·$y", "a·b·c·b·e"),
            ("@p·$x·@q", "a·b·c·d"),
            ("<@a>·$x", "<@b>·c·d"),
        ];
        for (l, r) in cases {
            let equation = eq(l, r);
            let s = solve(&equation, &SolveOptions::default()).unwrap();
            for sol in &s.solutions {
                assert!(sol.solves(&equation), "{sol} does not solve {l} = {r}");
            }
        }
    }
}
