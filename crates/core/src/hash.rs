//! The workspace's hash function: a fast multiply-xor hasher (FxHash-style).
//!
//! Used for every hash map on the hot path — relation dedup maps, prefix-trie
//! nodes, and the hash-consing table of the [`crate::store`] module.  It is
//! deterministic across runs (unlike `RandomState`) and much cheaper than
//! SipHash for the short interned-id sequences that make up paths and tuples:
//! hashing a tuple is one `write_*` call per length prefix and per interned id.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// A fast multiply-xor hasher (FxHash-style).
#[derive(Clone)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Default for FxHasher {
    fn default() -> FxHasher {
        FxHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0 ^ word).rotate_left(26).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Hash a value with [`FxHasher`] in one call.
pub fn fx_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}
