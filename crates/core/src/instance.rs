//! Schemas, relations, facts, and instances (Sections 2.1 and 2.3).
//!
//! An *instance* `I` of a schema `Γ` assigns to each relation name a finite n-ary
//! relation on paths.  Equivalently (Section 2.3) an instance is a finite set of
//! *facts* `R(p1, …, pn)`.  Both views are exposed here: [`Instance`] stores
//! relations keyed by name and iterates as facts.

use crate::error::CoreError;
use crate::hash::{FxHasher, FxMap};
use crate::interner::{AtomId, RelName};
use crate::path::Path;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A tuple of paths — one row of an n-ary relation.  With paths interned,
/// this is a vector of `u32` ids: four bytes per column.
pub type Tuple = Vec<Path>;

fn hash_tuple(tuple: &[Path]) -> u64 {
    let mut h = FxHasher::default();
    tuple.hash(&mut h);
    h.finish()
}

/// How many leading values of a column path the per-column [`PrefixTrie`]
/// indexes.  Probes with longer statically-known prefixes stop here and let
/// full matching filter the (already small) candidate set.
pub const TRIE_DEPTH: usize = 4;

const NO_IDS: &[u32] = &[];
const NO_ENTRIES: &[TrieEntry] = &[];

/// A dedup bucket: tuple ids sharing one tuple hash.  Hash collisions are
/// rare, so the single-id case is stored inline — no heap allocation per
/// distinct fact.
#[derive(Clone, Debug)]
enum IdBucket {
    One(u32),
    Many(Vec<u32>),
}

impl IdBucket {
    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        match self {
            IdBucket::One(id) => std::slice::from_ref(id).iter().copied(),
            IdBucket::Many(ids) => ids.as_slice().iter().copied(),
        }
    }

    fn push(&mut self, id: u32) {
        match self {
            IdBucket::One(a) => *self = IdBucket::Many(vec![*a, id]),
            IdBucket::Many(ids) => ids.push(id),
        }
    }
}

/// One candidate in a trie bucket: the tuple id plus enough metadata — the
/// column path's total length and the value *after* the node's prefix — for
/// the evaluator to finish matching flat single-column patterns from the
/// bucket alone, sequentially, without dereferencing the tuple store at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrieEntry {
    /// The tuple id (ascending within a bucket).
    pub id: u32,
    /// Total length of the column's path.
    pub len: u32,
    next_val: u32,
    next_tag: u8,
}

const NEXT_NONE: u8 = 0;
const NEXT_ATOM: u8 = 1;
const NEXT_PACKED: u8 = 2;

impl TrieEntry {
    fn new(id: u32, values: &[Value], depth: usize) -> TrieEntry {
        let (next_tag, next_val) = match values.get(depth) {
            None => (NEXT_NONE, 0),
            Some(Value::Atom(a)) => (NEXT_ATOM, a.symbol().index()),
            Some(Value::Packed(p)) => (NEXT_PACKED, p.id().index()),
        };
        TrieEntry {
            id,
            len: u32::try_from(values.len()).expect("path longer than u32::MAX"),
            next_val,
            next_tag,
        }
    }

    /// The atom right after the bucket's prefix, if the path continues with
    /// an atomic value there.
    pub fn next_atom(&self) -> Option<AtomId> {
        (self.next_tag == NEXT_ATOM)
            .then(|| AtomId::from_symbol(crate::interner::Symbol::from_index(self.next_val)))
    }
}

#[derive(Clone, Debug, Default)]
struct TrieNode {
    /// Candidates whose column path starts with this node's value prefix,
    /// ascending by id (insertion order only ever appends).
    entries: Vec<TrieEntry>,
    children: FxMap<Value, TrieNode>,
}

/// A per-column index over the leading values of the column's path, to a
/// per-column *registered depth* (default 1 — a plain first-value index; the
/// planner deepens columns its plans can probe further, up to
/// [`TRIE_DEPTH`]).  Because values are interned ids, each trie edge is an
/// O(1) hash hop on an eight-byte key — including packed values, which used
/// to share one undiscriminated bucket and now key on their exact interned
/// identity.
#[derive(Clone, Debug)]
pub struct PrefixTrie {
    /// How many leading values this trie indexes (1..=TRIE_DEPTH).
    depth: usize,
    /// Ids of tuples whose column is the empty path `ε`.
    empty: Vec<u32>,
    /// Ids of tuples whose column's *first* value is packed (any packed
    /// value) — serves probes that only know "starts with some packed value".
    packed_first: Vec<u32>,
    root: FxMap<Value, TrieNode>,
}

impl Default for PrefixTrie {
    fn default() -> PrefixTrie {
        PrefixTrie::new(1)
    }
}

impl PrefixTrie {
    fn new(depth: usize) -> PrefixTrie {
        PrefixTrie {
            depth: depth.clamp(1, TRIE_DEPTH),
            empty: Vec::new(),
            packed_first: Vec::new(),
            root: FxMap::default(),
        }
    }

    /// The number of leading values this trie indexes.
    pub fn depth(&self) -> usize {
        self.depth
    }

    fn insert(&mut self, path: &Path, id: u32) {
        let values = path.values();
        let Some(first) = values.first() else {
            self.empty.push(id);
            return;
        };
        if first.is_packed() {
            self.packed_first.push(id);
        }
        let mut node = self.root.entry(*first).or_default();
        node.entries.push(TrieEntry::new(id, values, 1));
        for (d, v) in values[1..].iter().take(self.depth - 1).enumerate() {
            node = node.children.entry(*v).or_default();
            node.entries.push(TrieEntry::new(id, values, d + 2));
        }
    }

    /// The candidates (ascending by id) whose column path starts with
    /// `prefix` (which must be nonempty; values beyond the trie's registered
    /// depth are ignored, so the result is a superset of the exact answer
    /// that full matching filters).  Each [`TrieEntry`] carries the path
    /// length and the value following the reached prefix, so flat
    /// single-column patterns finish matching on the bucket alone.
    pub fn probe(&self, prefix: &[Value]) -> &[TrieEntry] {
        let mut walk = prefix.iter().take(self.depth);
        let Some(first) = walk.next() else {
            return NO_ENTRIES;
        };
        let Some(mut node) = self.root.get(first) else {
            return NO_ENTRIES;
        };
        for v in walk {
            match node.children.get(v) {
                Some(child) => node = child,
                None => return NO_ENTRIES,
            }
        }
        &node.entries
    }

    /// The ids of tuples whose column is exactly `ε`.
    pub fn probe_empty(&self) -> &[u32] {
        &self.empty
    }

    /// The ids of tuples whose column's first value is packed.
    pub fn probe_packed_first(&self) -> &[u32] {
        &self.packed_first
    }
}

/// A planner-selected multi-column index: tuples keyed by the joint hash of
/// the *first values* of a fixed set of columns.  Registered by the evaluator
/// for the column sets its plans can actually probe (all listed columns have
/// a statically-known first value), then maintained incrementally on insert.
///
/// Buckets key on a hash, not the values themselves; collisions only enlarge
/// the candidate set, which full matching filters anyway.
#[derive(Clone, Debug)]
struct JointIndex {
    cols: Vec<usize>,
    map: FxMap<u64, Vec<u32>>,
}

/// The joint key of one tuple under a column set, or `None` if some listed
/// column is `ε` (such tuples can never match a joint probe, whose columns
/// all start with a known value, so they are simply not indexed).
fn joint_tuple_key(cols: &[usize], tuple: &[Path]) -> Option<u64> {
    let mut h = FxHasher::default();
    for &c in cols {
        let first = tuple.get(c).and_then(|p| p.values().first())?;
        hash_first_value(&mut h, first);
    }
    Some(h.finish())
}

/// The joint key of a probe with one known first value per column.
pub fn joint_probe_key(firsts: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in firsts {
        hash_first_value(&mut h, v);
    }
    h.finish()
}

fn hash_first_value(h: &mut FxHasher, v: &Value) {
    match v {
        Value::Atom(a) => {
            h.write_u8(1);
            h.write_u32(a.symbol().index());
        }
        Value::Packed(p) => {
            h.write_u8(2);
            h.write_u32(p.id().index());
        }
    }
}

/// A fact `R(p1, …, pn)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fact {
    /// The relation name.
    pub relation: RelName,
    /// The component paths.
    pub tuple: Tuple,
}

impl Fact {
    /// Build a fact.
    pub fn new(relation: RelName, tuple: Tuple) -> Fact {
        Fact { relation, tuple }
    }

    /// Arity of the fact.
    pub fn arity(&self) -> usize {
        self.tuple.len()
    }
}

fn fmt_fact(f: &mut fmt::Formatter<'_>, relation: RelName, tuple: &[Path]) -> fmt::Result {
    write!(f, "{relation}(")?;
    for (i, p) in tuple.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{p}")?;
    }
    f.write_str(")")
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_fact(f, self.relation, &self.tuple)
    }
}

/// A schema: a finite set of relation names, each with an arity (Section 2.1).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    arities: BTreeMap<RelName, usize>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Build a schema from `(name, arity)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, usize)>) -> Schema {
        let mut s = Schema::new();
        for (name, arity) in pairs {
            s.declare(RelName::new(name), arity);
        }
        s
    }

    /// Declare (or re-declare) a relation name with the given arity.
    pub fn declare(&mut self, relation: RelName, arity: usize) {
        self.arities.insert(relation, arity);
    }

    /// The arity of `relation`, if declared.
    pub fn arity(&self, relation: RelName) -> Option<usize> {
        self.arities.get(&relation).copied()
    }

    /// Does the schema declare `relation`?
    pub fn contains(&self, relation: RelName) -> bool {
        self.arities.contains_key(&relation)
    }

    /// Iterate over `(relation, arity)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (RelName, usize)> + '_ {
        self.arities.iter().map(|(r, a)| (*r, *a))
    }

    /// Number of declared relation names.
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }

    /// A schema is *monadic* if every relation has arity zero or one (Section 3.1).
    pub fn is_monadic(&self) -> bool {
        self.arities.values().all(|&a| a <= 1)
    }
}

/// A finite n-ary relation on paths.
///
/// Storage is *insertion-ordered*: tuples live in a `Vec` and a tuple's position in
/// that vector is its stable *id*.  Because ids only grow, a consumer can remember
/// [`Relation::len`] as a watermark and later read "everything inserted since" as
/// the borrowed slice [`Relation::slice_from`] — the shape semi-naive Datalog
/// evaluation needs for delta views without copying tuples.  Deduplication goes
/// through a hash map of interned-id hashes, every column keeps a [`PrefixTrie`]
/// over its first [`TRIE_DEPTH`] values, and evaluator-registered
/// [multi-column join indexes](Relation::ensure_joint_index) serve probes that
/// know the first value of several columns at once.
#[derive(Clone, Debug)]
pub struct Relation {
    arity: usize,
    /// Tuples in insertion order; a tuple's index is its id.
    tuples: Vec<Tuple>,
    /// Tuple hash → ids with that hash (dedup without storing tuples twice).
    dedup: FxMap<u64, IdBucket>,
    /// One prefix trie per column.
    columns: Vec<PrefixTrie>,
    /// Bitmask of maintained column tries (bit `c` = column `c`; columns
    /// ≥ 64 are always maintained).  A cleared bit means the column's trie
    /// is empty and skipped on insert — the evaluator clears bits for
    /// columns no plan of the running program can ever probe, so derived
    /// relations stop paying per-insert indexing for answers nobody asks.
    active_columns: u64,
    /// Registered multi-column indexes (typically zero or a handful).
    joint: Vec<JointIndex>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: Vec::new(),
            dedup: FxMap::default(),
            columns: (0..arity).map(|_| PrefixTrie::default()).collect(),
            active_columns: !0,
            joint: Vec::new(),
        }
    }

    /// Is the trie of `column` maintained (and therefore trustworthy)?
    /// Columns beyond the mask's width are always maintained.
    pub fn column_active(&self, column: usize) -> bool {
        column >= u64::BITS as usize || self.active_columns & (1u64 << column) != 0
    }

    /// Restrict maintained column tries to the set in `keep` (bit `c` =
    /// column `c`).  Newly-deactivated columns drop their trie (inserts stop
    /// indexing them); newly-reactivated columns rebuild theirs from the
    /// stored tuples at the previously registered depth, so the index is
    /// immediately current again.
    pub fn set_active_columns(&mut self, keep: u64) {
        for column in 0..self.columns.len().min(u64::BITS as usize) {
            let bit = 1u64 << column;
            let was = self.active_columns & bit != 0;
            let now = keep & bit != 0;
            if was && !now {
                self.columns[column] = PrefixTrie::new(self.columns[column].depth);
            } else if now && !was {
                let mut rebuilt = PrefixTrie::new(self.columns[column].depth);
                for (id, tuple) in self.tuples.iter().enumerate() {
                    rebuilt.insert(&tuple[column], id as u32);
                }
                self.columns[column] = rebuilt;
            }
        }
        self.active_columns = keep;
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple; returns `true` if it was new.  `relation` is the name this
    /// relation is registered under, used only for error reporting.
    ///
    /// # Errors
    /// Fails if the tuple's length differs from the relation's arity.
    pub fn insert(&mut self, relation: RelName, tuple: Tuple) -> Result<bool, CoreError> {
        if tuple.len() != self.arity {
            return Err(CoreError::ArityMismatch {
                relation,
                expected: self.arity,
                found: tuple.len(),
            });
        }
        let hash = hash_tuple(&tuple);
        let id = u32::try_from(self.tuples.len()).expect("more than u32::MAX tuples");
        let tuples = &self.tuples;
        match self.dedup.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut bucket) => {
                if bucket.get().iter().any(|id| tuples[id as usize] == tuple) {
                    return Ok(false);
                }
                bucket.get_mut().push(id);
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(IdBucket::One(id));
            }
        }
        for (column, path) in tuple.iter().enumerate() {
            if self.column_active(column) {
                self.columns[column].insert(path, id);
            }
        }
        for index in &mut self.joint {
            if let Some(key) = joint_tuple_key(&index.cols, &tuple) {
                index.map.entry(key).or_default().push(id);
            }
        }
        self.tuples.push(tuple);
        Ok(true)
    }

    /// Does the relation contain `tuple`?
    pub fn contains(&self, tuple: &[Path]) -> bool {
        if tuple.len() != self.arity {
            return false;
        }
        self.dedup
            .get(&hash_tuple(tuple))
            .is_some_and(|bucket| bucket.iter().any(|id| self.tuples[id as usize] == tuple))
    }

    /// Iterate over the tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// All tuples as a borrowed slice, in insertion order (a tuple's index is its
    /// id).  This is the zero-copy way to read a relation.
    pub fn as_slice(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The tuples with id ≥ `start`, as a borrowed slice.  With `start` taken from
    /// an earlier [`Relation::len`] call, this is the *delta view* "everything
    /// inserted since" — no tuples are copied.
    pub fn slice_from(&self, start: usize) -> &[Tuple] {
        &self.tuples[start.min(self.tuples.len())..]
    }

    /// The column trie of `column`, if in range and maintained; deactivated
    /// columns report `None` so callers fall back to scanning.
    pub fn column_index(&self, column: usize) -> Option<&PrefixTrie> {
        self.column_active(column)
            .then(|| self.columns.get(column))
            .flatten()
    }

    /// The candidates (ascending by id) whose `column`-th path starts with
    /// the given nonempty value prefix.  Out-of-range columns yield the empty
    /// slice; prefixes longer than the column's registered depth probe on
    /// their indexed prefix (a superset that full matching filters).
    pub fn probe_prefix(&self, column: usize, prefix: &[Value]) -> &[TrieEntry] {
        self.column_index(column)
            .map_or(NO_ENTRIES, |trie| trie.probe(prefix))
    }

    /// The ids of tuples whose `column`-th path is exactly `ε`.
    pub fn probe_empty(&self, column: usize) -> &[u32] {
        self.column_index(column)
            .map_or(NO_IDS, PrefixTrie::probe_empty)
    }

    /// The ids of tuples whose `column`-th path starts with a packed value.
    pub fn probe_packed_first(&self, column: usize) -> &[u32] {
        self.column_index(column)
            .map_or(NO_IDS, PrefixTrie::probe_packed_first)
    }

    /// Deepen the prefix trie of `column` to index `depth` leading values
    /// (clamped to [`TRIE_DEPTH`]; never shallowed).  The trie is rebuilt from
    /// the stored tuples, so registering before a fixpoint is cheap and later
    /// inserts index at the new depth.
    pub fn ensure_column_depth(&mut self, column: usize, depth: usize) {
        let depth = depth.clamp(1, TRIE_DEPTH);
        if !self.column_active(column) {
            return;
        }
        let Some(trie) = self.columns.get_mut(column) else {
            return;
        };
        if depth <= trie.depth {
            return;
        }
        let mut rebuilt = PrefixTrie::new(depth);
        for (id, tuple) in self.tuples.iter().enumerate() {
            rebuilt.insert(&tuple[column], id as u32);
        }
        self.columns[column] = rebuilt;
    }

    /// Register (and backfill) a multi-column join index over `cols`, unless
    /// one already exists.  Insertions maintain registered indexes
    /// incrementally, so registering before a fixpoint makes every later
    /// [`Relation::probe_joint`] current.
    pub fn ensure_joint_index(&mut self, cols: &[usize]) {
        if cols.len() < 2 || cols.iter().any(|&c| c >= self.arity) {
            return;
        }
        if self.joint.iter().any(|j| j.cols == cols) {
            return;
        }
        let mut index = JointIndex {
            cols: cols.to_vec(),
            map: FxMap::default(),
        };
        for (id, tuple) in self.tuples.iter().enumerate() {
            if let Some(key) = joint_tuple_key(cols, tuple) {
                index.map.entry(key).or_default().push(id as u32);
            }
        }
        self.joint.push(index);
    }

    /// Is a joint index over exactly `cols` registered?
    pub fn has_joint_index(&self, cols: &[usize]) -> bool {
        self.joint.iter().any(|j| j.cols == cols)
    }

    /// The ids (ascending) of tuples whose columns `cols` start with the
    /// corresponding `firsts` values, through a registered joint index.
    /// Returns `None` when no index over `cols` is registered (callers fall
    /// back to single-column probing); the id list is a hash-bucket superset
    /// that full matching filters.
    pub fn probe_joint(&self, cols: &[usize], firsts: &[Value]) -> Option<&[u32]> {
        let index = self.joint.iter().find(|j| j.cols == cols)?;
        Some(
            index
                .map
                .get(&joint_probe_key(firsts))
                .map_or(NO_IDS, Vec::as_slice),
        )
    }

    /// All tuples, cloned into a vector in lexicographic order.
    ///
    /// This is a snapshot convenience for reporting and tests; hot paths should use
    /// [`Relation::iter`] or [`Relation::as_slice`] instead, which do not clone.
    pub fn tuples(&self) -> Vec<Tuple> {
        let mut out = self.tuples.clone();
        out.sort();
        out
    }
}

/// Relations compare as *sets* of tuples: insertion order is storage detail, not
/// semantics.
impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.arity == other.arity
            && self.tuples.len() == other.tuples.len()
            && self.tuples.iter().all(|t| other.contains(t))
    }
}

impl Eq for Relation {}

/// An instance: a mapping from relation names to relations, equivalently a finite
/// set of facts (Section 2.3).
///
/// Relations are held behind `Arc` with copy-on-write mutation: cloning an
/// instance shares every relation's storage (tuples, dedup map, tries,
/// indexes), and a relation is deep-copied only the first time a *clone*
/// writes to it.  Evaluation never writes to EDB relations — rule heads are
/// IDB by definition — so preparing a working instance from an input is O(#
/// relations), not O(data), and the input's indexes are reused as-is.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Instance {
    relations: BTreeMap<RelName, Arc<Relation>>,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Build an instance from an iterator of facts.
    ///
    /// # Errors
    /// Fails if two facts use the same relation name with different arities.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Result<Instance, CoreError> {
        let mut inst = Instance::new();
        for fact in facts {
            inst.insert_fact(fact)?;
        }
        Ok(inst)
    }

    /// Convenience: a unary instance `{ R(p) | p ∈ paths }` over a single relation.
    pub fn unary(relation: RelName, paths: impl IntoIterator<Item = Path>) -> Instance {
        let mut inst = Instance::new();
        for p in paths {
            inst.insert_fact(Fact::new(relation, vec![p]))
                .expect("unary facts cannot mismatch");
        }
        // Even when `paths` is empty, register the relation with arity 1.
        inst.relations
            .entry(relation)
            .or_insert_with(|| Arc::new(Relation::new(1)));
        inst
    }

    /// Insert a fact; returns `true` if it was new.
    ///
    /// The relation's arity is fixed by the first fact inserted for it.
    ///
    /// # Errors
    /// Fails on arity mismatch with previously inserted facts.
    pub fn insert_fact(&mut self, fact: Fact) -> Result<bool, CoreError> {
        Ok(self.insert_fact_new(fact)?.is_some())
    }

    /// Insert a fact; if it was new, return a borrow of the stored tuple (its id is
    /// the relation's new last index).  This is the single-lookup entry point the
    /// fixpoint loop uses: the caller can inspect the freshly inserted tuple
    /// without a second relation lookup and without having cloned it.
    ///
    /// # Errors
    /// Fails on arity mismatch with previously inserted facts.
    pub fn insert_fact_new(&mut self, fact: Fact) -> Result<Option<&Tuple>, CoreError> {
        let arity = fact.arity();
        let relation = fact.relation;
        let rel = Arc::make_mut(
            self.relations
                .entry(relation)
                .or_insert_with(|| Arc::new(Relation::new(arity))),
        );
        Ok(rel
            .insert(relation, fact.tuple)?
            .then(|| rel.as_slice().last().expect("just inserted")))
    }

    /// Insert an empty relation of the given arity (or leave an existing one alone).
    pub fn declare_relation(&mut self, relation: RelName, arity: usize) {
        self.relations
            .entry(relation)
            .or_insert_with(|| Arc::new(Relation::new(arity)));
    }

    /// The relation assigned to `name`, if present.
    pub fn relation(&self, name: RelName) -> Option<&Relation> {
        self.relations.get(&name).map(|arc| &**arc)
    }

    /// Register a multi-column join index on `name` (no-op if the relation is
    /// absent); see [`Relation::ensure_joint_index`].  Skips the
    /// copy-on-write clone when the index already exists.
    pub fn ensure_joint_index(&mut self, name: RelName, cols: &[usize]) {
        if let Some(rel) = self.relations.get_mut(&name) {
            if !rel.has_joint_index(cols) {
                Arc::make_mut(rel).ensure_joint_index(cols);
            }
        }
    }

    /// Restrict the maintained column tries of relation `name` to the mask
    /// `keep` (no-op when the relation is absent); see
    /// [`Relation::set_active_columns`].
    pub fn restrict_column_indexes(&mut self, name: RelName, keep: u64) {
        if let Some(rel) = self.relations.get_mut(&name) {
            Arc::make_mut(rel).set_active_columns(keep);
        }
    }

    /// Deepen a column's prefix trie on `name` (no-op if the relation is
    /// absent); see [`Relation::ensure_column_depth`].  Skips the
    /// copy-on-write clone when the column is already deep enough.
    pub fn ensure_column_depth(&mut self, name: RelName, column: usize, depth: usize) {
        if let Some(rel) = self.relations.get_mut(&name) {
            let current = rel
                .column_index(column)
                .map_or(usize::MAX, PrefixTrie::depth);
            if current < depth.clamp(1, TRIE_DEPTH) {
                Arc::make_mut(rel).ensure_column_depth(column, depth);
            }
        }
    }

    /// The set of paths of a unary relation (empty if the relation is absent).
    ///
    /// This is the natural way to read off the answer of a *flat unary query*
    /// (Section 3.1).  For a borrowing walk that builds no set, see
    /// [`Instance::unary_paths_iter`].
    pub fn unary_paths(&self, name: RelName) -> BTreeSet<Path> {
        self.unary_paths_iter(name).collect()
    }

    /// Iterate over the paths of a unary relation without materialising a
    /// set, in insertion order (empty if the relation is absent).
    pub fn unary_paths_iter(&self, name: RelName) -> impl Iterator<Item = Path> + '_ {
        self.relation(name)
            .into_iter()
            .flat_map(|r| r.iter().filter(|t| t.len() == 1).map(|t| t[0]))
    }

    /// Does the instance contain the given fact?
    pub fn contains_fact(&self, fact: &Fact) -> bool {
        self.relation(fact.relation)
            .is_some_and(|r| r.arity() == fact.arity() && r.contains(&fact.tuple))
    }

    /// Is a nullary relation "true" (non-empty)?  Nullary relations model boolean
    /// query results (Example 2.2).
    pub fn nullary_true(&self, name: RelName) -> bool {
        self.relation(name).is_some_and(|r| !r.is_empty())
    }

    /// Relation names present in the instance, collected in name order.  For a
    /// walk that allocates nothing, see [`Instance::relation_names_iter`].
    pub fn relation_names(&self) -> Vec<RelName> {
        self.relation_names_iter().collect()
    }

    /// Iterate over the relation names of the instance, in name order,
    /// without allocating.
    pub fn relation_names_iter(&self) -> impl Iterator<Item = RelName> + '_ {
        self.relations.keys().copied()
    }

    /// Iterate over all facts of the instance *without cloning*, in deterministic
    /// order, as `(relation, tuple)` pairs.  This is the iterator the instance-wide
    /// classification predicates and [`fmt::Display`] are built on.
    pub fn facts_ref(&self) -> impl Iterator<Item = (RelName, &Tuple)> + '_ {
        self.relations
            .iter()
            .flat_map(|(name, rel)| rel.iter().map(move |t| (*name, t)))
    }

    /// Iterate over all facts of the instance, in deterministic order.  Each fact
    /// owns a clone of its tuple; prefer [`Instance::facts_ref`] where a borrow
    /// suffices.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.facts_ref()
            .map(|(name, tuple)| Fact::new(name, tuple.clone()))
    }

    /// Total number of facts.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// An instance is *flat* if no packed value occurs anywhere in it (Section 3.1).
    pub fn is_flat(&self) -> bool {
        self.facts_ref()
            .all(|(_, tuple)| tuple.iter().all(Path::is_flat))
    }

    /// An instance is *classical* if every component of every fact is a length-1
    /// path holding an atomic value (Section 2.1).
    pub fn is_classical(&self) -> bool {
        self.facts_ref()
            .all(|(_, tuple)| tuple.iter().all(|p| p.len() == 1 && p[0].is_atom()))
    }

    /// An instance is *two-bounded* if only paths of length one or two occur in it
    /// (Section 5.2).
    pub fn is_two_bounded(&self) -> bool {
        self.facts_ref()
            .all(|(_, tuple)| tuple.iter().all(|p| (1..=2).contains(&p.len())))
    }

    /// The largest path length occurring in the instance (0 for the empty instance).
    /// Used to state the linear output bound of Lemma 5.1.
    pub fn max_path_len(&self) -> usize {
        self.facts_ref()
            .flat_map(|(_, tuple)| tuple.iter().map(Path::len))
            .max()
            .unwrap_or(0)
    }

    /// The schema induced by this instance.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for (name, rel) in &self.relations {
            s.declare(*name, rel.arity());
        }
        s
    }

    /// Restrict the instance to the relations of `schema` (dropping others).
    /// Relation storage is shared, not copied.
    pub fn project_to_schema(&self, schema: &Schema) -> Instance {
        let mut out = Instance::new();
        for (name, rel) in &self.relations {
            if schema.contains(*name) {
                out.relations.insert(*name, Arc::clone(rel));
            }
        }
        out
    }

    /// Union of two instances (relations are merged; arities must agree).
    ///
    /// # Errors
    /// Fails if a relation appears in both with different arities.
    pub fn union(&self, other: &Instance) -> Result<Instance, CoreError> {
        let mut out = self.clone();
        for (name, tuple) in other.facts_ref() {
            out.insert_fact(Fact::new(name, tuple.clone()))?;
        }
        // Preserve empty relations declared in `other`.
        for (name, rel) in &other.relations {
            out.declare_relation(*name, rel.arity());
        }
        Ok(out)
    }

    /// All atomic values appearing anywhere in the instance (the instance's *active
    /// domain*).
    pub fn active_atoms(&self) -> BTreeSet<AtomId> {
        fn collect(value: &Value, out: &mut BTreeSet<AtomId>) {
            match value {
                Value::Atom(a) => {
                    out.insert(*a);
                }
                Value::Packed(p) => {
                    for v in p.iter() {
                        collect(v, out);
                    }
                }
            }
        }
        let mut out = BTreeSet::new();
        for (_, tuple) in self.facts_ref() {
            for path in tuple {
                for v in path.iter() {
                    collect(v, &mut out);
                }
            }
        }
        out
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, tuple) in self.facts_ref() {
            if !first {
                f.write_str("\n")?;
            }
            fmt_fact(f, name, tuple)?;
            f.write_str(".")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, path_of, rel, repeat_path};

    fn fact(r: &str, paths: &[&[&str]]) -> Fact {
        Fact::new(rel(r), paths.iter().map(|names| path_of(names)).collect())
    }

    fn av(name: &str) -> Value {
        Value::Atom(atom(name))
    }

    fn ids(entries: &[TrieEntry]) -> Vec<u32> {
        entries.iter().map(|e| e.id).collect()
    }

    #[test]
    fn schema_basics_and_monadicity() {
        let s = Schema::from_pairs([("R", 1), ("A", 0)]);
        assert_eq!(s.arity(rel("R")), Some(1));
        assert_eq!(s.arity(rel("D")), None);
        assert!(s.is_monadic());
        let s2 = Schema::from_pairs([("D", 3)]);
        assert!(!s2.is_monadic());
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Schema::new().is_empty());
    }

    #[test]
    fn facts_display_like_the_paper() {
        let f = fact("R", &[&["a", "b", "a"]]);
        assert_eq!(f.to_string(), "R(a·b·a)");
        let f = fact("D", &[&["q1"], &["a"], &["q2"]]);
        assert_eq!(f.to_string(), "D(q1, a, q2)");
    }

    #[test]
    fn insert_and_query_facts() {
        let mut inst = Instance::new();
        assert!(inst.insert_fact(fact("R", &[&["a", "a"]])).unwrap());
        assert!(!inst.insert_fact(fact("R", &[&["a", "a"]])).unwrap());
        assert!(inst.insert_fact(fact("R", &[&["a", "b"]])).unwrap());
        assert_eq!(inst.fact_count(), 2);
        assert!(inst.contains_fact(&fact("R", &[&["a", "b"]])));
        assert!(!inst.contains_fact(&fact("R", &[&["b", "a"]])));
        assert!(!inst.contains_fact(&fact("S", &[&["a", "b"]])));
        assert_eq!(
            inst.unary_paths(rel("R")),
            BTreeSet::from([path_of(&["a", "a"]), path_of(&["a", "b"])])
        );
        // The borrowing iterator yields the same paths, in insertion order.
        let via_iter: Vec<Path> = inst.unary_paths_iter(rel("R")).collect();
        assert_eq!(via_iter, vec![path_of(&["a", "a"]), path_of(&["a", "b"])]);
        assert_eq!(inst.unary_paths_iter(rel("Absent")).count(), 0);
    }

    #[test]
    fn arity_is_enforced_per_relation() {
        let mut inst = Instance::new();
        inst.insert_fact(fact("D", &[&["q"], &["a"], &["p"]]))
            .unwrap();
        let err = inst.insert_fact(fact("D", &[&["q"], &["a"]])).unwrap_err();
        assert_eq!(
            err,
            CoreError::ArityMismatch {
                relation: rel("D"),
                expected: 3,
                found: 2
            }
        );
    }

    #[test]
    fn unary_constructor_registers_relation_even_when_empty() {
        let inst = Instance::unary(rel("EmptyRel"), []);
        assert!(inst.relation(rel("EmptyRel")).is_some());
        assert_eq!(inst.unary_paths(rel("EmptyRel")), BTreeSet::new());
    }

    #[test]
    fn flat_classical_and_two_bounded_classification() {
        let flat = Instance::unary(rel("R"), [repeat_path("a", 3)]);
        assert!(flat.is_flat());
        assert!(!flat.is_classical());
        assert!(!flat.is_two_bounded());

        let classical = Instance::unary(rel("N"), [path_of(&["q0"])]);
        assert!(classical.is_classical());
        assert!(classical.is_two_bounded());

        let mut packed = Instance::new();
        packed
            .insert_fact(Fact::new(
                rel("T"),
                vec![Path::from_values([Value::packed(path_of(&["s"]))])],
            ))
            .unwrap();
        assert!(!packed.is_flat());
        assert!(!packed.is_classical());
    }

    #[test]
    fn nullary_relations_model_boolean_results() {
        let mut inst = Instance::new();
        assert!(!inst.nullary_true(rel("Answer")));
        inst.insert_fact(Fact::new(rel("Answer"), vec![])).unwrap();
        assert!(inst.nullary_true(rel("Answer")));
    }

    #[test]
    fn union_merges_and_checks_arity() {
        let a = Instance::unary(rel("R"), [path_of(&["x"])]);
        let b = Instance::unary(rel("S"), [path_of(&["y"])]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.fact_count(), 2);

        let mut c = Instance::new();
        c.insert_fact(fact("R", &[&["x"], &["y"]])).unwrap();
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn schema_induction_and_projection() {
        let mut inst = Instance::new();
        inst.insert_fact(fact("R", &[&["x"]])).unwrap();
        inst.insert_fact(fact("D", &[&["q"], &["a"], &["p"]]))
            .unwrap();
        let schema = inst.schema();
        assert_eq!(schema.arity(rel("D")), Some(3));
        let only_r = Schema::from_pairs([("R", 1)]);
        let projected = inst.project_to_schema(&only_r);
        assert_eq!(projected.relation_names(), vec![rel("R")]);
        assert_eq!(
            projected.relation_names_iter().collect::<Vec<_>>(),
            vec![rel("R")]
        );
    }

    #[test]
    fn active_atoms_looks_inside_packing() {
        let mut inst = Instance::new();
        inst.insert_fact(Fact::new(
            rel("T"),
            vec![Path::from_values([
                Value::atom("c"),
                Value::packed(path_of(&["a", "b"])),
            ])],
        ))
        .unwrap();
        let atoms = inst.active_atoms();
        assert!(atoms.contains(&atom("a")));
        assert!(atoms.contains(&atom("b")));
        assert!(atoms.contains(&atom("c")));
        assert_eq!(atoms.len(), 3);
    }

    #[test]
    fn max_path_len_over_instance() {
        assert_eq!(Instance::new().max_path_len(), 0);
        let inst = Instance::unary(rel("R"), [repeat_path("a", 7), repeat_path("a", 2)]);
        assert_eq!(inst.max_path_len(), 7);
    }

    #[test]
    fn relation_insert_reports_the_real_name_and_expected_arity() {
        let mut r = Relation::new(3);
        let err = r
            .insert(rel("D"), vec![path_of(&["q"]), path_of(&["a"])])
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::ArityMismatch {
                relation: rel("D"),
                expected: 3,
                found: 2
            }
        );
    }

    #[test]
    fn relation_storage_is_insertion_ordered_with_stable_ids() {
        let mut r = Relation::new(1);
        r.insert(rel("R"), vec![path_of(&["b"])]).unwrap();
        r.insert(rel("R"), vec![path_of(&["a"])]).unwrap();
        assert!(!r.insert(rel("R"), vec![path_of(&["b"])]).unwrap());
        // Insertion order is preserved; `tuples()` snapshots sort.
        assert_eq!(r.as_slice()[0], vec![path_of(&["b"])]);
        assert_eq!(r.as_slice()[1], vec![path_of(&["a"])]);
        assert_eq!(
            r.tuples(),
            vec![vec![path_of(&["a"])], vec![path_of(&["b"])]]
        );
        // Watermark slices expose exactly the tuples inserted since.
        let mark = r.len();
        r.insert(rel("R"), vec![path_of(&["c"])]).unwrap();
        assert_eq!(r.slice_from(mark), &[vec![path_of(&["c"])]]);
        assert!(r.slice_from(17).is_empty());
        // Set semantics for equality, independent of insertion order.
        let mut other = Relation::new(1);
        for name in ["c", "b", "a"] {
            other.insert(rel("R"), vec![path_of(&[name])]).unwrap();
        }
        assert_eq!(r, other);
        other.insert(rel("R"), vec![path_of(&["d"])]).unwrap();
        assert_ne!(r, other);
    }

    #[test]
    fn prefix_trie_probes_by_leading_values() {
        let mut r = Relation::new(2);
        r.ensure_column_depth(0, TRIE_DEPTH);
        r.insert(rel("T"), vec![path_of(&["a", "b", "c"]), Path::empty()])
            .unwrap();
        r.insert(rel("T"), vec![path_of(&["a", "b"]), path_of(&["c"])])
            .unwrap();
        r.insert(rel("T"), vec![path_of(&["a"]), path_of(&["c"])])
            .unwrap();
        r.insert(
            rel("T"),
            vec![
                Path::singleton(Value::packed(path_of(&["z"]))),
                path_of(&["c"]),
            ],
        )
        .unwrap();
        // One-value prefixes behave like the old first-value index.
        assert_eq!(ids(r.probe_prefix(0, &[av("a")])), vec![0, 1, 2]);
        assert_eq!(r.probe_empty(1), &[0]);
        assert_eq!(ids(r.probe_prefix(1, &[av("c")])), vec![1, 2, 3]);
        // Entries carry the candidate's length and the value after the
        // reached prefix, so flat patterns can finish matching bucket-side.
        let bucket = r.probe_prefix(0, &[av("a")]);
        assert_eq!(bucket[0].len, 3);
        assert_eq!(bucket[0].next_atom(), Some(atom("b")));
        assert_eq!(bucket[2].len, 1);
        assert_eq!(bucket[2].next_atom(), None);
        // Deeper prefixes discriminate further.
        assert_eq!(ids(r.probe_prefix(0, &[av("a"), av("b")])), vec![0, 1]);
        assert_eq!(
            ids(r.probe_prefix(0, &[av("a"), av("b"), av("c")])),
            vec![0]
        );
        // A probe deeper than any stored path finds nothing.
        assert!(r
            .probe_prefix(0, &[av("a"), av("b"), av("c"), av("d")])
            .is_empty());
        // Packed first values key on their exact identity, and the any-packed
        // bucket serves probes that only know "starts packed".
        let packed = Value::packed(path_of(&["z"]));
        assert_eq!(ids(r.probe_prefix(0, &[packed])), vec![3]);
        assert!(r
            .probe_prefix(0, &[Value::packed(path_of(&["w"]))])
            .is_empty());
        assert_eq!(r.probe_packed_first(0), &[3]);
        // Misses and out-of-range columns yield empty sets.
        assert!(r.probe_prefix(1, &[av("z")]).is_empty());
        assert!(r.probe_prefix(9, &[av("a")]).is_empty());
        assert!(r.probe_empty(9).is_empty());
    }

    #[test]
    fn prefix_trie_caps_at_trie_depth() {
        let mut r = Relation::new(1);
        r.ensure_column_depth(0, 64);
        assert_eq!(r.column_index(0).unwrap().depth(), TRIE_DEPTH);
        r.insert(rel("R"), vec![repeat_path("a", 10)]).unwrap();
        r.insert(rel("R"), vec![repeat_path("a", 2)]).unwrap();
        // Probing deeper than TRIE_DEPTH truncates to the indexed prefix: the
        // result is a superset (id 0 matches, id 1 is filtered by matching).
        let deep: Vec<Value> = (0..8).map(|_| av("a")).collect();
        assert_eq!(ids(r.probe_prefix(0, &deep)), vec![0]);
        let shallow: Vec<Value> = (0..TRIE_DEPTH).map(|_| av("a")).collect();
        assert_eq!(ids(r.probe_prefix(0, &shallow)), vec![0]);
    }

    #[test]
    fn joint_index_probes_multiple_columns_at_once() {
        let mut r = Relation::new(3);
        for (q, a, q2) in [
            ("q0", "a", "q0"),
            ("q0", "b", "q1"),
            ("q1", "a", "q0"),
            ("q1", "b", "q1"),
            ("q1", "b", "q2"),
        ] {
            r.insert(rel("D"), vec![path_of(&[q]), path_of(&[a]), path_of(&[q2])])
                .unwrap();
        }
        // Unregistered: probe_joint reports no index.
        assert!(r.probe_joint(&[0, 1], &[av("q1"), av("b")]).is_none());
        r.ensure_joint_index(&[0, 1]);
        assert_eq!(
            r.probe_joint(&[0, 1], &[av("q1"), av("b")]).unwrap(),
            &[3, 4]
        );
        assert_eq!(r.probe_joint(&[0, 1], &[av("q0"), av("a")]).unwrap(), &[0]);
        assert!(r
            .probe_joint(&[0, 1], &[av("q2"), av("a")])
            .unwrap()
            .is_empty());
        // Registration is idempotent, and later inserts maintain the index.
        r.ensure_joint_index(&[0, 1]);
        r.insert(
            rel("D"),
            vec![path_of(&["q1"]), path_of(&["b"]), path_of(&["q3"])],
        )
        .unwrap();
        assert_eq!(
            r.probe_joint(&[0, 1], &[av("q1"), av("b")]).unwrap(),
            &[3, 4, 5]
        );
        // Tuples with an ε column in the set are unreachable by joint probes
        // and therefore not indexed.
        r.insert(
            rel("D"),
            vec![Path::empty(), path_of(&["b"]), path_of(&["q0"])],
        )
        .unwrap();
        assert_eq!(
            r.probe_joint(&[0, 1], &[av("q1"), av("b")]).unwrap(),
            &[3, 4, 5]
        );
        // Degenerate registrations (single column, out of range) are refused.
        r.ensure_joint_index(&[0]);
        r.ensure_joint_index(&[0, 9]);
        assert!(r.probe_joint(&[0], &[av("q0")]).is_none());
        assert!(r.probe_joint(&[0, 9], &[av("q0"), av("b")]).is_none());
    }

    #[test]
    fn borrowing_facts_iterator_agrees_with_the_owning_one() {
        let mut inst = Instance::new();
        inst.insert_fact(fact("R", &[&["x"]])).unwrap();
        inst.insert_fact(fact("D", &[&["q"], &["a"], &["p"]]))
            .unwrap();
        let owned: Vec<Fact> = inst.facts().collect();
        let borrowed: Vec<Fact> = inst
            .facts_ref()
            .map(|(name, t)| Fact::new(name, t.clone()))
            .collect();
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn display_lists_facts_deterministically() {
        let mut inst = Instance::new();
        inst.insert_fact(fact("S", &[&["b"]])).unwrap();
        inst.insert_fact(fact("R", &[&["a"]])).unwrap();
        let text = inst.to_string();
        assert_eq!(text, "R(a).\nS(b).");
    }
}
