//! Schemas, relations, facts, and instances (Sections 2.1 and 2.3).
//!
//! An *instance* `I` of a schema `Γ` assigns to each relation name a finite n-ary
//! relation on paths.  Equivalently (Section 2.3) an instance is a finite set of
//! *facts* `R(p1, …, pn)`.  Both views are exposed here: [`Instance`] stores
//! relations keyed by name and iterates as facts.

use crate::error::CoreError;
use crate::interner::{AtomId, RelName};
use crate::path::Path;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// A tuple of paths — one row of an n-ary relation.
pub type Tuple = Vec<Path>;

/// A fast multiply-xor hasher (FxHash-style).  Used for the relation-internal hash
/// maps: deterministic across runs (unlike `RandomState`) and much cheaper than
/// SipHash for the short interned-symbol sequences that make up tuples.  The
/// integer-write fast paths matter: tuple hashing is one `write_*` per length
/// prefix and per interned id.
#[derive(Clone)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Default for FxHasher {
    fn default() -> FxHasher {
        FxHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0 ^ word).rotate_left(26).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

fn hash_tuple(tuple: &[Path]) -> u64 {
    let mut h = FxHasher::default();
    tuple.hash(&mut h);
    h.finish()
}

/// The index key of one column of a tuple: the shape of the column path's *first*
/// value.  Column indexes map these keys to tuple ids, so an evaluator that knows a
/// column must start with a given atom (or must be empty, or must start with a
/// packed value) probes a bucket instead of scanning the whole relation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ColKey {
    /// The column holds the empty path `ε`.
    Empty,
    /// The column's first value is the given atom.
    Atom(AtomId),
    /// The column's first value is a packed value (all packed values share one
    /// bucket; candidates still go through full matching).
    Packed,
}

impl ColKey {
    /// The key of a ground column path.
    pub fn of_path(path: &Path) -> ColKey {
        match path.values().first() {
            None => ColKey::Empty,
            Some(Value::Atom(a)) => ColKey::Atom(*a),
            Some(Value::Packed(_)) => ColKey::Packed,
        }
    }
}

/// A fact `R(p1, …, pn)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fact {
    /// The relation name.
    pub relation: RelName,
    /// The component paths.
    pub tuple: Tuple,
}

impl Fact {
    /// Build a fact.
    pub fn new(relation: RelName, tuple: Tuple) -> Fact {
        Fact { relation, tuple }
    }

    /// Arity of the fact.
    pub fn arity(&self) -> usize {
        self.tuple.len()
    }
}

fn fmt_fact(f: &mut fmt::Formatter<'_>, relation: RelName, tuple: &[Path]) -> fmt::Result {
    write!(f, "{relation}(")?;
    for (i, p) in tuple.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{p}")?;
    }
    f.write_str(")")
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_fact(f, self.relation, &self.tuple)
    }
}

/// A schema: a finite set of relation names, each with an arity (Section 2.1).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    arities: BTreeMap<RelName, usize>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Build a schema from `(name, arity)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, usize)>) -> Schema {
        let mut s = Schema::new();
        for (name, arity) in pairs {
            s.declare(RelName::new(name), arity);
        }
        s
    }

    /// Declare (or re-declare) a relation name with the given arity.
    pub fn declare(&mut self, relation: RelName, arity: usize) {
        self.arities.insert(relation, arity);
    }

    /// The arity of `relation`, if declared.
    pub fn arity(&self, relation: RelName) -> Option<usize> {
        self.arities.get(&relation).copied()
    }

    /// Does the schema declare `relation`?
    pub fn contains(&self, relation: RelName) -> bool {
        self.arities.contains_key(&relation)
    }

    /// Iterate over `(relation, arity)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (RelName, usize)> + '_ {
        self.arities.iter().map(|(r, a)| (*r, *a))
    }

    /// Number of declared relation names.
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }

    /// A schema is *monadic* if every relation has arity zero or one (Section 3.1).
    pub fn is_monadic(&self) -> bool {
        self.arities.values().all(|&a| a <= 1)
    }
}

/// A finite n-ary relation on paths.
///
/// Storage is *insertion-ordered*: tuples live in a `Vec` and a tuple's position in
/// that vector is its stable *id*.  Because ids only grow, a consumer can remember
/// [`Relation::len`] as a watermark and later read "everything inserted since" as
/// the borrowed slice [`Relation::slice_from`] — the shape semi-naive Datalog
/// evaluation needs for delta views without copying tuples.  Deduplication goes
/// through a hash map (tuple hash → candidate ids), and every column keeps a
/// first-value index ([`ColKey`] → ids) so matching can probe instead of scan.
#[derive(Clone, Debug)]
pub struct Relation {
    arity: usize,
    /// Tuples in insertion order; a tuple's index is its id.
    tuples: Vec<Tuple>,
    /// Tuple hash → ids with that hash (dedup without storing tuples twice).
    dedup: FxMap<u64, Vec<u32>>,
    /// One index per column: first-value key → ids, in ascending id order.
    columns: Vec<FxMap<ColKey, Vec<u32>>>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: Vec::new(),
            dedup: FxMap::default(),
            columns: (0..arity).map(|_| FxMap::default()).collect(),
        }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple; returns `true` if it was new.  `relation` is the name this
    /// relation is registered under, used only for error reporting.
    ///
    /// # Errors
    /// Fails if the tuple's length differs from the relation's arity.
    pub fn insert(&mut self, relation: RelName, tuple: Tuple) -> Result<bool, CoreError> {
        if tuple.len() != self.arity {
            return Err(CoreError::ArityMismatch {
                relation,
                expected: self.arity,
                found: tuple.len(),
            });
        }
        let hash = hash_tuple(&tuple);
        let bucket = self.dedup.entry(hash).or_default();
        if bucket.iter().any(|&id| self.tuples[id as usize] == tuple) {
            return Ok(false);
        }
        let id = u32::try_from(self.tuples.len()).expect("more than u32::MAX tuples");
        bucket.push(id);
        for (column, path) in tuple.iter().enumerate() {
            self.columns[column]
                .entry(ColKey::of_path(path))
                .or_default()
                .push(id);
        }
        self.tuples.push(tuple);
        Ok(true)
    }

    /// Does the relation contain `tuple`?
    pub fn contains(&self, tuple: &[Path]) -> bool {
        if tuple.len() != self.arity {
            return false;
        }
        self.dedup
            .get(&hash_tuple(tuple))
            .is_some_and(|bucket| bucket.iter().any(|&id| self.tuples[id as usize] == tuple))
    }

    /// Iterate over the tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// All tuples as a borrowed slice, in insertion order (a tuple's index is its
    /// id).  This is the zero-copy way to read a relation.
    pub fn as_slice(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The tuples with id ≥ `start`, as a borrowed slice.  With `start` taken from
    /// an earlier [`Relation::len`] call, this is the *delta view* "everything
    /// inserted since" — no tuples are copied.
    pub fn slice_from(&self, start: usize) -> &[Tuple] {
        &self.tuples[start.min(self.tuples.len())..]
    }

    /// The ids (ascending) of tuples whose `column`-th path starts with `key`.
    /// Out-of-range columns and absent keys yield the empty slice.
    pub fn probe(&self, column: usize, key: ColKey) -> &[u32] {
        self.columns
            .get(column)
            .and_then(|index| index.get(&key))
            .map_or(&[], Vec::as_slice)
    }

    /// All tuples, cloned into a vector in lexicographic order.
    ///
    /// This is a snapshot convenience for reporting and tests; hot paths should use
    /// [`Relation::iter`] or [`Relation::as_slice`] instead, which do not clone.
    pub fn tuples(&self) -> Vec<Tuple> {
        let mut out = self.tuples.clone();
        out.sort();
        out
    }
}

/// Relations compare as *sets* of tuples: insertion order is storage detail, not
/// semantics.
impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.arity == other.arity
            && self.tuples.len() == other.tuples.len()
            && self.tuples.iter().all(|t| other.contains(t))
    }
}

impl Eq for Relation {}

/// An instance: a mapping from relation names to relations, equivalently a finite
/// set of facts (Section 2.3).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Instance {
    relations: BTreeMap<RelName, Relation>,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Build an instance from an iterator of facts.
    ///
    /// # Errors
    /// Fails if two facts use the same relation name with different arities.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Result<Instance, CoreError> {
        let mut inst = Instance::new();
        for fact in facts {
            inst.insert_fact(fact)?;
        }
        Ok(inst)
    }

    /// Convenience: a unary instance `{ R(p) | p ∈ paths }` over a single relation.
    pub fn unary(relation: RelName, paths: impl IntoIterator<Item = Path>) -> Instance {
        let mut inst = Instance::new();
        for p in paths {
            inst.insert_fact(Fact::new(relation, vec![p]))
                .expect("unary facts cannot mismatch");
        }
        // Even when `paths` is empty, register the relation with arity 1.
        inst.relations
            .entry(relation)
            .or_insert_with(|| Relation::new(1));
        inst
    }

    /// Insert a fact; returns `true` if it was new.
    ///
    /// The relation's arity is fixed by the first fact inserted for it.
    ///
    /// # Errors
    /// Fails on arity mismatch with previously inserted facts.
    pub fn insert_fact(&mut self, fact: Fact) -> Result<bool, CoreError> {
        Ok(self.insert_fact_new(fact)?.is_some())
    }

    /// Insert a fact; if it was new, return a borrow of the stored tuple (its id is
    /// the relation's new last index).  This is the single-lookup entry point the
    /// fixpoint loop uses: the caller can inspect the freshly inserted tuple
    /// without a second relation lookup and without having cloned it.
    ///
    /// # Errors
    /// Fails on arity mismatch with previously inserted facts.
    pub fn insert_fact_new(&mut self, fact: Fact) -> Result<Option<&Tuple>, CoreError> {
        let arity = fact.arity();
        let relation = fact.relation;
        let rel = self
            .relations
            .entry(relation)
            .or_insert_with(|| Relation::new(arity));
        Ok(rel
            .insert(relation, fact.tuple)?
            .then(|| rel.as_slice().last().expect("just inserted")))
    }

    /// Insert an empty relation of the given arity (or leave an existing one alone).
    pub fn declare_relation(&mut self, relation: RelName, arity: usize) {
        self.relations
            .entry(relation)
            .or_insert_with(|| Relation::new(arity));
    }

    /// The relation assigned to `name`, if present.
    pub fn relation(&self, name: RelName) -> Option<&Relation> {
        self.relations.get(&name)
    }

    /// The set of paths of a unary relation (empty if the relation is absent).
    ///
    /// This is the natural way to read off the answer of a *flat unary query*
    /// (Section 3.1).
    pub fn unary_paths(&self, name: RelName) -> BTreeSet<Path> {
        self.relation(name)
            .map(|r| {
                r.iter()
                    .filter(|t| t.len() == 1)
                    .map(|t| t[0].clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Does the instance contain the given fact?
    pub fn contains_fact(&self, fact: &Fact) -> bool {
        self.relation(fact.relation)
            .is_some_and(|r| r.arity() == fact.arity() && r.contains(&fact.tuple))
    }

    /// Is a nullary relation "true" (non-empty)?  Nullary relations model boolean
    /// query results (Example 2.2).
    pub fn nullary_true(&self, name: RelName) -> bool {
        self.relation(name).is_some_and(|r| !r.is_empty())
    }

    /// Relation names present in the instance, in name order.
    pub fn relation_names(&self) -> Vec<RelName> {
        self.relations.keys().copied().collect()
    }

    /// Iterate over all facts of the instance *without cloning*, in deterministic
    /// order, as `(relation, tuple)` pairs.  This is the iterator the instance-wide
    /// classification predicates and [`fmt::Display`] are built on.
    pub fn facts_ref(&self) -> impl Iterator<Item = (RelName, &Tuple)> + '_ {
        self.relations
            .iter()
            .flat_map(|(name, rel)| rel.iter().map(move |t| (*name, t)))
    }

    /// Iterate over all facts of the instance, in deterministic order.  Each fact
    /// owns a clone of its tuple; prefer [`Instance::facts_ref`] where a borrow
    /// suffices.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.facts_ref()
            .map(|(name, tuple)| Fact::new(name, tuple.clone()))
    }

    /// Total number of facts.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// An instance is *flat* if no packed value occurs anywhere in it (Section 3.1).
    pub fn is_flat(&self) -> bool {
        self.facts_ref()
            .all(|(_, tuple)| tuple.iter().all(Path::is_flat))
    }

    /// An instance is *classical* if every component of every fact is a length-1
    /// path holding an atomic value (Section 2.1).
    pub fn is_classical(&self) -> bool {
        self.facts_ref()
            .all(|(_, tuple)| tuple.iter().all(|p| p.len() == 1 && p[0].is_atom()))
    }

    /// An instance is *two-bounded* if only paths of length one or two occur in it
    /// (Section 5.2).
    pub fn is_two_bounded(&self) -> bool {
        self.facts_ref()
            .all(|(_, tuple)| tuple.iter().all(|p| (1..=2).contains(&p.len())))
    }

    /// The largest path length occurring in the instance (0 for the empty instance).
    /// Used to state the linear output bound of Lemma 5.1.
    pub fn max_path_len(&self) -> usize {
        self.facts_ref()
            .flat_map(|(_, tuple)| tuple.iter().map(Path::len))
            .max()
            .unwrap_or(0)
    }

    /// The schema induced by this instance.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for (name, rel) in &self.relations {
            s.declare(*name, rel.arity());
        }
        s
    }

    /// Restrict the instance to the relations of `schema` (dropping others).
    pub fn project_to_schema(&self, schema: &Schema) -> Instance {
        let mut out = Instance::new();
        for (name, rel) in &self.relations {
            if schema.contains(*name) {
                out.relations.insert(*name, rel.clone());
            }
        }
        out
    }

    /// Union of two instances (relations are merged; arities must agree).
    ///
    /// # Errors
    /// Fails if a relation appears in both with different arities.
    pub fn union(&self, other: &Instance) -> Result<Instance, CoreError> {
        let mut out = self.clone();
        for (name, tuple) in other.facts_ref() {
            out.insert_fact(Fact::new(name, tuple.clone()))?;
        }
        // Preserve empty relations declared in `other`.
        for (name, rel) in &other.relations {
            out.declare_relation(*name, rel.arity());
        }
        Ok(out)
    }

    /// All atomic values appearing anywhere in the instance (the instance's *active
    /// domain*).
    pub fn active_atoms(&self) -> BTreeSet<crate::interner::AtomId> {
        fn collect(value: &Value, out: &mut BTreeSet<crate::interner::AtomId>) {
            match value {
                Value::Atom(a) => {
                    out.insert(*a);
                }
                Value::Packed(p) => {
                    for v in p.iter() {
                        collect(v, out);
                    }
                }
            }
        }
        let mut out = BTreeSet::new();
        for (_, tuple) in self.facts_ref() {
            for path in tuple {
                for v in path.iter() {
                    collect(v, &mut out);
                }
            }
        }
        out
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, tuple) in self.facts_ref() {
            if !first {
                f.write_str("\n")?;
            }
            fmt_fact(f, name, tuple)?;
            f.write_str(".")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, path_of, rel, repeat_path};

    fn fact(r: &str, paths: &[&[&str]]) -> Fact {
        Fact::new(rel(r), paths.iter().map(|names| path_of(names)).collect())
    }

    #[test]
    fn schema_basics_and_monadicity() {
        let s = Schema::from_pairs([("R", 1), ("A", 0)]);
        assert_eq!(s.arity(rel("R")), Some(1));
        assert_eq!(s.arity(rel("D")), None);
        assert!(s.is_monadic());
        let s2 = Schema::from_pairs([("D", 3)]);
        assert!(!s2.is_monadic());
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Schema::new().is_empty());
    }

    #[test]
    fn facts_display_like_the_paper() {
        let f = fact("R", &[&["a", "b", "a"]]);
        assert_eq!(f.to_string(), "R(a·b·a)");
        let f = fact("D", &[&["q1"], &["a"], &["q2"]]);
        assert_eq!(f.to_string(), "D(q1, a, q2)");
    }

    #[test]
    fn insert_and_query_facts() {
        let mut inst = Instance::new();
        assert!(inst.insert_fact(fact("R", &[&["a", "a"]])).unwrap());
        assert!(!inst.insert_fact(fact("R", &[&["a", "a"]])).unwrap());
        assert!(inst.insert_fact(fact("R", &[&["a", "b"]])).unwrap());
        assert_eq!(inst.fact_count(), 2);
        assert!(inst.contains_fact(&fact("R", &[&["a", "b"]])));
        assert!(!inst.contains_fact(&fact("R", &[&["b", "a"]])));
        assert!(!inst.contains_fact(&fact("S", &[&["a", "b"]])));
        assert_eq!(
            inst.unary_paths(rel("R")),
            BTreeSet::from([path_of(&["a", "a"]), path_of(&["a", "b"])])
        );
    }

    #[test]
    fn arity_is_enforced_per_relation() {
        let mut inst = Instance::new();
        inst.insert_fact(fact("D", &[&["q"], &["a"], &["p"]]))
            .unwrap();
        let err = inst.insert_fact(fact("D", &[&["q"], &["a"]])).unwrap_err();
        assert_eq!(
            err,
            CoreError::ArityMismatch {
                relation: rel("D"),
                expected: 3,
                found: 2
            }
        );
    }

    #[test]
    fn unary_constructor_registers_relation_even_when_empty() {
        let inst = Instance::unary(rel("EmptyRel"), []);
        assert!(inst.relation(rel("EmptyRel")).is_some());
        assert_eq!(inst.unary_paths(rel("EmptyRel")), BTreeSet::new());
    }

    #[test]
    fn flat_classical_and_two_bounded_classification() {
        let flat = Instance::unary(rel("R"), [repeat_path("a", 3)]);
        assert!(flat.is_flat());
        assert!(!flat.is_classical());
        assert!(!flat.is_two_bounded());

        let classical = Instance::unary(rel("N"), [path_of(&["q0"])]);
        assert!(classical.is_classical());
        assert!(classical.is_two_bounded());

        let mut packed = Instance::new();
        packed
            .insert_fact(Fact::new(
                rel("T"),
                vec![Path::from_values([Value::packed(path_of(&["s"]))])],
            ))
            .unwrap();
        assert!(!packed.is_flat());
        assert!(packed.is_classical() == false);
    }

    #[test]
    fn nullary_relations_model_boolean_results() {
        let mut inst = Instance::new();
        assert!(!inst.nullary_true(rel("Answer")));
        inst.insert_fact(Fact::new(rel("Answer"), vec![])).unwrap();
        assert!(inst.nullary_true(rel("Answer")));
    }

    #[test]
    fn union_merges_and_checks_arity() {
        let a = Instance::unary(rel("R"), [path_of(&["x"])]);
        let b = Instance::unary(rel("S"), [path_of(&["y"])]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.fact_count(), 2);

        let mut c = Instance::new();
        c.insert_fact(fact("R", &[&["x"], &["y"]])).unwrap();
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn schema_induction_and_projection() {
        let mut inst = Instance::new();
        inst.insert_fact(fact("R", &[&["x"]])).unwrap();
        inst.insert_fact(fact("D", &[&["q"], &["a"], &["p"]]))
            .unwrap();
        let schema = inst.schema();
        assert_eq!(schema.arity(rel("D")), Some(3));
        let only_r = Schema::from_pairs([("R", 1)]);
        let projected = inst.project_to_schema(&only_r);
        assert_eq!(projected.relation_names(), vec![rel("R")]);
    }

    #[test]
    fn active_atoms_looks_inside_packing() {
        let mut inst = Instance::new();
        inst.insert_fact(Fact::new(
            rel("T"),
            vec![Path::from_values([
                Value::atom("c"),
                Value::packed(path_of(&["a", "b"])),
            ])],
        ))
        .unwrap();
        let atoms = inst.active_atoms();
        assert!(atoms.contains(&atom("a")));
        assert!(atoms.contains(&atom("b")));
        assert!(atoms.contains(&atom("c")));
        assert_eq!(atoms.len(), 3);
    }

    #[test]
    fn max_path_len_over_instance() {
        assert_eq!(Instance::new().max_path_len(), 0);
        let inst = Instance::unary(rel("R"), [repeat_path("a", 7), repeat_path("a", 2)]);
        assert_eq!(inst.max_path_len(), 7);
    }

    #[test]
    fn relation_insert_reports_the_real_name_and_expected_arity() {
        let mut r = Relation::new(3);
        let err = r
            .insert(rel("D"), vec![path_of(&["q"]), path_of(&["a"])])
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::ArityMismatch {
                relation: rel("D"),
                expected: 3,
                found: 2
            }
        );
    }

    #[test]
    fn relation_storage_is_insertion_ordered_with_stable_ids() {
        let mut r = Relation::new(1);
        r.insert(rel("R"), vec![path_of(&["b"])]).unwrap();
        r.insert(rel("R"), vec![path_of(&["a"])]).unwrap();
        assert!(!r.insert(rel("R"), vec![path_of(&["b"])]).unwrap());
        // Insertion order is preserved; `tuples()` snapshots sort.
        assert_eq!(r.as_slice()[0], vec![path_of(&["b"])]);
        assert_eq!(r.as_slice()[1], vec![path_of(&["a"])]);
        assert_eq!(
            r.tuples(),
            vec![vec![path_of(&["a"])], vec![path_of(&["b"])]]
        );
        // Watermark slices expose exactly the tuples inserted since.
        let mark = r.len();
        r.insert(rel("R"), vec![path_of(&["c"])]).unwrap();
        assert_eq!(r.slice_from(mark), &[vec![path_of(&["c"])]]);
        assert!(r.slice_from(17).is_empty());
        // Set semantics for equality, independent of insertion order.
        let mut other = Relation::new(1);
        for name in ["c", "b", "a"] {
            other.insert(rel("R"), vec![path_of(&[name])]).unwrap();
        }
        assert_eq!(r, other);
        other.insert(rel("R"), vec![path_of(&["d"])]).unwrap();
        assert_ne!(r, other);
    }

    #[test]
    fn column_index_probes_by_first_value() {
        let mut r = Relation::new(2);
        r.insert(rel("T"), vec![path_of(&["a", "b"]), Path::empty()])
            .unwrap();
        r.insert(rel("T"), vec![path_of(&["a"]), path_of(&["c"])])
            .unwrap();
        r.insert(
            rel("T"),
            vec![
                Path::singleton(Value::packed(path_of(&["z"]))),
                path_of(&["c"]),
            ],
        )
        .unwrap();
        assert_eq!(r.probe(0, ColKey::Atom(atom("a"))), &[0, 1]);
        assert_eq!(r.probe(0, ColKey::Packed), &[2]);
        assert_eq!(r.probe(1, ColKey::Empty), &[0]);
        assert_eq!(r.probe(1, ColKey::Atom(atom("c"))), &[1, 2]);
        assert!(r.probe(1, ColKey::Atom(atom("z"))).is_empty());
        assert!(r.probe(9, ColKey::Empty).is_empty());
    }

    #[test]
    fn borrowing_facts_iterator_agrees_with_the_owning_one() {
        let mut inst = Instance::new();
        inst.insert_fact(fact("R", &[&["x"]])).unwrap();
        inst.insert_fact(fact("D", &[&["q"], &["a"], &["p"]]))
            .unwrap();
        let owned: Vec<Fact> = inst.facts().collect();
        let borrowed: Vec<Fact> = inst
            .facts_ref()
            .map(|(name, t)| Fact::new(name, t.clone()))
            .collect();
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn display_lists_facts_deterministically() {
        let mut inst = Instance::new();
        inst.insert_fact(fact("S", &[&["b"]])).unwrap();
        inst.insert_fact(fact("R", &[&["a"]])).unwrap();
        let text = inst.to_string();
        assert_eq!(text, "R(a).\nS(b).");
    }
}
