//! Schemas, relations, facts, and instances (Sections 2.1 and 2.3).
//!
//! An *instance* `I` of a schema `Γ` assigns to each relation name a finite n-ary
//! relation on paths.  Equivalently (Section 2.3) an instance is a finite set of
//! *facts* `R(p1, …, pn)`.  Both views are exposed here: [`Instance`] stores
//! relations keyed by name and iterates as facts.

use crate::error::CoreError;
use crate::interner::RelName;
use crate::path::Path;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A tuple of paths — one row of an n-ary relation.
pub type Tuple = Vec<Path>;

/// A fact `R(p1, …, pn)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fact {
    /// The relation name.
    pub relation: RelName,
    /// The component paths.
    pub tuple: Tuple,
}

impl Fact {
    /// Build a fact.
    pub fn new(relation: RelName, tuple: Tuple) -> Fact {
        Fact { relation, tuple }
    }

    /// Arity of the fact.
    pub fn arity(&self) -> usize {
        self.tuple.len()
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, p) in self.tuple.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{p}")?;
        }
        f.write_str(")")
    }
}

/// A schema: a finite set of relation names, each with an arity (Section 2.1).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    arities: BTreeMap<RelName, usize>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Build a schema from `(name, arity)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, usize)>) -> Schema {
        let mut s = Schema::new();
        for (name, arity) in pairs {
            s.declare(RelName::new(name), arity);
        }
        s
    }

    /// Declare (or re-declare) a relation name with the given arity.
    pub fn declare(&mut self, relation: RelName, arity: usize) {
        self.arities.insert(relation, arity);
    }

    /// The arity of `relation`, if declared.
    pub fn arity(&self, relation: RelName) -> Option<usize> {
        self.arities.get(&relation).copied()
    }

    /// Does the schema declare `relation`?
    pub fn contains(&self, relation: RelName) -> bool {
        self.arities.contains_key(&relation)
    }

    /// Iterate over `(relation, arity)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (RelName, usize)> + '_ {
        self.arities.iter().map(|(r, a)| (*r, *a))
    }

    /// Number of declared relation names.
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }

    /// A schema is *monadic* if every relation has arity zero or one (Section 3.1).
    pub fn is_monadic(&self) -> bool {
        self.arities.values().all(|&a| a <= 1)
    }
}

/// A finite n-ary relation on paths.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple; returns `true` if it was new.
    ///
    /// # Errors
    /// Fails if the tuple's length differs from the relation's arity.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool, CoreError> {
        if tuple.len() != self.arity {
            return Err(CoreError::ArityMismatch {
                relation: RelName::new("<anonymous>"),
                expected: self.arity,
                found: tuple.len(),
            });
        }
        Ok(self.tuples.insert(tuple))
    }

    /// Does the relation contain `tuple`?
    pub fn contains(&self, tuple: &[Path]) -> bool {
        self.tuples.contains(tuple)
    }

    /// Iterate over the tuples in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// All tuples, cloned into a vector.
    pub fn tuples(&self) -> Vec<Tuple> {
        self.tuples.iter().cloned().collect()
    }
}

/// An instance: a mapping from relation names to relations, equivalently a finite
/// set of facts (Section 2.3).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Instance {
    relations: BTreeMap<RelName, Relation>,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Build an instance from an iterator of facts.
    ///
    /// # Errors
    /// Fails if two facts use the same relation name with different arities.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Result<Instance, CoreError> {
        let mut inst = Instance::new();
        for fact in facts {
            inst.insert_fact(fact)?;
        }
        Ok(inst)
    }

    /// Convenience: a unary instance `{ R(p) | p ∈ paths }` over a single relation.
    pub fn unary(relation: RelName, paths: impl IntoIterator<Item = Path>) -> Instance {
        let mut inst = Instance::new();
        for p in paths {
            inst.insert_fact(Fact::new(relation, vec![p]))
                .expect("unary facts cannot mismatch");
        }
        // Even when `paths` is empty, register the relation with arity 1.
        inst.relations
            .entry(relation)
            .or_insert_with(|| Relation::new(1));
        inst
    }

    /// Insert a fact; returns `true` if it was new.
    ///
    /// The relation's arity is fixed by the first fact inserted for it.
    ///
    /// # Errors
    /// Fails on arity mismatch with previously inserted facts.
    pub fn insert_fact(&mut self, fact: Fact) -> Result<bool, CoreError> {
        let arity = fact.arity();
        let relation = fact.relation;
        let rel = self
            .relations
            .entry(relation)
            .or_insert_with(|| Relation::new(arity));
        if rel.arity() != arity {
            return Err(CoreError::ArityMismatch {
                relation,
                expected: rel.arity(),
                found: arity,
            });
        }
        rel.insert(fact.tuple)
            .map_err(|_| CoreError::ArityMismatch {
                relation,
                expected: arity,
                found: arity,
            })
    }

    /// Insert an empty relation of the given arity (or leave an existing one alone).
    pub fn declare_relation(&mut self, relation: RelName, arity: usize) {
        self.relations
            .entry(relation)
            .or_insert_with(|| Relation::new(arity));
    }

    /// The relation assigned to `name`, if present.
    pub fn relation(&self, name: RelName) -> Option<&Relation> {
        self.relations.get(&name)
    }

    /// The set of paths of a unary relation (empty if the relation is absent).
    ///
    /// This is the natural way to read off the answer of a *flat unary query*
    /// (Section 3.1).
    pub fn unary_paths(&self, name: RelName) -> BTreeSet<Path> {
        self.relation(name)
            .map(|r| {
                r.iter()
                    .filter(|t| t.len() == 1)
                    .map(|t| t[0].clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Does the instance contain the given fact?
    pub fn contains_fact(&self, fact: &Fact) -> bool {
        self.relation(fact.relation)
            .is_some_and(|r| r.arity() == fact.arity() && r.contains(&fact.tuple))
    }

    /// Is a nullary relation "true" (non-empty)?  Nullary relations model boolean
    /// query results (Example 2.2).
    pub fn nullary_true(&self, name: RelName) -> bool {
        self.relation(name).is_some_and(|r| !r.is_empty())
    }

    /// Relation names present in the instance, in name order.
    pub fn relation_names(&self) -> Vec<RelName> {
        self.relations.keys().copied().collect()
    }

    /// Iterate over all facts of the instance, in deterministic order.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.relations
            .iter()
            .flat_map(|(name, rel)| rel.iter().map(move |t| Fact::new(*name, t.clone())))
    }

    /// Total number of facts.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// An instance is *flat* if no packed value occurs anywhere in it (Section 3.1).
    pub fn is_flat(&self) -> bool {
        self.facts().all(|f| f.tuple.iter().all(Path::is_flat))
    }

    /// An instance is *classical* if every component of every fact is a length-1
    /// path holding an atomic value (Section 2.1).
    pub fn is_classical(&self) -> bool {
        self.facts()
            .all(|f| f.tuple.iter().all(|p| p.len() == 1 && p[0].is_atom()))
    }

    /// An instance is *two-bounded* if only paths of length one or two occur in it
    /// (Section 5.2).
    pub fn is_two_bounded(&self) -> bool {
        self.facts()
            .all(|f| f.tuple.iter().all(|p| (1..=2).contains(&p.len())))
    }

    /// The largest path length occurring in the instance (0 for the empty instance).
    /// Used to state the linear output bound of Lemma 5.1.
    pub fn max_path_len(&self) -> usize {
        self.facts()
            .flat_map(|f| f.tuple.into_iter().map(|p| p.len()))
            .max()
            .unwrap_or(0)
    }

    /// The schema induced by this instance.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for (name, rel) in &self.relations {
            s.declare(*name, rel.arity());
        }
        s
    }

    /// Restrict the instance to the relations of `schema` (dropping others).
    pub fn project_to_schema(&self, schema: &Schema) -> Instance {
        let mut out = Instance::new();
        for (name, rel) in &self.relations {
            if schema.contains(*name) {
                out.relations.insert(*name, rel.clone());
            }
        }
        out
    }

    /// Union of two instances (relations are merged; arities must agree).
    ///
    /// # Errors
    /// Fails if a relation appears in both with different arities.
    pub fn union(&self, other: &Instance) -> Result<Instance, CoreError> {
        let mut out = self.clone();
        for fact in other.facts() {
            out.insert_fact(fact)?;
        }
        // Preserve empty relations declared in `other`.
        for (name, rel) in &other.relations {
            out.declare_relation(*name, rel.arity());
        }
        Ok(out)
    }

    /// All atomic values appearing anywhere in the instance (the instance's *active
    /// domain*).
    pub fn active_atoms(&self) -> BTreeSet<crate::interner::AtomId> {
        fn collect(value: &Value, out: &mut BTreeSet<crate::interner::AtomId>) {
            match value {
                Value::Atom(a) => {
                    out.insert(*a);
                }
                Value::Packed(p) => {
                    for v in p.iter() {
                        collect(v, out);
                    }
                }
            }
        }
        let mut out = BTreeSet::new();
        for fact in self.facts() {
            for path in &fact.tuple {
                for v in path.iter() {
                    collect(v, &mut out);
                }
            }
        }
        out
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for fact in self.facts() {
            if !first {
                f.write_str("\n")?;
            }
            write!(f, "{fact}.")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, path_of, rel, repeat_path};

    fn fact(r: &str, paths: &[&[&str]]) -> Fact {
        Fact::new(rel(r), paths.iter().map(|names| path_of(names)).collect())
    }

    #[test]
    fn schema_basics_and_monadicity() {
        let s = Schema::from_pairs([("R", 1), ("A", 0)]);
        assert_eq!(s.arity(rel("R")), Some(1));
        assert_eq!(s.arity(rel("D")), None);
        assert!(s.is_monadic());
        let s2 = Schema::from_pairs([("D", 3)]);
        assert!(!s2.is_monadic());
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Schema::new().is_empty());
    }

    #[test]
    fn facts_display_like_the_paper() {
        let f = fact("R", &[&["a", "b", "a"]]);
        assert_eq!(f.to_string(), "R(a·b·a)");
        let f = fact("D", &[&["q1"], &["a"], &["q2"]]);
        assert_eq!(f.to_string(), "D(q1, a, q2)");
    }

    #[test]
    fn insert_and_query_facts() {
        let mut inst = Instance::new();
        assert!(inst.insert_fact(fact("R", &[&["a", "a"]])).unwrap());
        assert!(!inst.insert_fact(fact("R", &[&["a", "a"]])).unwrap());
        assert!(inst.insert_fact(fact("R", &[&["a", "b"]])).unwrap());
        assert_eq!(inst.fact_count(), 2);
        assert!(inst.contains_fact(&fact("R", &[&["a", "b"]])));
        assert!(!inst.contains_fact(&fact("R", &[&["b", "a"]])));
        assert!(!inst.contains_fact(&fact("S", &[&["a", "b"]])));
        assert_eq!(
            inst.unary_paths(rel("R")),
            BTreeSet::from([path_of(&["a", "a"]), path_of(&["a", "b"])])
        );
    }

    #[test]
    fn arity_is_enforced_per_relation() {
        let mut inst = Instance::new();
        inst.insert_fact(fact("D", &[&["q"], &["a"], &["p"]]))
            .unwrap();
        let err = inst.insert_fact(fact("D", &[&["q"], &["a"]])).unwrap_err();
        assert_eq!(
            err,
            CoreError::ArityMismatch {
                relation: rel("D"),
                expected: 3,
                found: 2
            }
        );
    }

    #[test]
    fn unary_constructor_registers_relation_even_when_empty() {
        let inst = Instance::unary(rel("EmptyRel"), []);
        assert!(inst.relation(rel("EmptyRel")).is_some());
        assert_eq!(inst.unary_paths(rel("EmptyRel")), BTreeSet::new());
    }

    #[test]
    fn flat_classical_and_two_bounded_classification() {
        let flat = Instance::unary(rel("R"), [repeat_path("a", 3)]);
        assert!(flat.is_flat());
        assert!(!flat.is_classical());
        assert!(!flat.is_two_bounded());

        let classical = Instance::unary(rel("N"), [path_of(&["q0"])]);
        assert!(classical.is_classical());
        assert!(classical.is_two_bounded());

        let mut packed = Instance::new();
        packed
            .insert_fact(Fact::new(
                rel("T"),
                vec![Path::from_values([Value::packed(path_of(&["s"]))])],
            ))
            .unwrap();
        assert!(!packed.is_flat());
        assert!(packed.is_classical() == false);
    }

    #[test]
    fn nullary_relations_model_boolean_results() {
        let mut inst = Instance::new();
        assert!(!inst.nullary_true(rel("Answer")));
        inst.insert_fact(Fact::new(rel("Answer"), vec![])).unwrap();
        assert!(inst.nullary_true(rel("Answer")));
    }

    #[test]
    fn union_merges_and_checks_arity() {
        let a = Instance::unary(rel("R"), [path_of(&["x"])]);
        let b = Instance::unary(rel("S"), [path_of(&["y"])]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.fact_count(), 2);

        let mut c = Instance::new();
        c.insert_fact(fact("R", &[&["x"], &["y"]])).unwrap();
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn schema_induction_and_projection() {
        let mut inst = Instance::new();
        inst.insert_fact(fact("R", &[&["x"]])).unwrap();
        inst.insert_fact(fact("D", &[&["q"], &["a"], &["p"]]))
            .unwrap();
        let schema = inst.schema();
        assert_eq!(schema.arity(rel("D")), Some(3));
        let only_r = Schema::from_pairs([("R", 1)]);
        let projected = inst.project_to_schema(&only_r);
        assert_eq!(projected.relation_names(), vec![rel("R")]);
    }

    #[test]
    fn active_atoms_looks_inside_packing() {
        let mut inst = Instance::new();
        inst.insert_fact(Fact::new(
            rel("T"),
            vec![Path::from_values([
                Value::atom("c"),
                Value::packed(path_of(&["a", "b"])),
            ])],
        ))
        .unwrap();
        let atoms = inst.active_atoms();
        assert!(atoms.contains(&atom("a")));
        assert!(atoms.contains(&atom("b")));
        assert!(atoms.contains(&atom("c")));
        assert_eq!(atoms.len(), 3);
    }

    #[test]
    fn max_path_len_over_instance() {
        assert_eq!(Instance::new().max_path_len(), 0);
        let inst = Instance::unary(rel("R"), [repeat_path("a", 7), repeat_path("a", 2)]);
        assert_eq!(inst.max_path_len(), 7);
    }

    #[test]
    fn display_lists_facts_deterministically() {
        let mut inst = Instance::new();
        inst.insert_fact(fact("S", &[&["b"]])).unwrap();
        inst.insert_fact(fact("R", &[&["a"]])).unwrap();
        let text = inst.to_string();
        assert_eq!(text, "R(a).\nS(b).");
    }
}
