//! Cooperative cancellation for long-running evaluations.
//!
//! A [`CancelToken`] is a cheaply cloneable handle (an `Arc` around an atomic
//! flag plus a reason slot) shared between whoever *requests* cancellation — a
//! deadline watchdog, a SIGINT handler, a panicking executor worker — and the
//! evaluation loops that *observe* it.  Observation is cooperative: the
//! evaluators poll [`CancelToken::is_cancelled`] at fixpoint-round and stratum
//! boundaries and (amortised) inside the RAM interpreter's instruction loop,
//! then unwind with a structured error carrying the partial statistics
//! accumulated so far.
//!
//! The token never allocates on the signal path: [`CancelToken::linked_to`]
//! attaches a `'static` [`AtomicBool`] that an async-signal handler may set,
//! and the reason string for that path is materialised lazily by the observer,
//! not the handler.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex};

/// Shared cancellation flag with a human-readable reason.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same state.  The
/// first call to [`CancelToken::cancel`] wins: later reasons are ignored so the
/// reported cause is the event that actually triggered cancellation.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    /// Optional external flag (e.g. set by a signal handler) folded into
    /// [`CancelToken::is_cancelled`].
    external: Option<&'static AtomicBool>,
    /// Deterministic test hook: when >= 0, each [`CancelToken::checkpoint`]
    /// call decrements the countdown and cancels the token once it reaches
    /// zero.  -1 means "disabled".
    countdown: AtomicI64,
    reason: Mutex<Option<String>>,
}

impl Inner {
    fn new(external: Option<&'static AtomicBool>) -> Inner {
        Inner {
            flag: AtomicBool::new(false),
            external,
            countdown: AtomicI64::new(-1),
            reason: Mutex::new(None),
        }
    }
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner::new(None)),
        }
    }

    /// A token that additionally observes `flag`: once `flag` reads `true`
    /// (typically set from a signal handler, which must not allocate), the
    /// token reports itself cancelled with the reason `"interrupted"`.
    pub fn linked_to(flag: &'static AtomicBool) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner::new(Some(flag))),
        }
    }

    /// Request cancellation with `reason`.  The first caller wins; subsequent
    /// calls are no-ops so the original cause is preserved.
    pub fn cancel(&self, reason: &str) {
        let mut slot = match self.inner.reason.lock() {
            Ok(slot) => slot,
            Err(poisoned) => poisoned.into_inner(),
        };
        if slot.is_none() {
            *slot = Some(reason.to_string());
        }
        drop(slot);
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested (directly or via the linked flag)?
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        if let Some(external) = self.inner.external {
            if external.load(Ordering::Acquire) {
                return true;
            }
        }
        false
    }

    /// The reason recorded by the first [`CancelToken::cancel`] call, or
    /// `"interrupted"` if cancellation arrived through the linked external
    /// flag, or `"cancelled"` as a last resort.
    pub fn reason(&self) -> String {
        let slot = match self.inner.reason.lock() {
            Ok(slot) => slot,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(reason) = slot.as_ref() {
            return reason.clone();
        }
        drop(slot);
        if let Some(external) = self.inner.external {
            if external.load(Ordering::Acquire) {
                return "interrupted".to_string();
            }
        }
        "cancelled".to_string()
    }

    /// Arm the deterministic countdown: the token cancels itself on the `n`th
    /// subsequent [`CancelToken::checkpoint`] call.  Used by tests to cancel
    /// at an exact, reproducible point of the evaluation.
    pub fn cancel_after(&self, n: u64) {
        self.inner.countdown.store(n as i64, Ordering::Release);
    }

    /// Notify the token that the evaluation reached a cancellation checkpoint.
    /// Only meaningful when a countdown is armed via
    /// [`CancelToken::cancel_after`]; a no-op otherwise.
    pub fn checkpoint(&self) {
        if self.inner.countdown.load(Ordering::Acquire) < 0 {
            return;
        }
        if self.inner.countdown.fetch_sub(1, Ordering::AcqRel) <= 1 {
            self.inner.countdown.store(-1, Ordering::Release);
            self.cancel("test countdown elapsed");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert_eq!(token.reason(), "cancelled");
    }

    #[test]
    fn first_cancel_reason_wins() {
        let token = CancelToken::new();
        token.cancel("deadline exceeded");
        token.cancel("later reason");
        assert!(token.is_cancelled());
        assert_eq!(token.reason(), "deadline exceeded");
    }

    #[test]
    fn clones_share_state() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel("poisoned");
        assert!(token.is_cancelled());
        assert_eq!(token.reason(), "poisoned");
    }

    #[test]
    fn linked_flag_is_observed() {
        static FLAG: AtomicBool = AtomicBool::new(false);
        let token = CancelToken::linked_to(&FLAG);
        assert!(!token.is_cancelled());
        FLAG.store(true, Ordering::Release);
        assert!(token.is_cancelled());
        assert_eq!(token.reason(), "interrupted");
        FLAG.store(false, Ordering::Release);
    }

    #[test]
    fn countdown_cancels_on_nth_checkpoint() {
        let token = CancelToken::new();
        token.cancel_after(3);
        token.checkpoint();
        token.checkpoint();
        assert!(!token.is_cancelled());
        token.checkpoint();
        assert!(token.is_cancelled());
        assert_eq!(token.reason(), "test countdown elapsed");
    }

    #[test]
    fn checkpoint_without_countdown_is_noop() {
        let token = CancelToken::new();
        for _ in 0..100 {
            token.checkpoint();
        }
        assert!(!token.is_cancelled());
    }
}
