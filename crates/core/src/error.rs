//! Error type for the core data model.

use crate::interner::RelName;
use std::fmt;

/// Errors raised by the core data model (arity mismatches and schema violations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A fact was inserted with a number of components different from the relation's
    /// declared or previously observed arity.
    ArityMismatch {
        /// The relation involved.
        relation: RelName,
        /// The arity the relation already has.
        expected: usize,
        /// The arity of the offending tuple.
        found: usize,
    },
    /// A relation name was used that the schema does not declare.
    UnknownRelation {
        /// The undeclared relation.
        relation: RelName,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch for relation {relation}: expected {expected}, found {found}"
            ),
            CoreError::UnknownRelation { relation } => {
                write!(f, "relation {relation} is not declared in the schema")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel;

    #[test]
    fn errors_render_readably() {
        let e = CoreError::ArityMismatch {
            relation: rel("R"),
            expected: 2,
            found: 3,
        };
        assert_eq!(
            e.to_string(),
            "arity mismatch for relation R: expected 2, found 3"
        );
        let e = CoreError::UnknownRelation { relation: rel("Q") };
        assert!(e.to_string().contains("Q"));
    }
}
