//! Global string interner and the identifier newtypes built on it.
//!
//! The paper's universe **dom** of atomic values is countably infinite and abstract;
//! only equality between atomic values is ever observed by the semantics.  We
//! therefore represent atomic values (and relation names, and variable names) as
//! interned strings: a [`Symbol`] is a dense `u32` index into a process-wide table,
//! so equality and hashing are O(1) and every identifier can still be printed with
//! its original name.
//!
//! The interner is global (guarded by a `parking_lot::RwLock`) because values flow
//! freely between programs, instances, and engines in this workspace; threading an
//! interner handle through every API would add noise without adding safety.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// An interned string: a cheap, copyable identity for a name.
///
/// Two `Symbol`s are equal if and only if they were interned from equal strings.
/// Ordering is by the underlying index (i.e. interning order), which is stable
/// within a process run and is only used to obtain deterministic iteration orders.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct InternerInner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

fn interner() -> &'static RwLock<InternerInner> {
    static INTERNER: OnceLock<RwLock<InternerInner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(InternerInner {
            names: Vec::new(),
            by_name: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Intern `name`, returning its symbol.  Idempotent.
    pub fn intern(name: &str) -> Symbol {
        {
            let guard = interner().read();
            if let Some(&ix) = guard.by_name.get(name) {
                return Symbol(ix);
            }
        }
        let mut guard = interner().write();
        if let Some(&ix) = guard.by_name.get(name) {
            return Symbol(ix);
        }
        let ix = u32::try_from(guard.names.len()).expect("interner overflow");
        guard.names.push(name.to_owned());
        guard.by_name.insert(name.to_owned(), ix);
        Symbol(ix)
    }

    /// The string this symbol was interned from.
    pub fn name(self) -> String {
        interner().read().names[self.0 as usize].clone()
    }

    /// Run `f` on the interned string without cloning it.
    pub fn with_name<R>(self, f: impl FnOnce(&str) -> R) -> R {
        let guard = interner().read();
        f(&guard.names[self.0 as usize])
    }

    /// The raw index of this symbol (useful for dense tables).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuild a symbol from a raw index previously obtained from
    /// [`Symbol::index`].  Passing an index that was never handed out yields
    /// a symbol whose name lookups panic.
    pub fn from_index(ix: u32) -> Symbol {
        Symbol(ix)
    }

    /// Generate a fresh symbol whose name starts with `prefix` and is guaranteed not
    /// to have been interned before this call.  Used by program rewrites that need
    /// fresh relation or variable names.
    pub fn fresh(prefix: &str) -> Symbol {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let candidate = format!("{prefix}{n}");
            let already = interner().read().by_name.contains_key(&candidate);
            if !already {
                return Symbol::intern(&candidate);
            }
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_name(|n| write!(f, "Symbol({n:?})"))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_name(|n| f.write_str(n))
    }
}

macro_rules! symbol_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(Symbol);

        impl $name {
            /// Intern `name` into this namespace.
            pub fn new(name: &str) -> Self {
                Self(Symbol::intern(name))
            }

            /// Wrap an existing symbol.
            pub fn from_symbol(sym: Symbol) -> Self {
                Self(sym)
            }

            /// The underlying interned symbol.
            pub fn symbol(self) -> Symbol {
                self.0
            }

            /// The original string.
            pub fn name(self) -> String {
                self.0.name()
            }

            /// Generate a fresh identifier with the given prefix.
            pub fn fresh(prefix: &str) -> Self {
                Self(Symbol::fresh(prefix))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.0, f)
            }
        }
    };
}

symbol_newtype!(
    /// An atomic value from the universe **dom** (Section 2.1).
    ///
    /// Atomic values are opaque: the only operation the semantics ever performs on
    /// them is an equality test, which interning makes O(1).
    AtomId
);

symbol_newtype!(
    /// A relation name (the `R` in `R(p1, …, pn)`).
    RelName
);

symbol_newtype!(
    /// A variable name, shared by atomic variables (`@x`) and path variables (`$x`).
    ///
    /// The *kind* of a variable (atomic vs path) is tracked separately by the syntax
    /// crate; two variables with the same name but different kinds are distinct.
    VarSym
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn interning_is_idempotent_and_injective() {
        let a = Symbol::intern("alpha");
        let b = Symbol::intern("alpha");
        let c = Symbol::intern("beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "alpha");
        assert_eq!(c.name(), "beta");
    }

    #[test]
    fn with_name_avoids_clone_and_matches_name() {
        let a = Symbol::intern("gamma");
        let len = a.with_name(str::len);
        assert_eq!(len, 5);
        assert_eq!(a.name().len(), len);
    }

    #[test]
    fn fresh_symbols_are_distinct_from_existing_and_each_other() {
        let existing = Symbol::intern("fresh_test0");
        let mut seen = HashSet::new();
        seen.insert(existing);
        for _ in 0..64 {
            let s = Symbol::fresh("fresh_test");
            assert!(seen.insert(s), "fresh symbol collided: {s}");
        }
    }

    #[test]
    fn newtypes_are_namespaced_wrappers() {
        let a = AtomId::new("x");
        let r = RelName::new("x");
        let v = VarSym::new("x");
        // Same underlying symbol, but the Rust types keep the namespaces apart.
        assert_eq!(a.symbol(), r.symbol());
        assert_eq!(r.symbol(), v.symbol());
        assert_eq!(a.name(), "x");
        assert_eq!(format!("{a}"), "x");
        assert_eq!(format!("{r:?}"), "RelName(x)");
    }

    #[test]
    fn symbols_order_deterministically_within_a_run() {
        let a = Symbol::intern("order_a_zzz");
        let b = Symbol::intern("order_b_zzz");
        // Interned later => larger index.
        assert!(a.index() < b.index());
        assert!(a < b);
    }

    #[test]
    fn interning_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|j| Symbol::intern(&format!("t{}_{}", i % 2, j)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Threads with the same i % 2 interned the same strings and must agree.
        assert_eq!(results[0], results[2]);
        assert_eq!(results[1], results[3]);
    }
}
