//! Hash-consed path storage: every distinct path is stored exactly once.
//!
//! The evaluator moves paths constantly — tuples are vectors of paths, deltas
//! are windows over tuples, valuations bind paths to variables — and before
//! this module existed every one of those moves cloned a `Vec<Value>`.  The
//! store replaces the owned vector with an interned identity: a [`PathId`] is
//! a dense `u32` into a process-wide table of value slices, so
//!
//! * equality of paths is equality of ids (O(1), no content walk),
//! * hashing a path hashes one `u32` (consistent with equality because the
//!   table holds each content exactly once),
//! * cloning a path copies four bytes, and
//! * the values of a path are a `&'static [Value]` shared by every holder.
//!
//! The table is append-only and global (like the string interner of
//! [`crate::interner`], and for the same reason: values flow freely between
//! programs, instances, and engines).  Entries are leaked `Box<[Value]>`
//! allocations — the memory-density trade systems like Octopus make: storage
//! is shared across identical content and lives for the process, with
//! [`store_stats`] exposing the footprint so harnesses can report it.
//!
//! Two fast paths keep the dominant cases off the lock entirely:
//!
//! * the empty path is the constant [`PathId::EMPTY`], and
//! * singleton atom paths (the whole content of flat classical instances) go
//!   through a dense per-atom memo table mirrored thread-locally.
//!
//! General reads ([`resolve`]) also go through a thread-local mirror of the
//! append-only entry table, so resolving an id a thread has seen before is a
//! plain bounds-checked array read with no atomics — the "shared read-only
//! store" shape the multi-threaded executor wants.  Only interning *new*
//! content takes the write lock.
//!
//! **Growth discipline.**  The matcher's backtracking prefix enumeration
//! tries up to O(L²) distinct cuts of a length-L path probed by adjacent
//! unbound path variables, and the store never forgets an interned path.
//! Speculative cuts therefore stay *out* of the store: bindings hold
//! unregistered `(parent, start, end)` views ([`crate::PathView`]) whose
//! comparisons run over the shared value slice, and a cut is interned only
//! when it survives to a fact emission or equation grounding
//! ([`crate::PathView::to_path`]).  Store growth thus tracks the facts an
//! evaluation *keeps*, not the matches it *tried*; `store_stats` (and the
//! evaluator's `max_store_bytes` budget) exist so deployments can watch and
//! bound what remains.

use crate::hash::{fx_hash, FxMap};
use crate::interner::AtomId;
use crate::value::Value;
use parking_lot::RwLock;
use std::cell::RefCell;
use std::sync::OnceLock;

/// The identity of an interned path: a dense index into the global store.
///
/// Two `PathId`s are equal if and only if they were interned from equal value
/// sequences — the hash-consing invariant every fast path above relies on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PathId(u32);

impl PathId {
    /// The id of the empty path `ε` (entry 0, reserved at store creation).
    pub const EMPTY: PathId = PathId(0);

    /// The raw index of this id (useful for dense side tables).
    pub fn index(self) -> u32 {
        self.0
    }
}

const EMPTY_VALUES: &[Value] = &[];
const NO_ID: u32 = u32::MAX;

struct StoreInner {
    /// Content hash → candidate ids; the hash-consing table.  Keying on the
    /// precomputed content hash (instead of the slice) means one content walk
    /// per intern call total: the caller hashes once and every probe and the
    /// final insert reuse that hash, where a slice-keyed map re-hashed the
    /// content at each of its own probes.  Collisions only lengthen the
    /// candidate list, which the equality checks filter.
    by_content: FxMap<u64, Vec<u32>>,
    /// Id → content; append-only, so prefixes of this table never change.
    entries: Vec<&'static [Value]>,
    /// Bytes of leaked owned slices (shared sub-slices add nothing here).
    owned_bytes: usize,
    /// Atom symbol index → id of the singleton path holding that atom.
    singleton: Vec<u32>,
    /// `(parent id, start, end)` → subpath id: lets [`crate::Path::subpath`]
    /// answer repeat cuts by hashing three `u32`s instead of re-hashing the
    /// value content (the matcher enumerates the same cuts constantly).
    subpaths: FxMap<(u32, u32, u32), u32>,
}

fn store() -> &'static RwLock<StoreInner> {
    static STORE: OnceLock<RwLock<StoreInner>> = OnceLock::new();
    STORE.get_or_init(|| {
        let mut by_content: FxMap<u64, Vec<u32>> = FxMap::default();
        by_content.insert(fx_hash(EMPTY_VALUES), vec![0]);
        RwLock::new(StoreInner {
            by_content,
            entries: vec![EMPTY_VALUES],
            owned_bytes: 0,
            singleton: Vec::new(),
            subpaths: FxMap::default(),
        })
    })
}

/// Thread-local mirror of the global tables.  The entry and singleton tables
/// are append-only, so a prefix copy is forever consistent: a hit is a plain
/// array read, and a miss re-syncs the tail under the read lock.  `by_hash`
/// is this thread's private consing cache — content hash → candidate ids —
/// which answers repeat interning of already-stored content (the dominant
/// case: every duplicate rule firing re-derives an existing path) without
/// touching the lock at all.
struct Mirror {
    entries: Vec<&'static [Value]>,
    singleton: Vec<u32>,
    by_hash: FxMap<u64, Vec<u32>>,
    /// `(parent, start, end)` → id: this thread's subpath-cut cache.
    subpaths: FxMap<(u32, u32, u32), u32>,
    /// Segment-sequence hash → candidate ids: this thread's composition
    /// cache, so re-deriving `q2 · $y` with interned `$y` hashes two ids
    /// instead of the concatenated content (see [`crate::path::Segment`]).
    by_segments: FxMap<u64, Vec<u32>>,
}

const fn new_fx_map<K, V>() -> FxMap<K, V> {
    std::collections::HashMap::with_hasher(std::hash::BuildHasherDefault::new())
}

thread_local! {
    static MIRROR: RefCell<Mirror> = const {
        RefCell::new(Mirror {
            entries: Vec::new(),
            singleton: Vec::new(),
            by_hash: new_fx_map(),
            subpaths: new_fx_map(),
            by_segments: new_fx_map(),
        })
    };
}

/// Resolve an id through the mirror the caller already borrowed.
fn mirror_resolve(m: &mut Mirror, ix: usize) -> &'static [Value] {
    if ix >= m.entries.len() {
        let guard = store().read();
        let from = m.entries.len();
        m.entries.extend_from_slice(&guard.entries[from..]);
    }
    m.entries[ix]
}

/// Look `values` up in this thread's consing cache.  Lock-free on a hit;
/// candidate ids unseen by this thread's entry mirror trigger one tail
/// re-sync under the read lock.
fn tls_lookup(hash: u64, values: &[Value]) -> Option<PathId> {
    MIRROR.with(|m| {
        let mut m = m.borrow_mut();
        // Copy the (almost always single) candidate ids out so the map borrow
        // does not overlap the mirror re-sync below.
        let mut candidates = [0u32; 4];
        let n = {
            let ids = m.by_hash.get(&hash)?;
            let n = ids.len().min(candidates.len());
            candidates[..n].copy_from_slice(&ids[..n]);
            n
        };
        for &id in &candidates[..n] {
            if mirror_resolve(&mut m, id as usize) == values {
                return Some(PathId(id));
            }
        }
        None
    })
}

fn tls_record(hash: u64, id: PathId) {
    MIRROR.with(|m| {
        let mut m = m.borrow_mut();
        let ids = m.by_hash.entry(hash).or_default();
        if !ids.contains(&id.0) {
            ids.push(id.0);
        }
    });
}

/// The value slice of an interned path.
pub(crate) fn resolve(id: PathId) -> &'static [Value] {
    let ix = id.0 as usize;
    MIRROR.with(|m| mirror_resolve(&mut m.borrow_mut(), ix))
}

/// What the general interner is given to insert on a miss.
enum NewContent<'a> {
    /// An owned vector: leaked into the table on insert.
    Owned(Vec<Value>),
    /// A slice that already lives forever (a sub-slice of a stored path):
    /// stored as-is, no copy, no allocation.
    Static(&'static [Value]),
    /// A borrowed slice: copied only on a genuine miss.
    Borrowed(&'a [Value]),
}

impl NewContent<'_> {
    fn as_slice(&self) -> &[Value] {
        match self {
            NewContent::Owned(v) => v,
            NewContent::Static(s) => s,
            NewContent::Borrowed(s) => s,
        }
    }
}

/// Intern a value sequence, with the empty and singleton-atom fast paths and
/// the thread-local consing cache in front of the lock.
fn intern_content(content: NewContent<'_>) -> PathId {
    let slice = content.as_slice();
    match slice {
        [] => return PathId::EMPTY,
        [Value::Atom(a)] => return intern_singleton_atom(*a),
        _ => {}
    }
    let hash = fx_hash(slice);
    if let Some(id) = tls_lookup(hash, slice) {
        return id;
    }
    {
        let guard = store().read();
        if let Some(id) = find_by_content(&guard, hash, slice) {
            tls_record(hash, PathId(id));
            return PathId(id);
        }
    }
    let id = {
        let mut guard = store().write();
        if let Some(id) = find_by_content(&guard, hash, content.as_slice()) {
            PathId(id)
        } else {
            let stored: &'static [Value] = match content {
                NewContent::Owned(v) => {
                    guard.owned_bytes += v.len() * std::mem::size_of::<Value>();
                    Box::leak(v.into_boxed_slice())
                }
                NewContent::Static(s) => s,
                NewContent::Borrowed(s) => {
                    guard.owned_bytes += std::mem::size_of_val(s);
                    Box::leak(s.to_vec().into_boxed_slice())
                }
            };
            PathId(push_entry(&mut guard, hash, stored))
        }
    };
    tls_record(hash, id);
    id
}

/// The id under `hash` whose stored content equals `slice`, if any.
fn find_by_content(guard: &StoreInner, hash: u64, slice: &[Value]) -> Option<u32> {
    guard
        .by_content
        .get(&hash)?
        .iter()
        .copied()
        .find(|&id| guard.entries[id as usize] == slice)
}

fn push_entry(guard: &mut StoreInner, hash: u64, stored: &'static [Value]) -> u32 {
    let id = u32::try_from(guard.entries.len()).expect("path store overflow");
    guard.entries.push(stored);
    guard.by_content.entry(hash).or_default().push(id);
    id
}

/// Intern an owned value vector (the buffer is reused as the stored slice on
/// a miss, so building content exactly-sized costs one allocation total).
pub(crate) fn intern_vec(values: Vec<Value>) -> PathId {
    intern_content(NewContent::Owned(values))
}

/// Intern a slice that lives forever — a sub-slice of an already stored
/// path.  Never copies: on a miss the slice itself becomes the table entry,
/// which is what makes `subpath`/`subpaths` and the matcher's prefix
/// enumeration allocation-free.
pub(crate) fn intern_static(values: &'static [Value]) -> PathId {
    intern_content(NewContent::Static(values))
}

/// The id of `parent[start..end]` through the cut memo: a repeat cut hashes
/// three `u32`s instead of the slice content.  `slice` must be exactly
/// `resolve(parent)[start..end]`, nonempty and a proper sub-slice.
pub(crate) fn subpath_id(parent: PathId, start: u32, end: u32, slice: &'static [Value]) -> PathId {
    let key = (parent.0, start, end);
    let cached = MIRROR.with(|m| m.borrow().subpaths.get(&key).copied());
    if let Some(id) = cached {
        return PathId(id);
    }
    let id = {
        let hit = store().read().subpaths.get(&key).copied();
        match hit {
            Some(id) => PathId(id),
            None => {
                let id = intern_content(NewContent::Static(slice));
                store().write().subpaths.insert(key, id.0);
                id
            }
        }
    };
    MIRROR.with(|m| {
        m.borrow_mut().subpaths.insert(key, id.0);
    });
    id
}

/// One segment of a composed path: a single value or a whole interned path.
/// The composition memo keys on the segment *identities* (each one u32-sized),
/// so repeat compositions of interned pieces cost O(#segments), not
/// O(total content length).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Segment {
    /// One value.
    Value(Value),
    /// All values of an interned path, spliced in order.
    Path(PathId),
}

fn segment_hash(segments: &[Segment]) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::hash::FxHasher::default();
    for seg in segments {
        match seg {
            Segment::Value(Value::Atom(a)) => {
                h.write_u8(1);
                h.write_u32(a.symbol().index());
            }
            Segment::Value(Value::Packed(p)) => {
                h.write_u8(2);
                h.write_u32(p.id().0);
            }
            Segment::Path(p) => {
                h.write_u8(3);
                h.write_u32(p.0);
            }
        }
    }
    h.finish()
}

/// Does `content` equal the concatenation the segments denote?  Pure slice
/// compares — no hashing, no allocation.
fn segments_match(m: &mut Mirror, content: &[Value], segments: &[Segment]) -> bool {
    let mut off = 0usize;
    for seg in segments {
        match seg {
            Segment::Value(v) => {
                if content.get(off) != Some(v) {
                    return false;
                }
                off += 1;
            }
            Segment::Path(p) => {
                let vals = mirror_resolve(m, p.0 as usize);
                let end = off + vals.len();
                if content.len() < end || &content[off..end] != vals {
                    return false;
                }
                off = end;
            }
        }
    }
    off == content.len()
}

/// Intern the concatenation denoted by `segments`, through the thread-local
/// composition memo: a repeat composition hashes one `u32` per segment and
/// verifies by slice compares; only a genuinely new composition builds the
/// content and goes through full interning.
pub(crate) fn intern_segments(segments: &[Segment]) -> PathId {
    match segments {
        [] => return PathId::EMPTY,
        [Segment::Path(p)] => return *p,
        [Segment::Value(Value::Atom(a))] => return intern_singleton_atom(*a),
        _ => {}
    }
    let hash = segment_hash(segments);
    let hit = MIRROR.with(|m| {
        let mut m = m.borrow_mut();
        let mut candidates = [0u32; 4];
        let n = match m.by_segments.get(&hash) {
            Some(ids) => {
                let n = ids.len().min(candidates.len());
                candidates[..n].copy_from_slice(&ids[..n]);
                n
            }
            None => 0,
        };
        for &id in &candidates[..n] {
            let content = mirror_resolve(&mut m, id as usize);
            if segments_match(&mut m, content, segments) {
                return Some(PathId(id));
            }
        }
        None
    });
    if let Some(id) = hit {
        return id;
    }
    // Miss: build the content once and intern it (the buffer becomes the
    // stored slice if the content is new).
    let mut content = Vec::with_capacity(
        segments
            .iter()
            .map(|s| match s {
                Segment::Value(_) => 1,
                Segment::Path(p) => resolve(*p).len(),
            })
            .sum(),
    );
    for seg in segments {
        match seg {
            Segment::Value(v) => content.push(*v),
            Segment::Path(p) => content.extend_from_slice(resolve(*p)),
        }
    }
    let id = intern_content(NewContent::Owned(content));
    MIRROR.with(|m| {
        let mut m = m.borrow_mut();
        let ids = m.by_segments.entry(hash).or_default();
        if !ids.contains(&id.0) {
            ids.push(id.0);
        }
    });
    id
}

/// Intern a borrowed slice (copied only when genuinely new).
pub(crate) fn intern_slice(values: &[Value]) -> PathId {
    intern_content(NewContent::Borrowed(values))
}

/// Intern the singleton path holding one atom, through the dense memo table:
/// after the first touch of an atom, this is a thread-local array read.
pub(crate) fn intern_singleton_atom(a: AtomId) -> PathId {
    let ix = a.symbol().index() as usize;
    let cached = MIRROR.with(|m| {
        let m = m.borrow();
        m.singleton.get(ix).copied().unwrap_or(NO_ID)
    });
    if cached != NO_ID {
        return PathId(cached);
    }
    let id = {
        let guard = store().read();
        guard.singleton.get(ix).copied().unwrap_or(NO_ID)
    };
    let id = if id != NO_ID {
        id
    } else {
        let mut guard = store().write();
        match guard.singleton.get(ix).copied().filter(|&id| id != NO_ID) {
            Some(id) => id,
            None => {
                // The content may already be interned through the general path
                // (e.g. as a length-1 sub-slice); keep the consing invariant.
                let single = [Value::Atom(a)];
                let hash = fx_hash(&single[..]);
                let id = match find_by_content(&guard, hash, &single[..]) {
                    Some(id) => id,
                    None => {
                        guard.owned_bytes += std::mem::size_of::<Value>();
                        let stored: &'static [Value] = Box::leak(Box::new(single));
                        push_entry(&mut guard, hash, stored)
                    }
                };
                if guard.singleton.len() <= ix {
                    guard.singleton.resize(ix + 1, NO_ID);
                }
                guard.singleton[ix] = id;
                id
            }
        }
    };
    MIRROR.with(|m| {
        let mut m = m.borrow_mut();
        if m.singleton.len() <= ix {
            m.singleton.resize(ix + 1, NO_ID);
        }
        m.singleton[ix] = id;
    });
    PathId(id)
}

/// A snapshot of the global store's size, for memory-footprint reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of distinct paths interned (including `ε`).
    pub distinct_paths: usize,
    /// Bytes of leaked value storage owned by the store.  Shared sub-slices
    /// (subpaths of stored paths) contribute nothing: they alias their
    /// parent's storage.
    pub owned_bytes: usize,
    /// Approximate bytes of table overhead (entry table, consing map buckets,
    /// singleton memo).
    pub table_bytes: usize,
}

impl StoreStats {
    /// Total approximate footprint in bytes.
    pub fn total_bytes(&self) -> usize {
        self.owned_bytes + self.table_bytes
    }
}

/// Snapshot the global store's statistics.
pub fn store_stats() -> StoreStats {
    let guard = store().read();
    let slice_ref = std::mem::size_of::<&'static [Value]>();
    // Hash-map overhead estimated as key + value + one word of control per
    // bucket at the current capacity.
    let map_bytes = guard.by_content.capacity()
        * (std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u32>>() + 8)
        + guard.entries.len() * std::mem::size_of::<u32>();
    StoreStats {
        distinct_paths: guard.entries.len(),
        owned_bytes: guard.owned_bytes,
        table_bytes: guard.entries.capacity() * slice_ref
            + map_bytes
            + guard.singleton.capacity() * std::mem::size_of::<u32>()
            + guard.subpaths.capacity() * (4 * std::mem::size_of::<u32>() + 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;
    use crate::{atom, path_of};

    #[test]
    fn interning_is_idempotent_and_ids_are_identity() {
        let a = path_of(&["a", "b", "c"]);
        let b = path_of(&["a", "b", "c"]);
        let c = path_of(&["a", "b"]);
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_eq!(Path::empty().id(), PathId::EMPTY);
    }

    #[test]
    fn singleton_memo_agrees_with_general_interning() {
        let via_singleton = Path::singleton(Value::Atom(atom("memo_probe")));
        let via_general = Path::from_values([Value::Atom(atom("memo_probe"))]);
        assert_eq!(via_singleton.id(), via_general.id());
    }

    #[test]
    fn subslice_interning_shares_parent_storage() {
        let parent = path_of(&["s1", "s2", "s3", "s4"]);
        let sub = parent.subpath(1, 3);
        // The sub-slice aliases the parent's storage: same address range.
        let parent_range = parent.values().as_ptr_range();
        let sub_ptr = sub.values().as_ptr();
        assert!(parent_range.contains(&sub_ptr));
        // And it is the same id as interning the content from scratch.
        assert_eq!(sub, path_of(&["s2", "s3"]));
    }

    #[test]
    fn store_stats_grow_with_new_content() {
        let before = store_stats();
        let _ = path_of(&["stats_x", "stats_y", "stats_z"]);
        let after = store_stats();
        assert!(after.distinct_paths > before.distinct_paths);
        assert!(after.owned_bytes > before.owned_bytes);
        assert!(after.total_bytes() >= after.owned_bytes);
    }

    #[test]
    fn concurrent_interning_yields_one_id_per_content() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| path_of(&["cc", &format!("v{}", i % 10), &format!("t{}", t % 2)]))
                        .collect::<Vec<Path>>()
                })
            })
            .collect();
        let results: Vec<Vec<Path>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Threads with the same t % 2 interned equal contents and, because
        // path equality is id equality, must agree on every id.
        assert_eq!(results[0], results[2]);
        assert_eq!(results[1], results[3]);
    }
}
