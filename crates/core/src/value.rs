//! Values: atomic values and packed values (Section 2.1).
//!
//! The paper defines values and paths by mutual induction:
//!
//! 1. every atomic value is a value;
//! 2. every finite sequence of values is a path (`ε` is the empty path);
//! 3. if `p` is a path then `⟨p⟩` is a *packed value*;
//! 4. every packed value is a value.
//!
//! [`Value`] is the value type; [`crate::Path`] is the path type.

use crate::interner::AtomId;
use crate::path::Path;
use std::fmt;

/// A value: an atomic value or a packed path `⟨p⟩`.
///
/// Both variants wrap an interned `u32` identity — an [`AtomId`] symbol or a
/// hash-consed [`Path`] id — so a `Value` is eight bytes, `Copy`, and compares
/// and hashes in O(1) even when the packed payload is arbitrarily deep.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An atomic value from **dom**.
    Atom(AtomId),
    /// A packed value `⟨p⟩`, wrapping a path and treating it as a single value.
    Packed(Path),
}

impl Value {
    /// Intern and wrap an atomic value by name.
    pub fn atom(name: &str) -> Value {
        Value::Atom(AtomId::new(name))
    }

    /// Pack a path into a packed value.
    pub fn packed(path: Path) -> Value {
        Value::Packed(path)
    }

    /// Is this an atomic value?
    pub fn is_atom(&self) -> bool {
        matches!(self, Value::Atom(_))
    }

    /// Is this a packed value?
    pub fn is_packed(&self) -> bool {
        matches!(self, Value::Packed(_))
    }

    /// The atom, if this value is atomic.
    pub fn as_atom(&self) -> Option<AtomId> {
        match self {
            Value::Atom(a) => Some(*a),
            Value::Packed(_) => None,
        }
    }

    /// The packed path, if this value is packed.
    pub fn as_packed(&self) -> Option<&Path> {
        match self {
            Value::Atom(_) => None,
            Value::Packed(p) => Some(p),
        }
    }

    /// Packing depth: 0 for atoms, `1 + depth(p)` for `⟨p⟩`.
    ///
    /// ```
    /// use seqdl_core::{Value, Path, path_of};
    /// assert_eq!(Value::atom("a").packing_depth(), 0);
    /// let packed = Value::packed(path_of(&["a", "b"]));
    /// assert_eq!(packed.packing_depth(), 1);
    /// let nested = Value::packed(Path::from_values([packed]));
    /// assert_eq!(nested.packing_depth(), 2);
    /// ```
    pub fn packing_depth(&self) -> usize {
        match self {
            Value::Atom(_) => 0,
            Value::Packed(p) => 1 + p.packing_depth(),
        }
    }

    /// Total number of atomic-value occurrences, at any packing depth.
    pub fn atom_count(&self) -> usize {
        match self {
            Value::Atom(_) => 1,
            Value::Packed(p) => p.atom_count(),
        }
    }

    /// Render with an explicit quoting convention (used by [`fmt::Display`]).
    ///
    /// Atom names consisting of ASCII alphanumerics and `_` are printed bare; any
    /// other atom name is printed single-quoted so that the output can be re-parsed.
    pub(crate) fn fmt_into(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Atom(a) => a.symbol().with_name(|name| {
                let bare = !name.is_empty()
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    && name != "eps";
                if bare {
                    f.write_str(name)
                } else {
                    write!(f, "'{}'", name.replace('\'', "\\'"))
                }
            }),
            Value::Packed(p) => {
                write!(f, "<{p}>")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_into(f)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<AtomId> for Value {
    fn from(a: AtomId) -> Self {
        Value::Atom(a)
    }
}

impl From<Path> for Value {
    fn from(p: Path) -> Self {
        Value::packed(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, path_of};

    #[test]
    fn atoms_and_packed_values_are_distinguished() {
        let a = Value::atom("a");
        let packed = Value::packed(path_of(&["a"]));
        assert!(a.is_atom());
        assert!(!a.is_packed());
        assert!(packed.is_packed());
        assert!(!packed.is_atom());
        assert_ne!(a, packed);
        assert_eq!(a.as_atom(), Some(atom("a")));
        assert_eq!(packed.as_packed(), Some(&path_of(&["a"])));
        assert_eq!(a.as_packed(), None);
        assert_eq!(packed.as_atom(), None);
    }

    #[test]
    fn packing_depth_counts_nesting() {
        let flat = Value::atom("c");
        assert_eq!(flat.packing_depth(), 0);
        let one = Value::packed(path_of(&["a", "b", "a"]));
        assert_eq!(one.packing_depth(), 1);
        let two = Value::packed(Path::from_values([one, flat]));
        assert_eq!(two.packing_depth(), 2);
        assert_eq!(two.atom_count(), 4);
    }

    #[test]
    fn display_matches_paper_notation() {
        // c · ⟨a·b·a⟩ is the paper's example of a path containing a packed value.
        let packed = Value::packed(path_of(&["a", "b", "a"]));
        assert_eq!(packed.to_string(), "<a·b·a>");
        let odd = Value::atom("complete order");
        assert_eq!(odd.to_string(), "'complete order'");
        // The reserved word `eps` (empty path literal in the parser) must be quoted.
        assert_eq!(Value::atom("eps").to_string(), "'eps'");
    }

    #[test]
    fn conversions_from_atoms_and_paths() {
        let v: Value = atom("z").into();
        assert!(v.is_atom());
        let v: Value = path_of(&["z"]).into();
        assert!(v.is_packed());
    }
}
