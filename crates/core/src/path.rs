//! Paths: finite sequences of values, with associative concatenation (Section 2.1).

use crate::interner::AtomId;
use crate::store::{self, PathId, Segment};
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;
use std::ops::Index;

/// A path: a finite sequence of [`Value`]s.  The empty path is `ε`.
///
/// Concatenation (`·`) is associative; [`Path::concat`] and the [`Extend`] /
/// [`FromIterator`] implementations all preserve that reading.  A value `v` is
/// identified with the length-1 path `v` (see [`Path::singleton`]), which is how
/// classical relational instances embed into sequence databases.
///
/// Representation: a path is a hash-consed [`PathId`] into the global
/// [`crate::store`] — four bytes, `Copy`, with equality and hashing on the id
/// (valid because the store holds each content exactly once).  The value
/// sequence itself is the shared `&'static [Value]` returned by
/// [`Path::values`].  Ordering remains *content* ordering (lexicographic over
/// values), so sorted snapshots and `BTreeSet<Path>` orders are independent of
/// interning order and therefore deterministic across runs and thread counts.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Path(PathId);

impl Path {
    /// The empty path `ε`.
    pub const fn empty() -> Path {
        Path(PathId::EMPTY)
    }

    /// A one-element path holding `value`.
    pub fn singleton(value: Value) -> Path {
        match value {
            Value::Atom(a) => Path(store::intern_singleton_atom(a)),
            packed => Path(store::intern_vec(vec![packed])),
        }
    }

    /// Build a path from any sequence of values.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Path {
        Path(store::intern_vec(values.into_iter().collect()))
    }

    /// Build a path from a borrowed value slice (copied only if the content is
    /// new to the store).
    pub fn from_slice(values: &[Value]) -> Path {
        Path(store::intern_slice(values))
    }

    /// Build a path from a slice that lives forever — typically a sub-slice of
    /// another path's [`Path::values`].  Never copies the values: on a store
    /// miss the slice itself becomes the stored content.
    pub fn from_static(values: &'static [Value]) -> Path {
        Path(store::intern_static(values))
    }

    /// Build a flat path from atoms.
    pub fn from_atoms(atoms: impl IntoIterator<Item = AtomId>) -> Path {
        Path::from_values(atoms.into_iter().map(Value::Atom))
    }

    /// The interned identity of this path (equal ids ⇔ equal paths).
    pub fn id(&self) -> PathId {
        self.0
    }

    /// Number of values in the path (`|p|`).
    pub fn len(&self) -> usize {
        self.values().len()
    }

    /// Is this the empty path `ε`?
    pub fn is_empty(&self) -> bool {
        self.0 == PathId::EMPTY
    }

    /// The values of the path, in order.  The slice is shared storage owned by
    /// the global store, hence the `'static` lifetime.
    pub fn values(&self) -> &'static [Value] {
        store::resolve(self.0)
    }

    /// Iterate over the values of the path.
    pub fn iter(&self) -> std::slice::Iter<'static, Value> {
        self.values().iter()
    }

    /// Concatenation `self · other`.  A repeat concatenation of the same two
    /// interned operands resolves through the composition memo by hashing the
    /// two ids — the content is neither copied nor re-hashed.
    pub fn concat(&self, other: &Path) -> Path {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Path::from_segments(&[Segment::Path(self.0), Segment::Path(other.0)])
    }

    /// Build the path denoted by a segment sequence (single values and whole
    /// interned paths, spliced in order), through the thread-local
    /// composition memo: repeat compositions hash one `u32` per segment and
    /// never rebuild the content.  This is how evaluation grounds rule heads.
    pub fn from_segments(segments: &[Segment]) -> Path {
        Path(store::intern_segments(segments))
    }

    /// This path as a [`Segment`] for [`Path::from_segments`].
    pub fn as_segment(&self) -> Segment {
        Segment::Path(self.0)
    }

    /// Append a single value, re-interning.  This is O(len); callers building
    /// a path value by value should collect into a `Vec<Value>` and intern
    /// once via [`Path::from_values`].
    pub fn push(&mut self, value: Value) {
        let mut out = Vec::with_capacity(self.len() + 1);
        out.extend_from_slice(self.values());
        out.push(value);
        *self = Path(store::intern_vec(out));
    }

    /// The contiguous subpath `p[start..end]` (half-open), as its own path.
    /// Zero-copy: the subpath shares the parent's stored values, and a repeat
    /// cut of the same path resolves through an O(1) `(id, start, end)` memo
    /// without re-hashing the content.
    ///
    /// # Panics
    /// Panics if the range is out of bounds (mirrors slice indexing).
    pub fn subpath(&self, start: usize, end: usize) -> Path {
        let values = self.values();
        let slice = &values[start..end];
        if slice.len() == values.len() {
            return *self;
        }
        if slice.is_empty() {
            return Path::empty();
        }
        Path(store::subpath_id(self.0, start as u32, end as u32, slice))
    }

    /// Iterate over all contiguous subpaths (substrings) of this path,
    /// including `ε` (reported exactly once, first) and the path itself.
    /// This is the semantics of the `SUB` operator of Section 7.
    ///
    /// Each yielded path is backed by a shared sub-slice of this path's
    /// storage: the iterator allocates nothing per item beyond first-time
    /// interning of a genuinely new subpath id.
    pub fn subpaths(&self) -> Subpaths {
        Subpaths {
            parent: *self,
            values: self.values(),
            start: 0,
            end: 0,
            emitted_empty: false,
        }
    }

    /// All contiguous subpaths, collected ([`Path::subpaths`] is the
    /// allocation-free iterator form).
    pub fn substrings(&self) -> Vec<Path> {
        self.subpaths().collect()
    }

    /// Does `needle` occur as a contiguous subpath of `self`?
    pub fn contains_subpath(&self, needle: &Path) -> bool {
        if needle.is_empty() {
            return true;
        }
        if needle.len() > self.len() {
            return false;
        }
        let needle = needle.values();
        self.values().windows(needle.len()).any(|w| w == needle)
    }

    /// A path is *flat* if it contains no packed values at any depth (Section 3.1
    /// restricts query inputs and outputs to flat instances).
    pub fn is_flat(&self) -> bool {
        self.values().iter().all(|v| !v.is_packed())
    }

    /// Maximum packing depth over the values of the path (0 for flat paths).
    pub fn packing_depth(&self) -> usize {
        self.values()
            .iter()
            .map(Value::packing_depth)
            .max()
            .unwrap_or(0)
    }

    /// Total number of atomic-value occurrences at any depth.
    pub fn atom_count(&self) -> usize {
        self.values().iter().map(Value::atom_count).sum()
    }

    /// Reverse the path (used by the reversal example, Example 4.3).
    pub fn reversed(&self) -> Path {
        Path::from_values(self.values().iter().rev().copied())
    }

    /// The *doubled* version `k1·k1·k2·k2·…·kn·kn` of the path, as used by the
    /// doubling step in the proof of Theorem 4.15.
    pub fn doubled(&self) -> Path {
        Path::from_values(self.values().iter().flat_map(|v| [*v, *v]))
    }

    /// Invert [`Path::doubled`]: returns `None` if the path is not a doubled path.
    pub fn undoubled(&self) -> Option<Path> {
        if !self.len().is_multiple_of(2) {
            return None;
        }
        let mut out = Vec::with_capacity(self.len() / 2);
        for pair in self.values().chunks(2) {
            if pair[0] != pair[1] {
                return None;
            }
            out.push(pair[0]);
        }
        Some(Path::from_values(out))
    }
}

/// An *unregistered* view `parent[start..end]` of an interned path: a
/// contiguous slice of the parent's shared storage that is **not** itself
/// interned in the global store.
///
/// The backtracking matcher enumerates O(L) candidate cuts per path variable
/// (O(L²) for adjacent variables) and almost all of them are rejected by a
/// later literal.  Registering every candidate made the store grow with the
/// number of *attempted* matches rather than the number of *derived* facts —
/// the "growth caveat" of [`crate::store`].  A `PathView` defers interning:
/// bindings hold views, all comparisons during matching run over the value
/// slice, and only the cuts that survive to fact emission (or equation
/// grounding) are interned via [`PathView::to_path`].
///
/// Equality, hashing, and ordering are over the *content* (the value
/// sequence), with an O(1) fast path when two views share a parent and range,
/// so views of equal content behave identically no matter how they were cut.
#[derive(Clone, Copy)]
pub struct PathView {
    parent: Path,
    start: u32,
    end: u32,
}

impl PathView {
    /// The view `parent[start..end]` (half-open).  No interning happens.
    ///
    /// # Panics
    /// Panics if the range is out of bounds (mirrors slice indexing).
    pub fn cut(parent: Path, start: usize, end: usize) -> PathView {
        // Validate the range eagerly so `values()` cannot panic later.
        let _ = &parent.values()[start..end];
        PathView {
            parent,
            start: start as u32,
            end: end as u32,
        }
    }

    /// The values of the view, in order — a sub-slice of the parent's shared
    /// storage, so no allocation or interning.
    pub fn values(&self) -> &'static [Value] {
        &self.parent.values()[self.start as usize..self.end as usize]
    }

    /// Number of values in the view.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The interned path with this view's content.  This is the *only* point
    /// where a view touches the store: full-range views resolve to the parent
    /// in O(1), empty views to `ε`, and proper cuts go through the
    /// `(id, start, end)` subpath memo.
    pub fn to_path(&self) -> Path {
        self.parent.subpath(self.start as usize, self.end as usize)
    }

    /// This view as a [`Segment`] for [`Path::from_segments`]; interns the
    /// content (views are registered exactly when they reach an emission).
    pub fn as_segment(&self) -> Segment {
        self.to_path().as_segment()
    }

    /// The interned parent path this view cuts into.
    pub fn parent(&self) -> Path {
        self.parent
    }

    /// The `(start, end)` range of the view within its parent.
    pub fn range(&self) -> (usize, usize) {
        (self.start as usize, self.end as usize)
    }
}

/// A whole interned path, viewed (no cut, no store traffic).
impl From<Path> for PathView {
    fn from(parent: Path) -> PathView {
        let len = parent.len() as u32;
        PathView {
            parent,
            start: 0,
            end: len,
        }
    }
}

impl PartialEq for PathView {
    fn eq(&self, other: &PathView) -> bool {
        if self.parent.id() == other.parent.id()
            && self.start == other.start
            && self.end == other.end
        {
            return true;
        }
        self.values() == other.values()
    }
}

impl Eq for PathView {}

impl std::hash::Hash for PathView {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Content hashing, consistent with content equality.
        self.values().hash(state);
    }
}

/// Content ordering, consistent with [`Path`]'s content ordering.
impl Ord for PathView {
    fn cmp(&self, other: &PathView) -> Ordering {
        if self.parent.id() == other.parent.id()
            && self.start == other.start
            && self.end == other.end
        {
            return Ordering::Equal;
        }
        self.values().cmp(other.values())
    }
}

impl PartialOrd for PathView {
    fn partial_cmp(&self, other: &PathView) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for PathView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let values = self.values();
        if values.is_empty() {
            return f.write_str("eps");
        }
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                f.write_str("·")?;
            }
            v.fmt_into(f)?;
        }
        Ok(())
    }
}

impl fmt::Debug for PathView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Iterator over the contiguous subpaths of a path; see [`Path::subpaths`].
#[derive(Clone, Debug)]
pub struct Subpaths {
    parent: Path,
    values: &'static [Value],
    start: usize,
    end: usize,
    emitted_empty: bool,
}

impl Iterator for Subpaths {
    type Item = Path;

    fn next(&mut self) -> Option<Path> {
        if !self.emitted_empty {
            self.emitted_empty = true;
            return Some(Path::empty());
        }
        if self.end < self.values.len() {
            self.end += 1;
        } else if self.start + 1 < self.values.len() {
            self.start += 1;
            self.end = self.start + 1;
        } else {
            return None;
        }
        Some(self.parent.subpath(self.start, self.end))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.values.len();
        let total = n * (n + 1) / 2 + 1;
        let done = if !self.emitted_empty {
            0
        } else {
            // Subpaths emitted so far: all with earlier starts, plus this start's.
            1 + (0..self.start).map(|s| n - s).sum::<usize>() + (self.end - self.start)
        };
        (total - done, Some(total - done))
    }
}

impl ExactSizeIterator for Subpaths {}

impl Default for Path {
    fn default() -> Path {
        Path::empty()
    }
}

/// Content ordering (lexicographic over values), *not* id ordering: sorted
/// output is deterministic regardless of interning order.  Consistent with
/// `Eq` because equal content implies equal id.
impl Ord for Path {
    fn cmp(&self, other: &Path) -> Ordering {
        if self.0 == other.0 {
            return Ordering::Equal;
        }
        self.values().cmp(other.values())
    }
}

impl PartialOrd for Path {
    fn partial_cmp(&self, other: &Path) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Index<usize> for Path {
    type Output = Value;
    fn index(&self, ix: usize) -> &Value {
        &self.values()[ix]
    }
}

impl FromIterator<Value> for Path {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Path::from_values(iter)
    }
}

impl Extend<Value> for Path {
    fn extend<T: IntoIterator<Item = Value>>(&mut self, iter: T) {
        let mut out = self.values().to_vec();
        out.extend(iter);
        *self = Path(store::intern_vec(out));
    }
}

impl IntoIterator for Path {
    type Item = Value;
    type IntoIter = std::iter::Copied<std::slice::Iter<'static, Value>>;
    fn into_iter(self) -> Self::IntoIter {
        self.values().iter().copied()
    }
}

impl<'a> IntoIterator for &'a Path {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.values().iter()
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("eps");
        }
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                f.write_str("·")?;
            }
            v.fmt_into(f)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, path_of, repeat_path};

    #[test]
    fn empty_path_properties() {
        let e = Path::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(e.is_flat());
        assert_eq!(e.to_string(), "eps");
        assert_eq!(e.substrings(), vec![Path::empty()]);
        assert_eq!(e.reversed(), e);
        assert_eq!(e.doubled(), e);
        assert_eq!(Path::default(), e);
    }

    #[test]
    fn concatenation_is_associative() {
        let p = path_of(&["a", "b"]);
        let q = path_of(&["c"]);
        let r = path_of(&["d", "e"]);
        assert_eq!(p.concat(&q).concat(&r), p.concat(&q.concat(&r)));
        assert_eq!(p.concat(&Path::empty()), p);
        assert_eq!(Path::empty().concat(&p), p);
    }

    #[test]
    fn hash_consing_makes_equality_id_equality() {
        let p = path_of(&["a", "b", "c"]);
        let q = path_of(&["a"]).concat(&path_of(&["b", "c"]));
        assert_eq!(p, q);
        assert_eq!(p.id(), q.id());
        // Distinct contents get distinct ids.
        assert_ne!(p.id(), path_of(&["a", "b"]).id());
    }

    #[test]
    fn substrings_enumerates_all_contiguous_subpaths() {
        let p = path_of(&["a", "b", "c"]);
        let subs = p.substrings();
        // ε plus 3 + 2 + 1 nonempty substrings.
        assert_eq!(subs.len(), 7);
        assert!(subs.contains(&Path::empty()));
        assert!(subs.contains(&path_of(&["a"])));
        assert!(subs.contains(&path_of(&["b", "c"])));
        assert!(subs.contains(&p));
        assert!(!subs.contains(&path_of(&["a", "c"])));
    }

    #[test]
    fn subpaths_iterator_is_exact_sized_and_shares_storage() {
        let p = path_of(&["sp1", "sp2", "sp3", "sp4"]);
        let it = p.subpaths();
        assert_eq!(it.len(), 4 * 5 / 2 + 1);
        assert_eq!(it.clone().count(), it.len());
        let range = p.values().as_ptr_range();
        for sub in p.subpaths().filter(|s| s.len() >= 2 && s.len() < p.len()) {
            // Multi-value proper subpaths are interned as shared sub-slices of
            // the parent's storage (singletons go through the per-atom memo,
            // which owns its own copy).
            assert!(range.contains(&sub.values().as_ptr()), "{sub} not shared");
        }
        // Mid-iteration size hints stay exact.
        let mut it = p.subpaths();
        for remaining in (0..=it.len()).rev() {
            assert_eq!(it.len(), remaining);
            if remaining > 0 {
                it.next().unwrap();
            }
        }
        assert_eq!(it.next(), None);
    }

    #[test]
    fn contains_subpath_is_contiguous_containment() {
        let p = path_of(&["a", "b", "a", "c"]);
        assert!(p.contains_subpath(&Path::empty()));
        assert!(p.contains_subpath(&path_of(&["b", "a"])));
        assert!(p.contains_subpath(&p));
        assert!(!p.contains_subpath(&path_of(&["a", "a"])));
        assert!(!p.contains_subpath(&path_of(&["a", "b", "a", "c", "d"])));
    }

    #[test]
    fn flatness_and_packing_depth() {
        let flat = path_of(&["a", "b"]);
        assert!(flat.is_flat());
        assert_eq!(flat.packing_depth(), 0);

        // c · ⟨a·b·a⟩, the paper's example path with packing.
        let mixed = Path::from_values([Value::atom("c"), Value::packed(path_of(&["a", "b", "a"]))]);
        assert!(!mixed.is_flat());
        assert_eq!(mixed.packing_depth(), 1);
        assert_eq!(mixed.atom_count(), 4);
        assert_eq!(mixed.to_string(), "c·<a·b·a>");
    }

    #[test]
    fn doubling_round_trips() {
        let p = path_of(&["k1", "k2", "k3"]);
        let d = p.doubled();
        assert_eq!(d.len(), 6);
        assert_eq!(d.to_string(), "k1·k1·k2·k2·k3·k3");
        assert_eq!(d.undoubled(), Some(p));
        // Non-doubled paths are rejected.
        assert_eq!(path_of(&["a", "b"]).undoubled(), None);
        assert_eq!(path_of(&["a"]).undoubled(), None);
        assert_eq!(Path::empty().undoubled(), Some(Path::empty()));
    }

    #[test]
    fn reversal_and_indexing() {
        let p = path_of(&["x", "y", "z"]);
        assert_eq!(p.reversed(), path_of(&["z", "y", "x"]));
        assert_eq!(p[0], Value::Atom(atom("x")));
        assert_eq!(p[2], Value::Atom(atom("z")));
    }

    #[test]
    fn ordering_is_content_lexicographic() {
        // Intern in an order deliberately at odds with content order.
        let zb = path_of(&["zz_order", "b"]);
        let za = path_of(&["zz_order", "a"]);
        let z = path_of(&["zz_order"]);
        assert!(z < za, "prefix sorts first");
        assert!(za < zb, "lexicographic on the last value");
        assert!(Path::empty() < z);
        let mut v = vec![zb, z, za, Path::empty()];
        v.sort();
        assert_eq!(v, vec![Path::empty(), z, za, zb]);
    }

    #[test]
    fn repeat_path_builds_a_powers() {
        let p = repeat_path("a", 4);
        assert_eq!(p.to_string(), "a·a·a·a");
        assert!(p.iter().all(|v| v.as_atom() == Some(atom("a"))));
    }

    #[test]
    fn path_views_defer_interning_until_to_path() {
        // A unique long parent: enumerating all O(L²) cuts as views must not
        // grow the store with them.  (Other tests share the global store, so
        // the assertion is a slack bound, not exact equality.)
        let p = repeat_path("pview", 64);
        let before = crate::store_stats().distinct_paths;
        let views: Vec<PathView> = (0..=p.len())
            .flat_map(|i| (i..=p.len()).map(move |j| (i, j)))
            .map(|(i, j)| PathView::cut(p, i, j))
            .collect();
        assert!(views.len() > 2000);
        // Cutting, reading, comparing, and hashing views registers nothing.
        for v in &views {
            assert_eq!(v.len(), v.values().len());
            let _ = format!("{v}");
        }
        let grown = crate::store_stats().distinct_paths - before;
        assert!(grown < 50, "views interned {grown} paths");
        // Content equality across distinct parents and ranges.
        let q = path_of(&["zz", "pview", "pview"]);
        assert_eq!(PathView::cut(p, 1, 3), PathView::cut(q, 1, 3));
        assert_ne!(PathView::cut(p, 0, 2), PathView::cut(q, 0, 2));
        // Full-range and empty views resolve to existing interned paths.
        assert_eq!(PathView::from(p).to_path(), p);
        assert_eq!(PathView::cut(p, 2, 2).to_path(), Path::empty());
        // Proper cuts intern on demand and agree with subpath.
        assert_eq!(PathView::cut(p, 1, 3).to_path(), p.subpath(1, 3));
    }

    #[test]
    fn path_view_ordering_matches_content() {
        let p = path_of(&["m", "a", "b"]);
        let q = path_of(&["a", "b", "z"]);
        let va = PathView::cut(p, 1, 3); // a·b
        let vb = PathView::cut(q, 0, 2); // a·b
        assert_eq!(va.cmp(&vb), std::cmp::Ordering::Equal);
        assert!(PathView::cut(p, 1, 2) < va, "prefix sorts first");
        assert!(va < PathView::cut(q, 0, 3));
        assert_eq!(va.to_path().to_string(), format!("{va}"));
    }

    #[test]
    fn from_iterator_extend_and_push() {
        let mut p: Path = [Value::atom("a"), Value::atom("b")].into_iter().collect();
        p.extend([Value::atom("c")]);
        assert_eq!(p, path_of(&["a", "b", "c"]));
        p.push(Value::atom("d"));
        assert_eq!(p, path_of(&["a", "b", "c", "d"]));
        let collected: Vec<&Value> = (&p).into_iter().collect();
        assert_eq!(collected.len(), 4);
        let owned: Vec<Value> = p.into_iter().collect();
        assert_eq!(owned.len(), 4);
    }
}
