//! Paths: finite sequences of values, with associative concatenation (Section 2.1).

use crate::interner::AtomId;
use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// A path: a finite sequence of [`Value`]s.  The empty path is `ε`.
///
/// Concatenation (`·`) is associative; [`Path::concat`] and the [`Extend`] /
/// [`FromIterator`] implementations all preserve that reading.  A value `v` is
/// identified with the length-1 path `v` (see [`Path::singleton`]), which is how
/// classical relational instances embed into sequence databases.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Path(Vec<Value>);

impl Path {
    /// The empty path `ε`.
    pub fn empty() -> Path {
        Path(Vec::new())
    }

    /// A one-element path holding `value`.
    pub fn singleton(value: Value) -> Path {
        Path(vec![value])
    }

    /// Build a path from any sequence of values.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Path {
        Path(values.into_iter().collect())
    }

    /// Build a flat path from atoms.
    pub fn from_atoms(atoms: impl IntoIterator<Item = AtomId>) -> Path {
        Path(atoms.into_iter().map(Value::Atom).collect())
    }

    /// Number of values in the path (`|p|`).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is this the empty path `ε`?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The values of the path, in order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Iterate over the values of the path.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }

    /// Concatenation `self · other`.
    pub fn concat(&self, other: &Path) -> Path {
        let mut out = Vec::with_capacity(self.len() + other.len());
        out.extend_from_slice(&self.0);
        out.extend_from_slice(&other.0);
        Path(out)
    }

    /// Append a single value in place.
    pub fn push(&mut self, value: Value) {
        self.0.push(value);
    }

    /// The contiguous subpath `p[start..end]` (half-open), as its own path.
    ///
    /// # Panics
    /// Panics if the range is out of bounds (mirrors slice indexing).
    pub fn subpath(&self, start: usize, end: usize) -> Path {
        Path(self.0[start..end].to_vec())
    }

    /// All contiguous subpaths (substrings) of this path, including `ε` and the path
    /// itself.  This is the semantics of the `SUB` operator of Section 7.
    ///
    /// The empty path is reported exactly once.
    pub fn substrings(&self) -> Vec<Path> {
        let mut out = vec![Path::empty()];
        for start in 0..self.len() {
            for end in (start + 1)..=self.len() {
                out.push(self.subpath(start, end));
            }
        }
        out
    }

    /// Does `needle` occur as a contiguous subpath of `self`?
    pub fn contains_subpath(&self, needle: &Path) -> bool {
        if needle.is_empty() {
            return true;
        }
        if needle.len() > self.len() {
            return false;
        }
        self.0.windows(needle.len()).any(|w| w == needle.values())
    }

    /// A path is *flat* if it contains no packed values at any depth (Section 3.1
    /// restricts query inputs and outputs to flat instances).
    pub fn is_flat(&self) -> bool {
        self.0.iter().all(|v| !v.is_packed())
    }

    /// Maximum packing depth over the values of the path (0 for flat paths).
    pub fn packing_depth(&self) -> usize {
        self.0.iter().map(Value::packing_depth).max().unwrap_or(0)
    }

    /// Total number of atomic-value occurrences at any depth.
    pub fn atom_count(&self) -> usize {
        self.0.iter().map(Value::atom_count).sum()
    }

    /// Reverse the path (used by the reversal example, Example 4.3).
    pub fn reversed(&self) -> Path {
        Path(self.0.iter().rev().cloned().collect())
    }

    /// The *doubled* version `k1·k1·k2·k2·…·kn·kn` of the path, as used by the
    /// doubling step in the proof of Theorem 4.15.
    pub fn doubled(&self) -> Path {
        Path(self.0.iter().flat_map(|v| [v.clone(), v.clone()]).collect())
    }

    /// Invert [`Path::doubled`]: returns `None` if the path is not a doubled path.
    pub fn undoubled(&self) -> Option<Path> {
        if self.len() % 2 != 0 {
            return None;
        }
        let mut out = Vec::with_capacity(self.len() / 2);
        for pair in self.0.chunks(2) {
            if pair[0] != pair[1] {
                return None;
            }
            out.push(pair[0].clone());
        }
        Some(Path(out))
    }
}

impl Index<usize> for Path {
    type Output = Value;
    fn index(&self, ix: usize) -> &Value {
        &self.0[ix]
    }
}

impl FromIterator<Value> for Path {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Path(iter.into_iter().collect())
    }
}

impl Extend<Value> for Path {
    fn extend<T: IntoIterator<Item = Value>>(&mut self, iter: T) {
        self.0.extend(iter);
    }
}

impl IntoIterator for Path {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Path {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("eps");
        }
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str("·")?;
            }
            v.fmt_into(f)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, path_of, repeat_path};

    #[test]
    fn empty_path_properties() {
        let e = Path::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(e.is_flat());
        assert_eq!(e.to_string(), "eps");
        assert_eq!(e.substrings(), vec![Path::empty()]);
        assert_eq!(e.reversed(), e);
        assert_eq!(e.doubled(), e);
    }

    #[test]
    fn concatenation_is_associative() {
        let p = path_of(&["a", "b"]);
        let q = path_of(&["c"]);
        let r = path_of(&["d", "e"]);
        assert_eq!(p.concat(&q).concat(&r), p.concat(&q.concat(&r)));
        assert_eq!(p.concat(&Path::empty()), p);
        assert_eq!(Path::empty().concat(&p), p);
    }

    #[test]
    fn substrings_enumerates_all_contiguous_subpaths() {
        let p = path_of(&["a", "b", "c"]);
        let subs = p.substrings();
        // ε plus 3 + 2 + 1 nonempty substrings.
        assert_eq!(subs.len(), 7);
        assert!(subs.contains(&Path::empty()));
        assert!(subs.contains(&path_of(&["a"])));
        assert!(subs.contains(&path_of(&["b", "c"])));
        assert!(subs.contains(&p));
        assert!(!subs.contains(&path_of(&["a", "c"])));
    }

    #[test]
    fn contains_subpath_is_contiguous_containment() {
        let p = path_of(&["a", "b", "a", "c"]);
        assert!(p.contains_subpath(&Path::empty()));
        assert!(p.contains_subpath(&path_of(&["b", "a"])));
        assert!(p.contains_subpath(&p));
        assert!(!p.contains_subpath(&path_of(&["a", "a"])));
        assert!(!p.contains_subpath(&path_of(&["a", "b", "a", "c", "d"])));
    }

    #[test]
    fn flatness_and_packing_depth() {
        let flat = path_of(&["a", "b"]);
        assert!(flat.is_flat());
        assert_eq!(flat.packing_depth(), 0);

        // c · ⟨a·b·a⟩, the paper's example path with packing.
        let mixed = Path::from_values([Value::atom("c"), Value::packed(path_of(&["a", "b", "a"]))]);
        assert!(!mixed.is_flat());
        assert_eq!(mixed.packing_depth(), 1);
        assert_eq!(mixed.atom_count(), 4);
        assert_eq!(mixed.to_string(), "c·<a·b·a>");
    }

    #[test]
    fn doubling_round_trips() {
        let p = path_of(&["k1", "k2", "k3"]);
        let d = p.doubled();
        assert_eq!(d.len(), 6);
        assert_eq!(d.to_string(), "k1·k1·k2·k2·k3·k3");
        assert_eq!(d.undoubled(), Some(p.clone()));
        // Non-doubled paths are rejected.
        assert_eq!(path_of(&["a", "b"]).undoubled(), None);
        assert_eq!(path_of(&["a"]).undoubled(), None);
        assert_eq!(Path::empty().undoubled(), Some(Path::empty()));
    }

    #[test]
    fn reversal_and_indexing() {
        let p = path_of(&["x", "y", "z"]);
        assert_eq!(p.reversed(), path_of(&["z", "y", "x"]));
        assert_eq!(p[0], Value::Atom(atom("x")));
        assert_eq!(p[2], Value::Atom(atom("z")));
    }

    #[test]
    fn repeat_path_builds_a_powers() {
        let p = repeat_path("a", 4);
        assert_eq!(p.to_string(), "a·a·a·a");
        assert!(p.iter().all(|v| v.as_atom() == Some(atom("a"))));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut p: Path = [Value::atom("a"), Value::atom("b")].into_iter().collect();
        p.extend([Value::atom("c")]);
        assert_eq!(p, path_of(&["a", "b", "c"]));
        let collected: Vec<&Value> = (&p).into_iter().collect();
        assert_eq!(collected.len(), 3);
    }
}
