//! # seqdl-core — data model for sequence databases
//!
//! This crate implements the data model of Section 2.1 of *Expressiveness within
//! Sequence Datalog* (Aamer, Hidders, Paredaens, Van den Bussche, PODS 2021):
//!
//! * a countably infinite universe **dom** of *atomic values*, represented here by
//!   interned strings ([`AtomId`]);
//! * *values*, which are either atomic values or *packed values* `⟨p⟩` wrapping a
//!   path ([`Value`]);
//! * *paths*, finite sequences of values ([`Path`]), with `ε` the empty path and `·`
//!   (associative) concatenation;
//! * *schemas* assigning arities to relation names ([`Schema`]);
//! * *instances* assigning a finite n-ary relation on paths to every relation name
//!   ([`Instance`]), equivalently viewed as finite sets of *facts* ([`Fact`]).
//!
//! The crate deliberately contains no syntax (path *expressions*, rules, programs —
//! see `seqdl-syntax`) and no evaluation (see `seqdl-engine`): it is the substrate
//! every other crate in the workspace builds on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cancel;
pub mod error;
pub mod hash;
pub mod instance;
pub mod interner;
pub mod path;
pub mod store;
pub mod value;

pub use cancel::CancelToken;
pub use error::CoreError;
pub use hash::{fx_hash, FxHasher, FxMap};
pub use instance::{
    joint_probe_key, Fact, Instance, PrefixTrie, Relation, Schema, TrieEntry, Tuple, TRIE_DEPTH,
};
pub use interner::{AtomId, RelName, Symbol, VarSym};
pub use path::{Path, PathView, Subpaths};
pub use store::{store_stats, PathId, Segment, StoreStats};
pub use value::Value;

/// Convenience: intern an atomic value by name.
///
/// ```
/// use seqdl_core::{atom, Value};
/// let a = atom("a");
/// assert_eq!(Value::Atom(a).to_string(), "a");
/// ```
pub fn atom(name: &str) -> AtomId {
    AtomId::new(name)
}

/// Convenience: intern a relation name.
pub fn rel(name: &str) -> RelName {
    RelName::new(name)
}

/// Convenience: build a flat path of atomic values from symbol names.
///
/// ```
/// use seqdl_core::path_of;
/// let p = path_of(&["a", "b", "a"]);
/// assert_eq!(p.to_string(), "a·b·a");
/// assert_eq!(p.len(), 3);
/// ```
pub fn path_of(names: &[&str]) -> Path {
    Path::from_values(names.iter().map(|n| Value::Atom(atom(n))))
}

/// Convenience: build the path `a^n` (the atom `name` repeated `n` times).
pub fn repeat_path(name: &str, n: usize) -> Path {
    let a = atom(name);
    Path::from_values(std::iter::repeat_n(Value::Atom(a), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_expected_paths() {
        assert_eq!(path_of(&[]).len(), 0);
        assert!(path_of(&[]).is_empty());
        assert_eq!(repeat_path("a", 5).len(), 5);
        assert_eq!(repeat_path("a", 0), Path::empty());
        assert_eq!(path_of(&["x", "y"]).to_string(), "x·y");
    }

    #[test]
    fn atoms_are_interned_by_name() {
        assert_eq!(atom("hello"), atom("hello"));
        assert_ne!(atom("hello"), atom("world"));
        assert_eq!(atom("hello").name(), "hello");
    }

    #[test]
    fn relation_names_are_interned_by_name() {
        assert_eq!(rel("R"), rel("R"));
        assert_ne!(rel("R"), rel("S"));
        assert_eq!(rel("R").name(), "R");
    }
}
