//! Parser for the concrete syntax of Sequence Datalog programs.
//!
//! The accepted grammar is described in the crate-level documentation.  The parser
//! is a plain hand-written recursive-descent parser over a small token stream; it
//! reports byte offsets in errors and round-trips with the `Display`
//! implementations of the AST (see the `parse_print_roundtrip` tests).

use crate::ast::{Atom, Equation, Literal, Predicate, Program, Rule, Stratum};
use crate::error::SyntaxError;
use crate::term::{PathExpr, Term, Var};
use seqdl_core::{AtomId, RelName};

/// Parse a complete program (one or more strata separated by `---` lines).
pub fn parse_program(input: &str) -> Result<Program, SyntaxError> {
    let tokens = lex(input)?;
    let mut parser = Parser::new(tokens);
    parser.program()
}

/// Parse a single rule, e.g. `S($x) <- R($x), a·$x = $x·a.`
pub fn parse_rule(input: &str) -> Result<Rule, SyntaxError> {
    let tokens = lex(input)?;
    let mut parser = Parser::new(tokens);
    let rule = parser.rule()?;
    parser.expect_end()?;
    Ok(rule)
}

/// Parse a single path expression, e.g. `a·<$x·@y>·$z`.
pub fn parse_expr(input: &str) -> Result<PathExpr, SyntaxError> {
    let tokens = lex(input)?;
    let mut parser = Parser::new(tokens);
    let expr = parser.expr()?;
    parser.expect_end()?;
    Ok(expr)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Quoted(String),
    AtomVar(String),
    PathVar(String),
    LParen,
    RParen,
    LAngle,
    RAngle,
    Comma,
    RuleEnd,
    Concat,
    Arrow,
    Eq,
    Neq,
    Not,
    StratumSep,
    Eps,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    offset: usize,
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn lex(input: &str) -> Result<Vec<Spanned>, SyntaxError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    // Byte offsets for error messages.
    let offsets: Vec<usize> = input.char_indices().map(|(o, _)| o).collect();
    let offset_at = |i: usize| offsets.get(i).copied().unwrap_or(input.len());

    while i < chars.len() {
        let c = chars[i];
        let off = offset_at(i);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '%' | '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '-' if chars.get(i + 1) == Some(&'-') && chars.get(i + 2) == Some(&'-') => {
                while i < chars.len() && chars[i] == '-' {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::StratumSep,
                    offset: off,
                });
            }
            '(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    offset: off,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    offset: off,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    offset: off,
                });
                i += 1;
            }
            '∧' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    offset: off,
                });
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'-') {
                    out.push(Spanned {
                        tok: Tok::Arrow,
                        offset: off,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        tok: Tok::LAngle,
                        offset: off,
                    });
                    i += 1;
                }
            }
            '⟨' => {
                out.push(Spanned {
                    tok: Tok::LAngle,
                    offset: off,
                });
                i += 1;
            }
            '>' | '⟩' => {
                out.push(Spanned {
                    tok: Tok::RAngle,
                    offset: off,
                });
                i += 1;
            }
            '←' => {
                out.push(Spanned {
                    tok: Tok::Arrow,
                    offset: off,
                });
                i += 1;
            }
            ':' if chars.get(i + 1) == Some(&'-') => {
                out.push(Spanned {
                    tok: Tok::Arrow,
                    offset: off,
                });
                i += 2;
            }
            '·' | '*' => {
                out.push(Spanned {
                    tok: Tok::Concat,
                    offset: off,
                });
                i += 1;
            }
            '.' => {
                // A dot immediately followed by something that can start a term is
                // concatenation; otherwise it ends a rule.
                let next = chars.get(i + 1).copied();
                let is_concat = next.is_some_and(|n| {
                    is_ident_char(n) || n == '@' || n == '$' || n == '<' || n == '\'' || n == '⟨'
                });
                out.push(Spanned {
                    tok: if is_concat { Tok::Concat } else { Tok::RuleEnd },
                    offset: off,
                });
                i += 1;
            }
            '=' => {
                out.push(Spanned {
                    tok: Tok::Eq,
                    offset: off,
                });
                i += 1;
            }
            '≠' => {
                out.push(Spanned {
                    tok: Tok::Neq,
                    offset: off,
                });
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Spanned {
                        tok: Tok::Neq,
                        offset: off,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        tok: Tok::Not,
                        offset: off,
                    });
                    i += 1;
                }
            }
            '~' | '¬' => {
                out.push(Spanned {
                    tok: Tok::Not,
                    offset: off,
                });
                i += 1;
            }
            '@' | '$' => {
                let sigil = c;
                i += 1;
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                if start == i {
                    return Err(SyntaxError::Lex {
                        offset: off,
                        message: format!("expected a variable name after `{sigil}`"),
                    });
                }
                let name: String = chars[start..i].iter().collect();
                out.push(Spanned {
                    tok: if sigil == '@' {
                        Tok::AtomVar(name)
                    } else {
                        Tok::PathVar(name)
                    },
                    offset: off,
                });
            }
            '\'' => {
                i += 1;
                let mut name = String::new();
                let mut closed = false;
                while i < chars.len() {
                    if chars[i] == '\\' && chars.get(i + 1) == Some(&'\'') {
                        name.push('\'');
                        i += 2;
                    } else if chars[i] == '\'' {
                        closed = true;
                        i += 1;
                        break;
                    } else {
                        name.push(chars[i]);
                        i += 1;
                    }
                }
                if !closed {
                    return Err(SyntaxError::Lex {
                        offset: off,
                        message: "unterminated quoted atom".into(),
                    });
                }
                out.push(Spanned {
                    tok: Tok::Quoted(name),
                    offset: off,
                });
            }
            c if is_ident_char(c) => {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                let name: String = chars[start..i].iter().collect();
                out.push(Spanned {
                    tok: if name == "eps" {
                        Tok::Eps
                    } else {
                        Tok::Ident(name)
                    },
                    offset: off,
                });
            }
            'ε' => {
                out.push(Spanned {
                    tok: Tok::Eps,
                    offset: off,
                });
                i += 1;
            }
            other => {
                if other == 'ε' {
                    out.push(Spanned {
                        tok: Tok::Eps,
                        offset: off,
                    });
                    i += 1;
                } else {
                    return Err(SyntaxError::Lex {
                        offset: off,
                        message: format!("unexpected character `{other}`"),
                    });
                }
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Spanned>) -> Parser {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn peek_at(&self, n: usize) -> Option<&Tok> {
        self.tokens.get(self.pos + n).map(|s| &s.tok)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or_else(|| self.tokens.last().map(|s| s.offset + 1).unwrap_or(0))
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, SyntaxError> {
        Err(SyntaxError::Parse {
            offset: self.offset(),
            message: message.into(),
        })
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), SyntaxError> {
        match self.peek() {
            Some(t) if *t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => self.error(format!("expected {what}, found {t:?}")),
            None => self.error(format!("expected {what}, found end of input")),
        }
    }

    fn expect_end(&self) -> Result<(), SyntaxError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            self.error("unexpected trailing input")
        }
    }

    fn program(&mut self) -> Result<Program, SyntaxError> {
        let mut strata = Vec::new();
        let mut current = Vec::new();
        // Leading separators are harmless.
        while self.peek() == Some(&Tok::StratumSep) {
            self.pos += 1;
        }
        while self.peek().is_some() {
            if self.peek() == Some(&Tok::StratumSep) {
                self.pos += 1;
                strata.push(Stratum::new(std::mem::take(&mut current)));
                continue;
            }
            current.push(self.rule()?);
        }
        strata.push(Stratum::new(current));
        Ok(Program::new(strata))
    }

    fn rule(&mut self) -> Result<Rule, SyntaxError> {
        let head = self.predicate()?;
        let body = if self.peek() == Some(&Tok::Arrow) {
            self.pos += 1;
            if self.peek() == Some(&Tok::RuleEnd) {
                Vec::new()
            } else {
                let mut body = vec![self.literal()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                    body.push(self.literal()?);
                }
                body
            }
        } else {
            Vec::new()
        };
        self.expect(Tok::RuleEnd, "`.` at the end of the rule")?;
        Ok(Rule::new(head, body))
    }

    /// Is the current position the start of `Ident (`, i.e. a predicate application?
    fn looks_like_predicate(&self) -> bool {
        matches!(self.peek(), Some(Tok::Ident(_))) && self.peek_at(1) == Some(&Tok::LParen)
    }

    fn atom(&mut self) -> Result<Atom, SyntaxError> {
        if self.looks_like_predicate() {
            return Ok(Atom::Pred(self.predicate()?));
        }
        // Otherwise parse a path expression; an `=`/`!=` makes it an equation, a bare
        // single identifier is a nullary predicate.
        let start_pos = self.pos;
        let lhs = self.expr()?;
        match self.peek() {
            Some(Tok::Eq) => {
                self.pos += 1;
                let rhs = self.expr()?;
                Ok(Atom::Eq(Equation::new(lhs, rhs)))
            }
            Some(Tok::Neq) => {
                // A nonequality is a negated-equation *literal*, not an atom; rewind
                // and let `literal` re-parse it with the right polarity.
                self.pos = start_pos;
                self.nonequality_marker()?;
                unreachable!("nonequality_marker always errors");
            }
            _ => {
                if lhs.terms().len() == 1 {
                    if let Term::Const(a) = &lhs.terms()[0] {
                        return Ok(Atom::Pred(Predicate::nullary(RelName::new(&a.name()))));
                    }
                }
                self.error("expected `=`, `!=`, or a predicate")
            }
        }
    }

    /// Helper used by [`Parser::atom`] to signal to [`Parser::literal`] that the
    /// upcoming atom is a nonequality; never returns `Ok`.
    fn nonequality_marker(&self) -> Result<(), SyntaxError> {
        Err(SyntaxError::Parse {
            offset: usize::MAX,
            message: "__nonequality__".into(),
        })
    }

    fn predicate(&mut self) -> Result<Predicate, SyntaxError> {
        let name = match self.bump() {
            Some(Tok::Ident(name)) => name,
            Some(other) => return self.error(format!("expected a relation name, found {other:?}")),
            None => return self.error("expected a relation name, found end of input"),
        };
        let relation = RelName::new(&name);
        if self.peek() != Some(&Tok::LParen) {
            return Ok(Predicate::nullary(relation));
        }
        self.pos += 1;
        let mut args = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            self.pos += 1;
            return Ok(Predicate::new(relation, args));
        }
        args.push(self.expr()?);
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            args.push(self.expr()?);
        }
        self.expect(Tok::RParen, "`)` closing the predicate")?;
        Ok(Predicate::new(relation, args))
    }

    fn expr(&mut self) -> Result<PathExpr, SyntaxError> {
        let mut terms = Vec::new();
        self.expr_item(&mut terms)?;
        while self.peek() == Some(&Tok::Concat) {
            self.pos += 1;
            self.expr_item(&mut terms)?;
        }
        Ok(PathExpr::from_terms(terms))
    }

    fn expr_item(&mut self, terms: &mut Vec<Term>) -> Result<(), SyntaxError> {
        match self.peek().cloned() {
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                terms.push(Term::Const(AtomId::new(&name)));
                Ok(())
            }
            Some(Tok::Quoted(name)) => {
                self.pos += 1;
                terms.push(Term::Const(AtomId::new(&name)));
                Ok(())
            }
            Some(Tok::AtomVar(name)) => {
                self.pos += 1;
                terms.push(Term::Var(Var::atom(&name)));
                Ok(())
            }
            Some(Tok::PathVar(name)) => {
                self.pos += 1;
                terms.push(Term::Var(Var::path(&name)));
                Ok(())
            }
            Some(Tok::Eps) => {
                self.pos += 1;
                // ε contributes no terms: a·eps·b is a·b, and a lone eps is the
                // empty expression.
                Ok(())
            }
            Some(Tok::LAngle) => {
                self.pos += 1;
                let inner = if self.peek() == Some(&Tok::RAngle) {
                    PathExpr::empty()
                } else {
                    self.expr()?
                };
                self.expect(Tok::RAngle, "`>` closing the packed expression")?;
                terms.push(Term::Packed(inner));
                Ok(())
            }
            Some(other) => self.error(format!("expected a path-expression item, found {other:?}")),
            None => self.error("expected a path-expression item, found end of input"),
        }
    }
}

// The `atom` method signals nonequalities with a sentinel error; intercept it in
// `literal` by re-parsing.  To keep that logic local we implement it as a free
// function extension here.
impl Parser {
    fn literal(&mut self) -> Result<Literal, SyntaxError> {
        let start = self.pos;
        match self.literal_inner() {
            Ok(l) => Ok(l),
            Err(SyntaxError::Parse { offset, message })
                if offset == usize::MAX && message == "__nonequality__" =>
            {
                self.pos = start;
                let lhs = self.expr()?;
                self.expect(Tok::Neq, "`!=`")?;
                let rhs = self.expr()?;
                Ok(Literal::neq(lhs, rhs))
            }
            Err(e) => Err(e),
        }
    }

    fn literal_inner(&mut self) -> Result<Literal, SyntaxError> {
        if self.peek() == Some(&Tok::Not) {
            self.pos += 1;
            if self.peek() == Some(&Tok::LParen) && !self.looks_like_predicate() {
                self.pos += 1;
                let lhs = self.expr()?;
                self.expect(Tok::Eq, "`=` inside negated equation")?;
                let rhs = self.expr()?;
                self.expect(Tok::RParen, "`)` after negated equation")?;
                return Ok(Literal::neq(lhs, rhs));
            }
            let atom = self.atom()?;
            return Ok(Literal::negative(atom));
        }
        let atom = self.atom()?;
        Ok(Literal::positive(atom))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarKind;

    #[test]
    fn parses_example_3_1_only_as() {
        let p = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        assert_eq!(p.rule_count(), 1);
        let rule = p.rules().next().unwrap();
        assert_eq!(rule.head.relation.name(), "S");
        assert_eq!(rule.positive_body_equations().len(), 1);
        assert_eq!(rule.to_string(), "S($x) <- R($x), a·$x = $x·a.");
    }

    #[test]
    fn parses_ascii_dot_concatenation() {
        let p = parse_program("S($x) <- R($x), a.$x = $x.a.").unwrap();
        assert_eq!(
            p.rules().next().unwrap().to_string(),
            "S($x) <- R($x), a·$x = $x·a."
        );
    }

    #[test]
    fn parses_example_2_1_nfa_program() {
        let text = "
            S(@q·$x, eps) <- R($x), N(@q).
            S(@q2·$y, $z·@a) <- S(@q1·@a·$y, $z), D(@q1, @a, @q2).
            A($x) <- S(@q, $x), F(@q).
        ";
        let p = parse_program(text).unwrap();
        assert_eq!(p.rule_count(), 3);
        let arities = p.relation_arities().unwrap();
        assert_eq!(arities[&RelName::new("D")], 3);
        assert_eq!(arities[&RelName::new("S")], 2);
        assert_eq!(arities[&RelName::new("A")], 1);
    }

    #[test]
    fn parses_example_2_2_packing_and_nonequalities() {
        let text = "
            T($u·<$s>·$v) <- R($u·$s·$v), S($s).
            A <- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.
        ";
        let p = parse_program(text).unwrap();
        assert_eq!(p.rule_count(), 2);
        let rules: Vec<_> = p.rules().collect();
        assert!(rules[0].has_packing());
        assert_eq!(rules[1].negative_body_equations().len(), 3);
        assert_eq!(rules[1].head.arity(), 0);
    }

    #[test]
    fn parses_negated_predicates_and_parenthesised_nonequalities() {
        let text = "
            W(@x) <- R(@x·@y), !B(@y).
            S(@x) <- R(@x·@y), ¬W(@x).
            U($x, $y) <- U($x, @a·$y·@b), ¬(@a=@b).
        ";
        let p = parse_program(text).unwrap();
        let rules: Vec<_> = p.rules().collect();
        assert_eq!(rules[0].negative_body_predicates().len(), 1);
        assert_eq!(rules[1].negative_body_predicates().len(), 1);
        assert_eq!(rules[2].negative_body_equations().len(), 1);
    }

    #[test]
    fn parses_strata_separated_by_dashes() {
        let text = "
            T($x) <- R($x).
            ---
            S($x) <- R($x), !T($x).
        ";
        let p = parse_program(text).unwrap();
        assert_eq!(p.stratum_count(), 2);
        assert_eq!(p.strata[0].rules.len(), 1);
        assert_eq!(p.strata[1].rules.len(), 1);
    }

    #[test]
    fn parses_facts_and_nullary_heads() {
        let p = parse_program("T(a). A <- T($x).").unwrap();
        let rules: Vec<_> = p.rules().collect();
        assert!(rules[0].body.is_empty());
        assert_eq!(rules[1].head.arity(), 0);
    }

    #[test]
    fn parses_packed_and_nested_expressions() {
        let e = parse_expr("@a·<<$x·$y>·$z>·<eps>").unwrap();
        assert_eq!(e.to_string(), "@a·<<$x·$y>·$z>·<eps>");
        assert_eq!(e.packing_depth(), 2);
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn eps_means_the_empty_expression() {
        assert!(parse_expr("eps").unwrap().is_empty());
        assert_eq!(parse_expr("a·eps·b").unwrap().to_string(), "a·b");
        let r = parse_rule("T($x, eps) <- R($x).").unwrap();
        assert!(r.head.args[1].is_empty());
    }

    #[test]
    fn quoted_atoms_allow_arbitrary_names() {
        let e = parse_expr("'complete order'·'receive payment'").unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e.to_string(), "'complete order'·'receive payment'");
    }

    #[test]
    fn variables_have_kinds() {
        let e = parse_expr("@q·$x").unwrap();
        let vars = e.vars();
        assert_eq!(vars[0].kind, VarKind::Atom);
        assert_eq!(vars[1].kind, VarKind::Path);
    }

    #[test]
    fn comments_are_ignored() {
        let text = "
            % a comment
            # another comment
            // yet another
            S($x) <- R($x). % trailing comment
        ";
        assert_eq!(parse_program(text).unwrap().rule_count(), 1);
    }

    #[test]
    fn alternative_arrows_are_accepted() {
        assert!(parse_rule("S($x) :- R($x).").is_ok());
        assert!(parse_rule("S($x) ← R($x).").is_ok());
    }

    #[test]
    fn lex_and_parse_errors_are_reported_with_offsets() {
        assert!(matches!(
            parse_program("S($x) <- R($x)"),
            Err(SyntaxError::Parse { .. })
        ));
        assert!(matches!(
            parse_program("S(&x) <- R($x)."),
            Err(SyntaxError::Lex { .. })
        ));
        assert!(matches!(
            parse_expr("'unterminated"),
            Err(SyntaxError::Lex { .. })
        ));
        assert!(matches!(parse_expr("a ="), Err(SyntaxError::Parse { .. })));
    }

    #[test]
    fn parse_print_roundtrip_on_paper_programs() {
        let sources = [
            "S($x) <- R($x), a·$x = $x·a.",
            "T($x, $x) <- R($x).\nT($x, $y) <- T($x, $y·a).\nS($x) <- T($x, eps).",
            "T($x·a·a·$x·b) <- R($x).\nS($x) <- T(a·$x·a·b·$x).",
            "W(@x) <- R(@x·@y), !B(@y).\nS(@x) <- R(@x·@y), !W(@x).",
        ];
        for src in sources {
            let p1 = parse_program(src).unwrap();
            let printed = p1.to_string();
            let p2 = parse_program(&printed).unwrap();
            assert_eq!(p1, p2, "round-trip failed for `{src}` -> `{printed}`");
        }
    }

    #[test]
    fn empty_strata_are_allowed() {
        let p = parse_program("---\nS($x) <- R($x).").unwrap();
        assert_eq!(p.stratum_count(), 1);
        let p = parse_program("S($x) <- R($x).\n---\n").unwrap();
        assert_eq!(p.stratum_count(), 2);
        assert!(p.strata[1].rules.is_empty());
    }
}
