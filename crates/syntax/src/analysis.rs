//! Static analyses over programs: limited variables and safety (Section 2.2), the
//! dependency graph and recursion (Section 3), EDB/IDB classification,
//! semipositivity, stratification (Section 2.3), and feature detection (Section 3).

use crate::ast::{Program, Rule};
use crate::error::SyntaxError;
use crate::term::Var;
use seqdl_core::RelName;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Which of the six features a program uses (Section 3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FeatureSet {
    /// **A** — some predicate has arity greater than one.
    pub arity: bool,
    /// **R** — the dependency graph has a cycle.
    pub recursion: bool,
    /// **E** — some rule contains an equation.
    pub equations: bool,
    /// **N** — some rule contains a negated atom.
    pub negation: bool,
    /// **P** — a packed path expression `⟨e⟩` occurs in some rule.
    pub packing: bool,
    /// **I** — at least two different IDB relation names are used.
    pub intermediate: bool,
}

impl FeatureSet {
    /// Detect the features used by `program`.
    pub fn of_program(program: &Program) -> FeatureSet {
        let arity = program.rules().any(|r| {
            r.head.arity() > 1
                || r.body
                    .iter()
                    .any(|l| l.atom.as_predicate().is_some_and(|p| p.arity() > 1))
        });
        let equations = program
            .rules()
            .any(|r| r.body.iter().any(|l| l.is_equation()));
        let negation = program.rules().any(|r| r.body.iter().any(|l| !l.positive));
        let packing = program.rules().any(Rule::has_packing);
        let intermediate = program.idb_relations().len() >= 2;
        let recursion = DependencyGraph::of_program(program).has_cycle();
        FeatureSet {
            arity,
            recursion,
            equations,
            negation,
            packing,
            intermediate,
        }
    }

    /// The single-letter names of the used features, in alphabetical order
    /// A, E, I, N, P, R.
    pub fn letters(&self) -> String {
        let mut out = String::new();
        for (flag, letter) in [
            (self.arity, 'A'),
            (self.equations, 'E'),
            (self.intermediate, 'I'),
            (self.negation, 'N'),
            (self.packing, 'P'),
            (self.recursion, 'R'),
        ] {
            if flag {
                out.push(letter);
            }
        }
        out
    }
}

impl fmt::Display for FeatureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let letters: Vec<String> = self.letters().chars().map(|c| c.to_string()).collect();
        write!(f, "{{{}}}", letters.join(", "))
    }
}

/// The dependency graph of a program (footnote 2 of the paper): nodes are the IDB
/// relation names, and there is an edge from `R1` to `R2` if `R2` occurs in the body
/// of a rule with `R1` in its head.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    edges: BTreeMap<RelName, BTreeSet<RelName>>,
}

impl DependencyGraph {
    /// Build the dependency graph of a program.
    pub fn of_program(program: &Program) -> DependencyGraph {
        let idb = program.idb_relations();
        let mut edges: BTreeMap<RelName, BTreeSet<RelName>> = BTreeMap::new();
        for name in &idb {
            edges.entry(*name).or_default();
        }
        for rule in program.rules() {
            let from = rule.head.relation;
            for to in rule.body_relations() {
                if idb.contains(&to) {
                    edges.entry(from).or_default().insert(to);
                }
            }
        }
        DependencyGraph { edges }
    }

    /// The nodes of the graph (the IDB relation names).
    pub fn nodes(&self) -> impl Iterator<Item = RelName> + '_ {
        self.edges.keys().copied()
    }

    /// The successors of a node.
    pub fn successors(&self, node: RelName) -> BTreeSet<RelName> {
        self.edges.get(&node).cloned().unwrap_or_default()
    }

    /// Does the graph contain a cycle (including self-loops)?  This is the paper's
    /// definition of the **R** feature.
    pub fn has_cycle(&self) -> bool {
        self.edges
            .keys()
            .any(|&node| self.reachable_from(node).contains(&node))
    }

    /// Relations reachable from `start` by one or more edges.
    pub fn reachable_from(&self, start: RelName) -> BTreeSet<RelName> {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<RelName> = self.successors(start).into_iter().collect();
        while let Some(node) = stack.pop() {
            if seen.insert(node) {
                stack.extend(self.successors(node));
            }
        }
        seen
    }

    /// Is the given relation recursive, i.e. does it reach itself in the graph?
    pub fn is_recursive_relation(&self, relation: RelName) -> bool {
        self.reachable_from(relation).contains(&relation)
    }
}

/// The *limited variables* of a rule (Section 2.2): the smallest set such that
///
/// 1. every variable occurring in a positive predicate in the body is limited; and
/// 2. if all variables in one side of a positive equation are limited, then all
///    variables in the other side are limited too.
pub fn limited_vars(rule: &Rule) -> BTreeSet<Var> {
    let mut limited: BTreeSet<Var> = BTreeSet::new();
    for pred in rule.positive_body_predicates() {
        limited.extend(pred.vars());
    }
    loop {
        let mut changed = false;
        for eq in rule.positive_body_equations() {
            let lhs_vars: BTreeSet<Var> = eq.lhs.vars().into_iter().collect();
            let rhs_vars: BTreeSet<Var> = eq.rhs.vars().into_iter().collect();
            if lhs_vars.iter().all(|v| limited.contains(v)) {
                for v in &rhs_vars {
                    changed |= limited.insert(*v);
                }
            }
            if rhs_vars.iter().all(|v| limited.contains(v)) {
                for v in &lhs_vars {
                    changed |= limited.insert(*v);
                }
            }
        }
        if !changed {
            break;
        }
    }
    limited
}

/// Is the rule safe, i.e. are all its variables limited (Section 2.2)?
pub fn is_safe(rule: &Rule) -> bool {
    let limited = limited_vars(rule);
    rule.vars().iter().all(|v| limited.contains(v))
}

/// Check that every rule of the program is safe.
///
/// # Errors
/// Returns [`SyntaxError::UnsafeRule`] naming the first unsafe rule found.
pub fn check_safety(program: &Program) -> Result<(), SyntaxError> {
    for rule in program.rules() {
        let limited = limited_vars(rule);
        let unlimited: Vec<String> = rule
            .vars()
            .into_iter()
            .filter(|v| !limited.contains(v))
            .map(|v| v.to_string())
            .collect();
        if !unlimited.is_empty() {
            return Err(SyntaxError::UnsafeRule {
                rule: rule.to_string(),
                unlimited,
            });
        }
    }
    Ok(())
}

/// Check stratified negation (Section 2.2): when a negated predicate `¬P(…)` occurs
/// in some stratum, no rule in that stratum or a later one may use `P` in its head.
///
/// # Errors
/// Returns [`SyntaxError::NotStratified`] describing the first violation.
pub fn check_stratification(program: &Program) -> Result<(), SyntaxError> {
    for (i, stratum) in program.strata.iter().enumerate() {
        for negated in stratum.negated_relations() {
            for (j, later) in program.strata.iter().enumerate().skip(i) {
                if later.head_relations().contains(&negated) {
                    return Err(SyntaxError::NotStratified {
                        message: format!(
                            "relation {negated} is negated in stratum {i} but defined in stratum {j}"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Is the program semipositive, i.e. are negated predicates only applied to EDB
/// relation names (Section 2.3)?  Negated equations do not affect semipositivity.
pub fn is_semipositive(program: &Program) -> bool {
    let idb = program.idb_relations();
    program.rules().all(|r| {
        r.negative_body_predicates()
            .iter()
            .all(|p| !idb.contains(&p.relation))
    })
}

/// The *precedence graph* over the IDB relation names of a set of rules: there is
/// an edge from `R` to `S` ("R precedes S") when `R` occurs in the body of a rule
/// with head `S`, i.e. `S` can only be computed once `R` is.  Edges arising from a
/// *negated* occurrence are additionally recorded as negative.
///
/// This is the [`DependencyGraph`] with its edges reversed, plus negation labels —
/// the orientation an evaluation *scheduler* wants: condensing the graph into
/// strongly connected components and ordering them topologically yields a plan in
/// which every component is computed after everything it reads, non-recursive
/// components need a single pass, and components at the same level are mutually
/// independent (they can run in parallel).  Where a caller needs the actual
/// evaluation order — not just a yes/no answer — this graph supersedes the
/// boolean [`check_stratification`]; see [`PrecedenceGraph::check_stratifiable`]
/// for the soundness caveat that distinction carries.
#[derive(Clone, Debug)]
pub struct PrecedenceGraph {
    /// The nodes (head relation names of the rules), in first-head order.
    nodes: Vec<RelName>,
    /// Relation name → index into `nodes`.
    index: BTreeMap<RelName, usize>,
    /// `succ[i]` holds `j` when node `i` precedes node `j` (i occurs in a body of a
    /// rule with head `j`).
    succ: Vec<BTreeSet<usize>>,
    /// Edges `(i, j)` where the occurrence of `i` in a body with head `j` is
    /// negated.
    negative: BTreeSet<(usize, usize)>,
}

impl PrecedenceGraph {
    /// Build the precedence graph of a set of rules.  The nodes are the *head*
    /// relations of the given rules; body occurrences of other relations (the EDB,
    /// or heads of rules outside the set) constrain nothing and produce no edges.
    pub fn of_rules<'a>(rules: impl IntoIterator<Item = &'a Rule>) -> PrecedenceGraph {
        let rules: Vec<&Rule> = rules.into_iter().collect();
        let mut nodes: Vec<RelName> = Vec::new();
        let mut index: BTreeMap<RelName, usize> = BTreeMap::new();
        for rule in &rules {
            let head = rule.head.relation;
            if let std::collections::btree_map::Entry::Vacant(e) = index.entry(head) {
                e.insert(nodes.len());
                nodes.push(head);
            }
        }
        let mut succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nodes.len()];
        let mut negative: BTreeSet<(usize, usize)> = BTreeSet::new();
        for rule in rules {
            let head_ix = index[&rule.head.relation];
            for pred in rule.positive_body_predicates() {
                if let Some(&body_ix) = index.get(&pred.relation) {
                    succ[body_ix].insert(head_ix);
                }
            }
            for pred in rule.negative_body_predicates() {
                if let Some(&body_ix) = index.get(&pred.relation) {
                    succ[body_ix].insert(head_ix);
                    negative.insert((body_ix, head_ix));
                }
            }
        }
        PrecedenceGraph {
            nodes,
            index,
            succ,
            negative,
        }
    }

    /// Build the precedence graph of a whole program (all strata pooled).
    pub fn of_program(program: &Program) -> PrecedenceGraph {
        PrecedenceGraph::of_rules(program.rules())
    }

    /// The nodes of the graph (head relation names), in first-head order.
    pub fn nodes(&self) -> &[RelName] {
        &self.nodes
    }

    /// Does the graph contain an edge from `from` to `to`?
    pub fn has_edge(&self, from: RelName, to: RelName) -> bool {
        match (self.index.get(&from), self.index.get(&to)) {
            (Some(&f), Some(&t)) => self.succ[f].contains(&t),
            _ => false,
        }
    }

    /// Is the edge from `from` to `to` negative (some negated body occurrence)?
    pub fn has_negative_edge(&self, from: RelName, to: RelName) -> bool {
        match (self.index.get(&from), self.index.get(&to)) {
            (Some(&f), Some(&t)) => self.negative.contains(&(f, t)),
            _ => false,
        }
    }

    /// Condense the graph into strongly connected components, topologically
    /// ordered: every component appears after all components it reads from.
    pub fn condensation(&self) -> Condensation {
        let n = self.nodes.len();
        // Iterative Tarjan.  Components are emitted dependents-first (an SCC is
        // completed only after everything reachable from it), so the evaluation
        // order is the reverse of the emission order.
        let mut ix_counter = 0usize;
        let mut ix = vec![usize::MAX; n]; // discovery index per node
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut emitted: Vec<Vec<usize>> = Vec::new();
        // Explicit DFS frames: (node, iterator position into succ list).
        let succ_lists: Vec<Vec<usize>> = self
            .succ
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect();
        for root in 0..n {
            if ix[root] != usize::MAX {
                continue;
            }
            ix[root] = ix_counter;
            low[root] = ix_counter;
            ix_counter += 1;
            stack.push(root);
            on_stack[root] = true;
            let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&(v, child_pos)) = frames.last() {
                if let Some(&w) = succ_lists[v].get(child_pos) {
                    frames.last_mut().expect("frame exists").1 += 1;
                    if ix[w] == usize::MAX {
                        ix[w] = ix_counter;
                        low[w] = ix_counter;
                        ix_counter += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(ix[w]);
                    }
                } else {
                    frames.pop();
                    if low[v] == ix[v] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("Tarjan stack underflow");
                            on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        emitted.push(component);
                    }
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
        emitted.reverse(); // dependencies now come first

        // Membership map: node → component index (in evaluation order).
        let mut component_of = vec![0usize; n];
        for (c, members) in emitted.iter().enumerate() {
            for &v in members {
                component_of[v] = c;
            }
        }
        // A component is recursive when it has more than one member or a self-loop.
        // Levels: the longest chain of inter-component dependencies below each
        // component; components sharing a level are mutually independent.
        let mut components: Vec<SccInfo> = Vec::with_capacity(emitted.len());
        for (c, members) in emitted.iter().enumerate() {
            let recursive = members.len() > 1 || members.iter().any(|&v| self.succ[v].contains(&v));
            let mut level = 0usize;
            for &v in members {
                // Incoming edges: scan predecessors via succ of every earlier node.
                // (Cheap enough: graphs are IDB-sized, not data-sized.)
                for (u, succs) in self.succ.iter().enumerate() {
                    if succs.contains(&v) && component_of[u] != c {
                        level = level.max(components[component_of[u]].level + 1);
                    }
                }
            }
            components.push(SccInfo {
                members: members.iter().map(|&v| self.nodes[v]).collect(),
                recursive,
                level,
            });
        }
        Condensation { components }
    }

    /// Check that no *negative* edge joins two relations of the same strongly
    /// connected component — the graph-based form of stratifiability: recursion
    /// through negation is exactly a negative edge inside an SCC.
    ///
    /// **Soundness scope.**  This check is *more permissive* than
    /// [`check_stratification`]: it accepts a program whose negation crosses
    /// SCCs inside one declared stratum (e.g. `T($x) <- R($x).  S($x) <- R($x),
    /// !T($x).` written without a `---` separator).  Such a program is only
    /// evaluated correctly by a scheduler that runs the SCC condensation in
    /// topological order (negated relations fully computed before their
    /// negations are read — auto-stratification, the `seqdl-exec` model).  The
    /// sequential engine's whole-declared-stratum fixpoint would read `!T` at
    /// iteration 0, before `T` is populated, and over-derive; programs headed
    /// for that evaluator must pass [`check_stratification`] instead, which is
    /// what [`ProgramInfo::analyse`] enforces for both evaluators today.
    ///
    /// # Errors
    /// Returns [`SyntaxError::NotStratified`] naming the offending edge.
    pub fn check_stratifiable(&self) -> Result<(), SyntaxError> {
        if self.negative.is_empty() {
            return Ok(());
        }
        let condensation = self.condensation();
        let component_of: BTreeMap<RelName, usize> = condensation
            .components
            .iter()
            .enumerate()
            .flat_map(|(c, info)| info.members.iter().map(move |r| (*r, c)))
            .collect();
        for &(from, to) in &self.negative {
            let (from, to) = (self.nodes[from], self.nodes[to]);
            if component_of[&from] == component_of[&to] {
                return Err(SyntaxError::NotStratified {
                    message: format!(
                        "relation {from} is negated in a rule defining {to}, but {from} and {to} \
                         are mutually recursive (recursion through negation)"
                    ),
                });
            }
        }
        Ok(())
    }
}

/// One strongly connected component of a [`PrecedenceGraph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SccInfo {
    /// The relation names in the component.
    pub members: BTreeSet<RelName>,
    /// Does evaluating the component need a fixpoint?  True when the component has
    /// more than one member or a self-loop; false means a single pass suffices.
    pub recursive: bool,
    /// Length of the longest chain of inter-component dependencies below this
    /// component.  Components with equal levels never read from one another, so
    /// they can be evaluated in parallel.
    pub level: usize,
}

/// The condensation of a [`PrecedenceGraph`]: its strongly connected components in
/// topological (evaluation) order.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// The components; every component appears after all components it reads from.
    pub components: Vec<SccInfo>,
}

impl Condensation {
    /// The component index of `relation`, if it heads any rule.
    pub fn component_of(&self, relation: RelName) -> Option<usize> {
        self.components
            .iter()
            .position(|c| c.members.contains(&relation))
    }

    /// Number of levels (1 + the maximum component level; 0 when empty).
    pub fn level_count(&self) -> usize {
        self.components
            .iter()
            .map(|c| c.level + 1)
            .max()
            .unwrap_or(0)
    }
}

/// A bundle of the most commonly needed facts about a program.
#[derive(Clone, Debug)]
pub struct ProgramInfo {
    /// The features the program uses.
    pub features: FeatureSet,
    /// The IDB relation names.
    pub idb: BTreeSet<RelName>,
    /// The EDB relation names.
    pub edb: BTreeSet<RelName>,
    /// The dependency graph over IDB relation names.
    pub dependencies: DependencyGraph,
    /// Arity of every relation name (consistent across the program).
    pub arities: BTreeMap<RelName, usize>,
}

impl ProgramInfo {
    /// Analyse a program, checking safety, arity consistency, and stratification.
    ///
    /// # Errors
    /// Any violation of those three well-formedness conditions.
    pub fn analyse(program: &Program) -> Result<ProgramInfo, SyntaxError> {
        check_safety(program)?;
        check_stratification(program)?;
        let arities = program.relation_arities()?;
        Ok(ProgramInfo {
            features: FeatureSet::of_program(program),
            idb: program.idb_relations(),
            edb: program.edb_relations(),
            dependencies: DependencyGraph::of_program(program),
            arities,
        })
    }

    /// Is `program` a legal program *over* the given EDB relation names, i.e. do its
    /// EDB relations all come from that set and its IDB relations avoid it
    /// (Section 2.3)?
    pub fn is_over_edb(&self, edb: &BTreeSet<RelName>) -> bool {
        self.edb.is_subset(edb) && self.idb.is_disjoint(edb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_rule};
    use seqdl_core::rel;

    #[test]
    fn features_of_example_3_1_equation_variant() {
        let p = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        let f = FeatureSet::of_program(&p);
        assert_eq!(f.letters(), "E");
        assert!(!f.arity && !f.recursion && !f.negation && !f.packing && !f.intermediate);
    }

    #[test]
    fn features_of_example_3_1_recursive_variant() {
        let p =
            parse_program("T($x, $x) <- R($x).\nT($x, $y) <- T($x, $y·a).\nS($x) <- T($x, eps).")
                .unwrap();
        let f = FeatureSet::of_program(&p);
        assert_eq!(f.letters(), "AIR");
        assert!(f.arity && f.intermediate && f.recursion);
        assert!(!f.equations && !f.negation && !f.packing);
    }

    #[test]
    fn features_of_example_2_2_packing_program() {
        let p = parse_program(
            "T($u·<$s>·$v) <- R($u·$s·$v), S($s).\nA <- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.",
        )
        .unwrap();
        let f = FeatureSet::of_program(&p);
        // Uses E (nonequalities are negated equations), I (T and A), N, P.
        assert!(f.equations && f.intermediate && f.negation && f.packing);
        assert!(!f.arity && !f.recursion);
        assert_eq!(f.letters(), "EINP");
    }

    #[test]
    fn dependency_graph_detects_recursion_and_self_loops() {
        let recursive = parse_program("T($x·a) <- T($x).\nT($x) <- R($x).").unwrap();
        assert!(DependencyGraph::of_program(&recursive).has_cycle());

        let nonrec = parse_program("T($x) <- R($x).\nS($x) <- T($x).").unwrap();
        let g = DependencyGraph::of_program(&nonrec);
        assert!(!g.has_cycle());
        assert_eq!(g.successors(rel("S")), BTreeSet::from([rel("T")]));
        assert_eq!(g.successors(rel("T")), BTreeSet::new());
        assert!(g.reachable_from(rel("S")).contains(&rel("T")));
        assert!(!g.is_recursive_relation(rel("S")));
        assert_eq!(g.nodes().count(), 2);

        let mutual = parse_program("P($x) <- Q($x).\nQ($x) <- P($x·a).\nP($x) <- R($x).").unwrap();
        let g = DependencyGraph::of_program(&mutual);
        assert!(g.has_cycle());
        assert!(g.is_recursive_relation(rel("P")));
    }

    #[test]
    fn limited_variables_follow_the_inductive_definition() {
        // $x is limited by R($x); $z becomes limited through the equation a·$x = $z.
        let r = parse_rule("S($z) <- R($x), a·$x = $z.").unwrap();
        let lim = limited_vars(&r);
        assert!(lim.contains(&Var::path("x")));
        assert!(lim.contains(&Var::path("z")));
        assert!(is_safe(&r));

        // $y only occurs in the head: unsafe.
        let r = parse_rule("S($y) <- R($x).").unwrap();
        assert!(!is_safe(&r));

        // A variable that only occurs in a negated predicate is not limited.
        let r = parse_rule("S($x) <- R($x), !Q($y).").unwrap();
        assert!(!is_safe(&r));

        // Chained equations limit transitively: $x limits $y, $y limits $z.
        let r = parse_rule("S($z) <- R($x), $y = $x·a, $z = b·$y.").unwrap();
        assert!(is_safe(&r));

        // An equation between two unlimited sides limits nothing.
        let r = parse_rule("S($y) <- R($x), $y = $z.").unwrap();
        assert!(!is_safe(&r));
    }

    #[test]
    fn example_programs_from_the_paper_are_safe() {
        let sources = [
            "S(@q·$x, eps) <- R($x), N(@q).\nS(@q2·$y, $z·@a) <- S(@q1·@a·$y, $z), D(@q1, @a, @q2).\nA($x) <- S(@q, $x), F(@q).",
            "T($u·<$s>·$v) <- R($u·$s·$v), S($s).\nA <- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.",
            "T($x, eps) <- R($x).\nT($x, $y·@u) <- T($x·@u, $y).\nS($x) <- T(eps, $x).",
            "T(eps, $x, $x) <- R($x).\nT($y·$x, $x, $z) <- T($y, $x, a·$z).\nS($y) <- T($y, $x, eps).",
        ];
        for src in sources {
            let p = parse_program(src).unwrap();
            assert!(check_safety(&p).is_ok(), "not safe: {src}");
        }
    }

    #[test]
    fn safety_error_reports_the_unlimited_variables() {
        let p = parse_program("S($y) <- R($x).").unwrap();
        match check_safety(&p) {
            Err(SyntaxError::UnsafeRule { unlimited, .. }) => {
                assert_eq!(unlimited, vec!["$y".to_string()]);
            }
            other => panic!("expected UnsafeRule, got {other:?}"),
        }
    }

    #[test]
    fn stratification_checks_negated_heads() {
        // Negating a relation defined in the same stratum is rejected.
        let bad = parse_program("T($x) <- R($x).\nS($x) <- R($x), !T($x).").unwrap();
        assert!(check_stratification(&bad).is_err());

        // Splitting into two strata fixes it.
        let good = parse_program("T($x) <- R($x).\n---\nS($x) <- R($x), !T($x).").unwrap();
        assert!(check_stratification(&good).is_ok());

        // Negating a relation defined in a *later* stratum is also rejected.
        let bad = parse_program("S($x) <- R($x), !T($x).\n---\nT($x) <- R($x).").unwrap();
        assert!(check_stratification(&bad).is_err());

        // Negated EDB predicates are fine.
        let edb_neg = parse_program("S($x) <- R($x), !B($x).").unwrap();
        assert!(check_stratification(&edb_neg).is_ok());
    }

    #[test]
    fn semipositivity_distinguishes_edb_and_idb_negation() {
        let semi = parse_program("S($x) <- R($x), !B($x).").unwrap();
        assert!(is_semipositive(&semi));
        let not_semi = parse_program("T($x) <- R($x).\n---\nS($x) <- R($x), !T($x).").unwrap();
        assert!(!is_semipositive(&not_semi));
        // Negated equations do not affect semipositivity.
        let with_neq = parse_program("S(@x) <- R(@x·@y), @x != @y.").unwrap();
        assert!(is_semipositive(&with_neq));
    }

    #[test]
    fn program_info_bundles_the_analyses() {
        let p = parse_program("T($x) <- R($x).\n---\nS($x) <- T($x), !B($x).").unwrap();
        let info = ProgramInfo::analyse(&p).unwrap();
        assert_eq!(info.idb, BTreeSet::from([rel("S"), rel("T")]));
        assert_eq!(info.edb, BTreeSet::from([rel("B"), rel("R")]));
        assert!(info.features.intermediate);
        assert!(info.features.negation);
        assert_eq!(info.arities[&rel("S")], 1);
        assert!(info.is_over_edb(&BTreeSet::from([rel("R"), rel("B"), rel("X")])));
        assert!(!info.is_over_edb(&BTreeSet::from([rel("R")])));

        // An unsafe program is rejected by analyse().
        let bad = parse_program("S($y) <- R($x).").unwrap();
        assert!(ProgramInfo::analyse(&bad).is_err());
    }

    #[test]
    fn precedence_graph_orients_edges_dependency_first() {
        let p = parse_program("T($x) <- R($x).\nS($x) <- T($x).").unwrap();
        let g = PrecedenceGraph::of_program(&p);
        assert!(g.has_edge(rel("T"), rel("S")));
        assert!(!g.has_edge(rel("S"), rel("T")));
        // EDB relations are not nodes and produce no edges.
        assert!(!g.has_edge(rel("R"), rel("T")));
        assert_eq!(g.nodes().len(), 2);
    }

    #[test]
    fn condensation_orders_components_topologically() {
        // P and Q are mutually recursive; S reads Q; T is independent of all.
        let p = parse_program(
            "P($x) <- Q($x).\nQ($x) <- P($x·a).\nQ($x) <- R($x).\nS($x) <- Q($x).\nT($x) <- R($x).",
        )
        .unwrap();
        let c = PrecedenceGraph::of_program(&p).condensation();
        assert_eq!(c.components.len(), 3);
        let pq = c.component_of(rel("P")).unwrap();
        assert_eq!(c.component_of(rel("Q")), Some(pq));
        assert!(c.components[pq].recursive);
        assert_eq!(
            c.components[pq].members,
            BTreeSet::from([rel("P"), rel("Q")])
        );
        let s = c.component_of(rel("S")).unwrap();
        let t = c.component_of(rel("T")).unwrap();
        assert!(s > pq, "S must come after the {{P, Q}} component");
        assert!(!c.components[s].recursive);
        assert!(!c.components[t].recursive);
        // Levels: {P,Q} and T are independent roots; S is one level above {P,Q}.
        assert_eq!(c.components[pq].level, 0);
        assert_eq!(c.components[t].level, 0);
        assert_eq!(c.components[s].level, 1);
        assert_eq!(c.level_count(), 2);
    }

    #[test]
    fn self_loops_make_singleton_components_recursive() {
        let p = parse_program("T($x) <- R($x).\nT($x) <- T($x·a).\nS($x) <- T($x).").unwrap();
        let c = PrecedenceGraph::of_program(&p).condensation();
        let t = c.component_of(rel("T")).unwrap();
        let s = c.component_of(rel("S")).unwrap();
        assert!(c.components[t].recursive);
        assert!(!c.components[s].recursive);
        assert!(t < s);
        assert_eq!(c.component_of(rel("Absent")), None);
    }

    #[test]
    fn graph_stratifiability_rejects_recursion_through_negation() {
        // Negation on an acyclic path passes the *graph* check even within one
        // declared stratum — sound only under condensation-ordered evaluation
        // (see the check_stratifiable docs); check_stratification still rejects
        // this program for the declared-stratum engine.
        let acyclic = parse_program("T($x) <- R($x).\nS($x) <- R($x), !T($x).").unwrap();
        let g = PrecedenceGraph::of_program(&acyclic);
        assert!(g.has_negative_edge(rel("T"), rel("S")));
        assert!(g.check_stratifiable().is_ok());

        // Negation inside a cycle is recursion through negation.
        let cyclic = parse_program("T($x) <- S($x).\nS($x) <- R($x), !T($x).").unwrap();
        assert!(PrecedenceGraph::of_program(&cyclic)
            .check_stratifiable()
            .is_err());

        // Purely positive recursion is stratifiable.
        let positive = parse_program("T($x) <- R($x).\nT($x) <- T($x·a).").unwrap();
        assert!(PrecedenceGraph::of_program(&positive)
            .check_stratifiable()
            .is_ok());
    }

    #[test]
    fn feature_display_uses_set_notation() {
        let p = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        let f = FeatureSet::of_program(&p);
        assert_eq!(f.to_string(), "{E}");
        let empty = FeatureSet::default();
        assert_eq!(empty.to_string(), "{}");
    }
}
