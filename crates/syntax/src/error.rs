//! Errors produced by parsing and well-formedness checks.

use std::fmt;

/// Errors raised by the parser and the static well-formedness checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyntaxError {
    /// A lexical error at the given byte offset.
    Lex {
        /// Byte offset in the input.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// A parse error at the given byte offset.
    Parse {
        /// Byte offset in the input.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// A rule is not safe: the listed variables are not limited (Section 2.2).
    UnsafeRule {
        /// Rendering of the offending rule.
        rule: String,
        /// Names of the unlimited variables.
        unlimited: Vec<String>,
    },
    /// The program violates stratified negation (Section 2.2).
    NotStratified {
        /// Human-readable description of the violation.
        message: String,
    },
    /// A relation name is used with inconsistent arities.
    InconsistentArity {
        /// The relation name.
        relation: String,
        /// One observed arity.
        first: usize,
        /// A conflicting observed arity.
        second: usize,
    },
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyntaxError::Lex { offset, message } => {
                write!(f, "lexical error at byte {offset}: {message}")
            }
            SyntaxError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            SyntaxError::UnsafeRule { rule, unlimited } => write!(
                f,
                "unsafe rule `{rule}`: variables not limited: {}",
                unlimited.join(", ")
            ),
            SyntaxError::NotStratified { message } => {
                write!(f, "program is not stratified: {message}")
            }
            SyntaxError::InconsistentArity {
                relation,
                first,
                second,
            } => write!(
                f,
                "relation {relation} used with inconsistent arities {first} and {second}"
            ),
        }
    }
}

impl std::error::Error for SyntaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SyntaxError::UnsafeRule {
            rule: "S($x) <- .".into(),
            unlimited: vec!["$x".into()],
        };
        assert!(e.to_string().contains("$x"));
        let e = SyntaxError::Parse {
            offset: 7,
            message: "expected `)`".into(),
        };
        assert!(e.to_string().contains("byte 7"));
    }
}
