//! Valuations: assignments of atomic values to atomic variables and paths to path
//! variables (Section 2.3).

use crate::term::{PathExpr, Term, Var, VarKind};
use seqdl_core::{AtomId, Path, PathView, Segment, Value};
use std::cell::RefCell;
use std::fmt;

thread_local! {
    /// Reusable grounding buffer for [`Valuation::apply`]; nested packed
    /// subexpressions use their own vectors, so `segments_into` never
    /// re-enters `apply` while the buffer is borrowed.
    static APPLY_SCRATCH: RefCell<Vec<Segment>> = const { RefCell::new(Vec::new()) };
}

/// What a variable is bound to: an atomic value (for `@x`) or a path (for `$x`).
///
/// Path bindings are [`PathView`]s — possibly unregistered cuts of an interned
/// path.  The backtracking matcher binds every speculative prefix cut it
/// enumerates, so holding views (compared by content over shared storage)
/// keeps rejected candidates out of the global store; a binding is interned
/// exactly when it reaches an emission or grounding ([`Binding::as_path`],
/// [`Valuation::apply`], [`Valuation::segments_into`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Binding {
    /// Binding of an atomic variable.
    Atom(AtomId),
    /// Binding of a path variable.
    Path(PathView),
}

impl Binding {
    /// View the binding as a path (an atomic value is the length-1 path holding
    /// it).  Interns the content if the underlying view was a speculative cut.
    pub fn as_path(&self) -> Path {
        match self {
            Binding::Atom(a) => Path::singleton(Value::Atom(*a)),
            Binding::Path(v) => v.to_path(),
        }
    }

    /// Does the binding's shape fit the given variable kind?
    pub fn fits(&self, kind: VarKind) -> bool {
        matches!(
            (self, kind),
            (Binding::Atom(_), VarKind::Atom) | (Binding::Path(_), VarKind::Path)
        )
    }
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Binding::Atom(a) => write!(f, "{}", Value::Atom(*a)),
            Binding::Path(p) => write!(f, "{p}"),
        }
    }
}

/// A valuation ν: a finite map from variables to bindings of the right kind.
///
/// A valuation is *appropriate* for a syntactic construct if it is defined on all
/// variables of that construct; [`Valuation::apply`] returns `None` otherwise.
///
/// Rules bind a handful of variables, and the backtracking matcher binds and
/// unbinds on a single valuation millions of times, in strictly LIFO order.
/// The map is therefore stored as a small *unsorted* vector in binding order:
/// a bind is a push, the matcher's unbind is a pop, and lookups scan from the
/// most recently bound end (which is also the variable most likely to be
/// queried next).  Equality is map equality, independent of binding order,
/// and [`Valuation::iter`] yields variable order, so observable behaviour is
/// unchanged.
#[derive(Clone, Debug, Default)]
pub struct Valuation {
    entries: Vec<(Var, Binding)>,
}

impl PartialEq for Valuation {
    fn eq(&self, other: &Valuation) -> bool {
        self.entries.len() == other.entries.len()
            && self.entries.iter().all(|(v, b)| other.get(*v) == Some(b))
    }
}

impl Eq for Valuation {}

impl Valuation {
    /// The empty valuation.
    pub fn new() -> Valuation {
        Valuation::default()
    }

    fn position(&self, var: Var) -> Option<usize> {
        // Scan from the most recent binding: the matcher queries what it just
        // bound far more often than early bindings.
        self.entries.iter().rposition(|(v, _)| *v == var)
    }

    /// Bind `var` to `binding`.
    ///
    /// # Panics
    /// Panics if the binding's shape does not fit the variable's kind (this is a
    /// programming error in the caller, never a data error).
    pub fn bind(&mut self, var: Var, binding: Binding) {
        assert!(
            binding.fits(var.kind),
            "binding {binding} does not fit variable {var}"
        );
        match self.position(var) {
            Some(ix) => self.entries[ix].1 = binding,
            None => self.entries.push((var, binding)),
        }
    }

    /// Bind an atomic variable to an atomic value.
    pub fn bind_atom(&mut self, var: Var, value: AtomId) {
        self.bind(var, Binding::Atom(value));
    }

    /// Bind a variable the caller knows is unbound (skips the overwrite
    /// scan).  The backtracking matcher pairs this with
    /// [`Valuation::pop_binding`].
    ///
    /// # Panics
    /// Panics if the binding's shape does not fit the variable's kind; in
    /// debug builds, also if `var` is already bound.
    pub fn bind_new(&mut self, var: Var, binding: Binding) {
        assert!(
            binding.fits(var.kind),
            "binding {binding} does not fit variable {var}"
        );
        debug_assert!(!self.contains(var), "bind_new on bound variable {var}");
        self.entries.push((var, binding));
    }

    /// Remove the *most recent* binding, which the caller knows is `var` —
    /// the O(1) LIFO twin of [`Valuation::bind_new`].
    ///
    /// # Panics
    /// In debug builds, panics if the most recent binding is not `var`.
    pub fn pop_binding(&mut self, var: Var) {
        debug_assert_eq!(
            self.entries.last().map(|(v, _)| *v),
            Some(var),
            "pop_binding out of LIFO order"
        );
        self.entries.pop();
    }

    /// Bind a path variable to a path.
    pub fn bind_path(&mut self, var: Var, path: Path) {
        self.bind(var, Binding::Path(path.into()));
    }

    /// A copy of this valuation with one extra binding.
    pub fn extended(&self, var: Var, binding: Binding) -> Valuation {
        let mut out = self.clone();
        out.bind(var, binding);
        out
    }

    /// Remove the binding of `var`, returning it if there was one.  Together with
    /// [`Valuation::bind`] this lets backtracking matchers explore extensions on a
    /// single valuation instead of cloning one per candidate.  The matcher
    /// unbinds in LIFO order, so this is almost always a pop.
    pub fn unbind(&mut self, var: Var) -> Option<Binding> {
        let ix = self.position(var)?;
        if ix + 1 == self.entries.len() {
            return self.entries.pop().map(|(_, b)| b);
        }
        Some(self.entries.remove(ix).1)
    }

    /// The binding of `var`, if any.
    pub fn get(&self, var: Var) -> Option<&Binding> {
        self.position(var).map(|ix| &self.entries[ix].1)
    }

    /// Is `var` bound?
    pub fn contains(&self, var: Var) -> bool {
        self.position(var).is_some()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Drop every binding added after the valuation had `len` entries — the
    /// bulk LIFO twin of [`Valuation::pop_binding`], used by frame-based
    /// matchers that record a depth on entry and backtrack to it wholesale.
    ///
    /// # Panics
    /// In debug builds, panics if `len` exceeds the current length.
    pub fn truncate(&mut self, len: usize) {
        debug_assert!(len <= self.entries.len(), "truncate past the binding end");
        self.entries.truncate(len);
    }

    /// The `(variable, binding)` pairs added after the valuation had `start`
    /// entries, in binding order — the delta a frame-based matcher buffers
    /// from a nested enumeration and replays later with [`Valuation::bind_new`].
    pub fn bindings_since(&self, start: usize) -> &[(Var, Binding)] {
        &self.entries[start..]
    }

    /// Is the valuation empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(variable, binding)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &Binding)> + '_ {
        let mut sorted: Vec<&(Var, Binding)> = self.entries.iter().collect();
        sorted.sort_by_key(|(v, _)| *v);
        sorted.into_iter().map(|(v, b)| (*v, b))
    }

    /// Is this valuation appropriate for (defined on all variables of) `expr`?
    pub fn is_appropriate_for(&self, expr: &PathExpr) -> bool {
        expr.vars().iter().all(|v| self.contains(*v))
    }

    /// Apply the valuation to a path expression, producing the denoted path.
    ///
    /// Returns `None` if some variable of the expression is unbound.
    pub fn apply(&self, expr: &PathExpr) -> Option<Path> {
        // Single-term expressions denote an already interned path: reuse its
        // id instead of copying and re-hashing the content.  `$x` heads and
        // goal filters hit this on every firing.
        match expr.terms() {
            [] => return Some(Path::empty()),
            [Term::Const(a)] => return Some(Path::singleton(Value::Atom(*a))),
            [Term::Var(v)] => {
                return match self.get(*v)? {
                    Binding::Atom(a) => Some(Path::singleton(Value::Atom(*a))),
                    Binding::Path(p) => Some(p.to_path()),
                }
            }
            _ => {}
        }
        // Ground the expression as a *segment sequence* — one entry per term,
        // each the interned identity of what the term denotes — and resolve it
        // through the store's composition memo: re-deriving an already known
        // path hashes one id per term instead of copying and re-hashing the
        // concatenated content.
        APPLY_SCRATCH.with(|scratch| {
            let mut segments = scratch.borrow_mut();
            segments.clear();
            self.segments_into(expr, &mut segments)?;
            Some(Path::from_segments(&segments))
        })
    }

    /// Append the segment sequence `expr` denotes under this valuation — one
    /// [`Segment`] per term, each the interned identity of what the term
    /// denotes.  `None` if some variable is unbound.  Because the per-term
    /// segment count is static, a rule head's full segment sequence is an
    /// unambiguous identity for the derived tuple: the evaluator keys its
    /// emit-dedup memo on it without grounding anything.
    pub fn segments_into(&self, expr: &PathExpr, out: &mut Vec<Segment>) -> Option<()> {
        for term in expr.terms() {
            match term {
                Term::Const(a) => out.push(Segment::Value(Value::Atom(*a))),
                Term::Var(v) => match self.get(*v)? {
                    Binding::Atom(a) => out.push(Segment::Value(Value::Atom(*a))),
                    Binding::Path(p) => out.push(p.as_segment()),
                },
                Term::Packed(inner) => {
                    let mut nested = Vec::new();
                    self.segments_into(inner, &mut nested)?;
                    out.push(Segment::Value(Value::packed(Path::from_segments(&nested))));
                }
            }
        }
        Some(())
    }

    /// Restrict the valuation to the given variables.
    pub fn restricted_to(&self, vars: &[Var]) -> Valuation {
        Valuation {
            entries: self
                .entries
                .iter()
                .filter(|(v, _)| vars.contains(v))
                .cloned()
                .collect(),
        }
    }
}

impl fmt::Display for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (v, b)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v} -> {b}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{atom, path_of};

    #[test]
    fn applying_a_valuation_substitutes_and_flattens() {
        // ν($x) = b·c, ν(@q) = q0; apply to @q·$x·a.
        let x = Var::path("x");
        let q = Var::atom("q");
        let mut nu = Valuation::new();
        nu.bind_path(x, path_of(&["b", "c"]));
        nu.bind_atom(q, atom("q0"));
        let e = PathExpr::from_terms([Term::Var(q), Term::Var(x), Term::constant("a")]);
        assert!(nu.is_appropriate_for(&e));
        assert_eq!(nu.apply(&e), Some(path_of(&["q0", "b", "c", "a"])));
    }

    #[test]
    fn packing_in_expressions_packs_the_result() {
        let x = Var::path("x");
        let mut nu = Valuation::new();
        nu.bind_path(x, path_of(&["a", "b"]));
        let e = PathExpr::from_terms([Term::constant("c"), Term::Packed(PathExpr::var(x))]);
        let p = nu.apply(&e).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.to_string(), "c·<a·b>");
    }

    #[test]
    fn missing_bindings_make_apply_fail() {
        let e = PathExpr::var(Var::path("unbound"));
        let nu = Valuation::new();
        assert!(!nu.is_appropriate_for(&e));
        assert_eq!(nu.apply(&e), None);
    }

    #[test]
    fn empty_path_binding_vanishes_in_concatenation() {
        let x = Var::path("x");
        let mut nu = Valuation::new();
        nu.bind_path(x, Path::empty());
        let e = PathExpr::from_terms([Term::constant("a"), Term::Var(x), Term::constant("b")]);
        assert_eq!(nu.apply(&e), Some(path_of(&["a", "b"])));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn binding_kind_mismatch_panics() {
        let mut nu = Valuation::new();
        nu.bind(Var::atom("x"), Binding::Path(path_of(&["a", "b"]).into()));
    }

    #[test]
    fn extended_and_restricted() {
        let x = Var::path("x");
        let y = Var::path("y");
        let mut nu = Valuation::new();
        nu.bind_path(x, path_of(&["a"]));
        let nu2 = nu.extended(y, Binding::Path(path_of(&["b"]).into()));
        assert_eq!(nu2.len(), 2);
        assert_eq!(nu.len(), 1);
        let only_y = nu2.restricted_to(&[y]);
        assert!(only_y.contains(y));
        assert!(!only_y.contains(x));
    }

    #[test]
    fn binding_as_path_identifies_values_with_singletons() {
        assert_eq!(
            Binding::Atom(atom("a")).as_path(),
            Path::singleton(Value::Atom(atom("a")))
        );
        assert_eq!(Binding::Path(Path::empty().into()).as_path(), Path::empty());
    }

    #[test]
    fn display_is_readable() {
        let mut nu = Valuation::new();
        nu.bind_atom(Var::atom("q"), atom("q0"));
        assert_eq!(nu.to_string(), "{@q -> q0}");
    }
}
