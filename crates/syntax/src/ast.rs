//! Abstract syntax: predicates, equations, literals, rules, strata, programs
//! (Section 2.2).

use crate::error::SyntaxError;
use crate::term::{PathExpr, Var};
use seqdl_core::RelName;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::str::FromStr;

/// A predicate `P(e1, …, en)`: a relation name applied to path expressions.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Predicate {
    /// The relation name `P`.
    pub relation: RelName,
    /// The component path expressions `e1, …, en`.
    pub args: Vec<PathExpr>,
}

impl Predicate {
    /// Build a predicate.
    pub fn new(relation: RelName, args: Vec<PathExpr>) -> Predicate {
        Predicate { relation, args }
    }

    /// A nullary predicate `P`.
    pub fn nullary(relation: RelName) -> Predicate {
        Predicate {
            relation,
            args: Vec::new(),
        }
    }

    /// The predicate's arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// All variables occurring in the predicate, in order of first occurrence.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for a in &self.args {
            for v in a.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Does packing occur in any component?
    pub fn has_packing(&self) -> bool {
        self.args.iter().any(PathExpr::has_packing)
    }

    /// Substitute variables by expressions in all components.
    pub fn substitute(&self, map: &BTreeMap<Var, PathExpr>) -> Predicate {
        Predicate {
            relation: self.relation,
            args: self.args.iter().map(|a| a.substitute(map)).collect(),
        }
    }

    /// Rename variables in all components.
    pub fn rename_vars(&self, map: &BTreeMap<Var, Var>) -> Predicate {
        Predicate {
            relation: self.relation,
            args: self.args.iter().map(|a| a.rename_vars(map)).collect(),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.relation)?;
        if self.args.is_empty() {
            return Ok(());
        }
        f.write_str("(")?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

/// An equation `e1 = e2` between path expressions.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Equation {
    /// Left-hand side.
    pub lhs: PathExpr,
    /// Right-hand side.
    pub rhs: PathExpr,
}

impl Equation {
    /// Build an equation.
    pub fn new(lhs: PathExpr, rhs: PathExpr) -> Equation {
        Equation { lhs, rhs }
    }

    /// All variables occurring in the equation.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = self.lhs.vars();
        for v in self.rhs.vars() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// Does packing occur on either side?
    pub fn has_packing(&self) -> bool {
        self.lhs.has_packing() || self.rhs.has_packing()
    }

    /// Substitute variables by expressions on both sides.
    pub fn substitute(&self, map: &BTreeMap<Var, PathExpr>) -> Equation {
        Equation {
            lhs: self.lhs.substitute(map),
            rhs: self.rhs.substitute(map),
        }
    }
}

impl fmt::Display for Equation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.lhs, self.rhs)
    }
}

/// An atom: a predicate or an equation (Section 2.2).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Atom {
    /// A predicate atom.
    Pred(Predicate),
    /// An equation atom.
    Eq(Equation),
}

impl Atom {
    /// All variables occurring in the atom.
    pub fn vars(&self) -> Vec<Var> {
        match self {
            Atom::Pred(p) => p.vars(),
            Atom::Eq(e) => e.vars(),
        }
    }

    /// Does packing occur in the atom?
    pub fn has_packing(&self) -> bool {
        match self {
            Atom::Pred(p) => p.has_packing(),
            Atom::Eq(e) => e.has_packing(),
        }
    }

    /// Substitute variables by expressions.
    pub fn substitute(&self, map: &BTreeMap<Var, PathExpr>) -> Atom {
        match self {
            Atom::Pred(p) => Atom::Pred(p.substitute(map)),
            Atom::Eq(e) => Atom::Eq(e.substitute(map)),
        }
    }

    /// The predicate, if this atom is one.
    pub fn as_predicate(&self) -> Option<&Predicate> {
        match self {
            Atom::Pred(p) => Some(p),
            Atom::Eq(_) => None,
        }
    }

    /// The equation, if this atom is one.
    pub fn as_equation(&self) -> Option<&Equation> {
        match self {
            Atom::Eq(e) => Some(e),
            Atom::Pred(_) => None,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Pred(p) => fmt::Display::fmt(p, f),
            Atom::Eq(e) => fmt::Display::fmt(e, f),
        }
    }
}

/// A literal: an atom or a negated atom.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Literal {
    /// `true` for a positive literal, `false` for a negated one.
    pub positive: bool,
    /// The underlying atom.
    pub atom: Atom,
}

impl Literal {
    /// A positive predicate literal.
    pub fn pred(p: Predicate) -> Literal {
        Literal {
            positive: true,
            atom: Atom::Pred(p),
        }
    }

    /// A negated predicate literal.
    pub fn not_pred(p: Predicate) -> Literal {
        Literal {
            positive: false,
            atom: Atom::Pred(p),
        }
    }

    /// A positive equation literal.
    pub fn eq(lhs: PathExpr, rhs: PathExpr) -> Literal {
        Literal {
            positive: true,
            atom: Atom::Eq(Equation::new(lhs, rhs)),
        }
    }

    /// A nonequality `e1 ≠ e2` (negated equation).
    pub fn neq(lhs: PathExpr, rhs: PathExpr) -> Literal {
        Literal {
            positive: false,
            atom: Atom::Eq(Equation::new(lhs, rhs)),
        }
    }

    /// Build a positive literal from an atom.
    pub fn positive(atom: Atom) -> Literal {
        Literal {
            positive: true,
            atom,
        }
    }

    /// Build a negative literal from an atom.
    pub fn negative(atom: Atom) -> Literal {
        Literal {
            positive: false,
            atom,
        }
    }

    /// All variables of the literal.
    pub fn vars(&self) -> Vec<Var> {
        self.atom.vars()
    }

    /// Is this a (possibly negated) predicate literal?
    pub fn is_predicate(&self) -> bool {
        matches!(self.atom, Atom::Pred(_))
    }

    /// Is this a (possibly negated) equation literal?
    pub fn is_equation(&self) -> bool {
        matches!(self.atom, Atom::Eq(_))
    }

    /// Substitute variables by expressions.
    pub fn substitute(&self, map: &BTreeMap<Var, PathExpr>) -> Literal {
        Literal {
            positive: self.positive,
            atom: self.atom.substitute(map),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            fmt::Display::fmt(&self.atom, f)
        } else if let Atom::Eq(e) = &self.atom {
            write!(f, "{} != {}", e.lhs, e.rhs)
        } else {
            write!(f, "!{}", self.atom)
        }
    }
}

/// A rule `H ← B`: a head predicate and a body (finite set of literals).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Rule {
    /// The head predicate.
    pub head: Predicate,
    /// The body literals.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Build a rule.
    pub fn new(head: Predicate, body: Vec<Literal>) -> Rule {
        Rule { head, body }
    }

    /// A bodiless rule `H ← .` (a fact-producing rule).
    pub fn fact(head: Predicate) -> Rule {
        Rule {
            head,
            body: Vec::new(),
        }
    }

    /// All variables occurring in the rule, in order of first occurrence.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for v in self.head.vars() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        for lit in &self.body {
            for v in lit.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// The positive predicate atoms of the body.
    pub fn positive_body_predicates(&self) -> Vec<&Predicate> {
        self.body
            .iter()
            .filter(|l| l.positive)
            .filter_map(|l| l.atom.as_predicate())
            .collect()
    }

    /// The negated predicate atoms of the body.
    pub fn negative_body_predicates(&self) -> Vec<&Predicate> {
        self.body
            .iter()
            .filter(|l| !l.positive)
            .filter_map(|l| l.atom.as_predicate())
            .collect()
    }

    /// The positive equations of the body.
    pub fn positive_body_equations(&self) -> Vec<&Equation> {
        self.body
            .iter()
            .filter(|l| l.positive)
            .filter_map(|l| l.atom.as_equation())
            .collect()
    }

    /// The negated equations (nonequalities) of the body.
    pub fn negative_body_equations(&self) -> Vec<&Equation> {
        self.body
            .iter()
            .filter(|l| !l.positive)
            .filter_map(|l| l.atom.as_equation())
            .collect()
    }

    /// Relation names occurring in body predicates (positive or negated).
    pub fn body_relations(&self) -> BTreeSet<RelName> {
        self.body
            .iter()
            .filter_map(|l| l.atom.as_predicate())
            .map(|p| p.relation)
            .collect()
    }

    /// Does packing occur anywhere in the rule?
    pub fn has_packing(&self) -> bool {
        self.head.has_packing() || self.body.iter().any(|l| l.atom.has_packing())
    }

    /// Substitute variables by expressions throughout the rule.
    pub fn substitute(&self, map: &BTreeMap<Var, PathExpr>) -> Rule {
        Rule {
            head: self.head.substitute(map),
            body: self.body.iter().map(|l| l.substitute(map)).collect(),
        }
    }

    /// Rename variables throughout the rule.
    pub fn rename_vars(&self, map: &BTreeMap<Var, Var>) -> Rule {
        let subst: BTreeMap<Var, PathExpr> =
            map.iter().map(|(k, v)| (*k, PathExpr::var(*v))).collect();
        self.substitute(&subst)
    }

    /// Rename all variables of the rule with fresh names (used by folding and other
    /// rewrites to avoid capture).
    pub fn freshen_vars(&self, prefix: &str) -> Rule {
        let map: BTreeMap<Var, Var> = self
            .vars()
            .into_iter()
            .map(|v| {
                let fresh = match v.kind {
                    crate::term::VarKind::Atom => Var::fresh_atom(prefix),
                    crate::term::VarKind::Path => Var::fresh_path(prefix),
                };
                (v, fresh)
            })
            .collect();
        self.rename_vars(&map)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            f.write_str(" <- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        f.write_str(".")
    }
}

/// A stratum: a finite set of safe rules.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Stratum {
    /// The rules of the stratum.
    pub rules: Vec<Rule>,
}

impl Stratum {
    /// Build a stratum from rules.
    pub fn new(rules: Vec<Rule>) -> Stratum {
        Stratum { rules }
    }

    /// Relation names used in rule heads of this stratum.
    pub fn head_relations(&self) -> BTreeSet<RelName> {
        self.rules.iter().map(|r| r.head.relation).collect()
    }

    /// Relation names negated in bodies of this stratum.
    pub fn negated_relations(&self) -> BTreeSet<RelName> {
        self.rules
            .iter()
            .flat_map(|r| r.negative_body_predicates().into_iter().map(|p| p.relation))
            .collect()
    }
}

impl fmt::Display for Stratum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// A program: a finite sequence of strata, evaluated in order (Section 2.3).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The strata, in evaluation order.
    pub strata: Vec<Stratum>,
}

impl Program {
    /// Build a program from strata.
    pub fn new(strata: Vec<Stratum>) -> Program {
        Program { strata }
    }

    /// A program consisting of a single stratum.
    pub fn single_stratum(rules: Vec<Rule>) -> Program {
        Program {
            strata: vec![Stratum::new(rules)],
        }
    }

    /// Iterate over all rules, across strata, in order.
    pub fn rules(&self) -> impl Iterator<Item = &Rule> + '_ {
        self.strata.iter().flat_map(|s| s.rules.iter())
    }

    /// Total number of rules.
    pub fn rule_count(&self) -> usize {
        self.strata.iter().map(|s| s.rules.len()).sum()
    }

    /// Number of strata.
    pub fn stratum_count(&self) -> usize {
        self.strata.len()
    }

    /// The IDB relation names: names used in the head of some rule (Section 2.3).
    pub fn idb_relations(&self) -> BTreeSet<RelName> {
        self.rules().map(|r| r.head.relation).collect()
    }

    /// The EDB relation names: names used in bodies but never in a head.
    pub fn edb_relations(&self) -> BTreeSet<RelName> {
        let idb = self.idb_relations();
        self.rules()
            .flat_map(|r| r.body_relations())
            .filter(|r| !idb.contains(r))
            .collect()
    }

    /// All relation names mentioned anywhere in the program.
    pub fn all_relations(&self) -> BTreeSet<RelName> {
        let mut out = self.idb_relations();
        out.extend(self.rules().flat_map(|r| r.body_relations()));
        out
    }

    /// The arity of every relation, checking consistency across all occurrences.
    ///
    /// # Errors
    /// Fails with [`SyntaxError::InconsistentArity`] if a relation name occurs with
    /// two different arities.
    pub fn relation_arities(&self) -> Result<BTreeMap<RelName, usize>, SyntaxError> {
        let mut out: BTreeMap<RelName, usize> = BTreeMap::new();
        let mut observe = |rel: RelName, arity: usize| -> Result<(), SyntaxError> {
            match out.get(&rel) {
                Some(&known) if known != arity => Err(SyntaxError::InconsistentArity {
                    relation: rel.name(),
                    first: known,
                    second: arity,
                }),
                _ => {
                    out.insert(rel, arity);
                    Ok(())
                }
            }
        };
        for rule in self.rules() {
            observe(rule.head.relation, rule.head.arity())?;
            for lit in &rule.body {
                if let Atom::Pred(p) = &lit.atom {
                    observe(p.relation, p.arity())?;
                }
            }
        }
        Ok(out)
    }

    /// Append a stratum at the end of the program.
    pub fn push_stratum(&mut self, stratum: Stratum) {
        self.strata.push(stratum);
    }

    /// Apply a function to every rule, preserving the stratum structure.
    pub fn map_rules(&self, mut f: impl FnMut(&Rule) -> Rule) -> Program {
        Program {
            strata: self
                .strata
                .iter()
                .map(|s| Stratum::new(s.rules.iter().map(&mut f).collect()))
                .collect(),
        }
    }

    /// Apply a function mapping every rule to a set of replacement rules, preserving
    /// the stratum structure.
    pub fn flat_map_rules(&self, mut f: impl FnMut(&Rule) -> Vec<Rule>) -> Program {
        Program {
            strata: self
                .strata
                .iter()
                .map(|s| Stratum::new(s.rules.iter().flat_map(&mut f).collect()))
                .collect(),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.strata.iter().enumerate() {
            if i > 0 {
                f.write_str("\n---\n")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl FromStr for Program {
    type Err = SyntaxError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parser::parse_program(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;
    use seqdl_core::rel;

    fn only_as_rule() -> Rule {
        // S($x) <- R($x), a·$x = $x·a.
        let x = Var::path("x");
        Rule::new(
            Predicate::new(rel("S"), vec![PathExpr::var(x)]),
            vec![
                Literal::pred(Predicate::new(rel("R"), vec![PathExpr::var(x)])),
                Literal::eq(
                    PathExpr::from_terms([Term::constant("a"), Term::Var(x)]),
                    PathExpr::from_terms([Term::Var(x), Term::constant("a")]),
                ),
            ],
        )
    }

    #[test]
    fn rule_display_matches_concrete_syntax() {
        assert_eq!(only_as_rule().to_string(), "S($x) <- R($x), a·$x = $x·a.");
        let nullary = Rule::new(
            Predicate::nullary(rel("A")),
            vec![Literal::pred(Predicate::new(
                rel("T"),
                vec![PathExpr::var(Var::path("x"))],
            ))],
        );
        assert_eq!(nullary.to_string(), "A <- T($x).");
        let fact = Rule::fact(Predicate::new(rel("T"), vec![PathExpr::constant("a")]));
        assert_eq!(fact.to_string(), "T(a).");
    }

    #[test]
    fn negated_literals_display() {
        let l = Literal::not_pred(Predicate::new(
            rel("B"),
            vec![PathExpr::var(Var::atom("y"))],
        ));
        assert_eq!(l.to_string(), "!B(@y)");
        let ne = Literal::neq(PathExpr::var(Var::atom("a")), PathExpr::var(Var::atom("b")));
        assert_eq!(ne.to_string(), "@a != @b");
    }

    #[test]
    fn rule_accessors_classify_body_literals() {
        let r = only_as_rule();
        assert_eq!(r.positive_body_predicates().len(), 1);
        assert_eq!(r.positive_body_equations().len(), 1);
        assert!(r.negative_body_predicates().is_empty());
        assert!(r.negative_body_equations().is_empty());
        assert_eq!(r.vars(), vec![Var::path("x")]);
        assert_eq!(r.body_relations(), BTreeSet::from([rel("R")]));
        assert!(!r.has_packing());
    }

    #[test]
    fn program_idb_edb_classification() {
        let p = Program::single_stratum(vec![only_as_rule()]);
        assert_eq!(p.idb_relations(), BTreeSet::from([rel("S")]));
        assert_eq!(p.edb_relations(), BTreeSet::from([rel("R")]));
        assert_eq!(p.all_relations(), BTreeSet::from([rel("R"), rel("S")]));
        assert_eq!(p.rule_count(), 1);
        assert_eq!(p.stratum_count(), 1);
    }

    #[test]
    fn relation_arities_detects_inconsistency() {
        let x = Var::path("x");
        let good = Program::single_stratum(vec![only_as_rule()]);
        let arities = good.relation_arities().unwrap();
        assert_eq!(arities[&rel("S")], 1);
        assert_eq!(arities[&rel("R")], 1);

        let bad = Program::single_stratum(vec![
            only_as_rule(),
            Rule::new(
                Predicate::new(rel("S"), vec![PathExpr::var(x), PathExpr::var(x)]),
                vec![Literal::pred(Predicate::new(
                    rel("R"),
                    vec![PathExpr::var(x)],
                ))],
            ),
        ]);
        assert!(bad.relation_arities().is_err());
    }

    #[test]
    fn freshen_vars_renames_consistently() {
        let r = only_as_rule();
        let fresh = r.freshen_vars("f");
        assert_eq!(fresh.vars().len(), 1);
        assert_ne!(fresh.vars()[0], Var::path("x"));
        // Structure is preserved: still one predicate and one equation.
        assert_eq!(fresh.positive_body_predicates().len(), 1);
        assert_eq!(fresh.positive_body_equations().len(), 1);
    }

    #[test]
    fn substitution_distributes_over_rule() {
        let r = only_as_rule();
        let map = BTreeMap::from([(Var::path("x"), PathExpr::constant("a"))]);
        let s = r.substitute(&map);
        assert_eq!(s.to_string(), "S(a) <- R(a), a·a = a·a.");
    }

    #[test]
    fn program_display_separates_strata() {
        let mut p = Program::single_stratum(vec![only_as_rule()]);
        p.push_stratum(Stratum::new(vec![Rule::fact(Predicate::nullary(rel("A")))]));
        let text = p.to_string();
        assert!(text.contains("---"));
        assert_eq!(p.stratum_count(), 2);
    }

    #[test]
    fn map_and_flat_map_rules_preserve_strata() {
        let p = Program::single_stratum(vec![only_as_rule()]);
        let doubled = p.flat_map_rules(|r| vec![r.clone(), r.clone()]);
        assert_eq!(doubled.rule_count(), 2);
        assert_eq!(doubled.stratum_count(), 1);
        let identity = p.map_rules(Clone::clone);
        assert_eq!(identity, p);
    }
}
