//! # seqdl-syntax — syntax of Sequence Datalog
//!
//! This crate implements Section 2.2 of *Expressiveness within Sequence Datalog*
//! (PODS 2021): path expressions, predicates, equations, literals, rules, strata,
//! and programs — together with a concrete-syntax parser and pretty-printer, and the
//! static analyses the rest of the paper relies on:
//!
//! * **limited variables** and rule **safety** (Section 2.2);
//! * the **dependency graph**, recursion detection, EDB/IDB classification,
//!   semipositivity, and stratification checks (Sections 2.2–2.3);
//! * **feature detection** for the six features A, E, I, N, P, R (Section 3).
//!
//! ## Concrete syntax
//!
//! The parser accepts the paper's notation, ASCII-fied:
//!
//! ```text
//! % Example 3.1: all paths from R consisting exclusively of a's.
//! S($x) <- R($x), a·$x = $x·a.
//! ```
//!
//! * `@x` is an atomic variable, `$x` a path variable;
//! * `·` or an immediately-adjoining `.` is concatenation, `eps` the empty path;
//! * `<e>` is packing;
//! * `<-`, `:-` or `←` separates head from body; literals are comma-separated;
//! * `!`, `~` or `¬` negates an atom, `e1 != e2` is a nonequality;
//! * a rule ends with `.`; strata are separated by a line of dashes `---`;
//! * `%`, `#` or `//` start a comment that runs to the end of the line.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adornment;
pub mod analysis;
pub mod ast;
pub mod error;
pub mod parser;
pub mod term;
pub mod valuation;

pub use adornment::{first_value_expr, guard_exprs, sip_order, Adornment, ColumnBinding, SipStep};
pub use analysis::{
    Condensation, DependencyGraph, FeatureSet, PrecedenceGraph, ProgramInfo, SccInfo,
};
pub use ast::{Atom, Equation, Literal, Predicate, Program, Rule, Stratum};
pub use error::SyntaxError;
pub use parser::{parse_expr, parse_program, parse_rule};
pub use term::{PathExpr, Term, Var, VarKind};
pub use valuation::{Binding, Valuation};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_api_smoke_test() {
        let program = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        assert_eq!(program.rule_count(), 1);
        let features = FeatureSet::of_program(&program);
        assert!(features.equations);
        assert!(!features.recursion);
    }
}
