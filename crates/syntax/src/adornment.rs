//! Adornments: binding patterns for goal-directed (magic-set) evaluation.
//!
//! A *goal* is a predicate pattern such as `Reach(a·b·$x)` — a question asked of
//! one relation instead of a whole-instance fixpoint.  Demand-driven evaluation
//! rewrites the program so that only derivations relevant to the goal fire; the
//! static information driving that rewrite is an **adornment**: per argument
//! column, is anything about the column's value known at call time?
//!
//! In classical Datalog an adorned column is *bound* (its whole value is known)
//! or *free*.  Sequence Datalog arguments are path *expressions*, so a column is
//! usually only partially known (`a·b·$x` fixes a prefix, not the path).  The
//! storage layer indexes every column by a prefix trie over its leading values
//! ([`seqdl_core::PrefixTrie`]), rooted at the path's *first value*, so a
//! guaranteed first value is the granularity that decides whether a column can
//! be probed at all (the engine's planner then extends the same walk to the
//! full statically-known prefix): here [`ColumnBinding::Bound`] means "the
//! first value of the column's path is known when the predicate is matched".
//! A column whose expression starts with a constant, a ground packed term, or
//! an atomic variable bound by an earlier body step is `Bound`; everything
//! else — including *bound path variables*, which may denote `ε` and hence
//! constrain no first value — is `Free`.
//!
//! Adornments propagate through rule bodies by sideways information passing in
//! the same order the body planner (`seqdl_engine::plan`) evaluates positive
//! predicates (source order): each predicate is adorned with respect to the
//! variables bound by the magic guard and the predicates before it, then
//! contributes its own variables.  [`sip_order`] computes that walk.

use crate::ast::{Atom, Predicate, Rule};
use crate::term::{PathExpr, Term, Var, VarKind};
use std::collections::BTreeSet;
use std::fmt;

/// What is known about one argument column at call time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ColumnBinding {
    /// The first value of the column's path is known (a ground prefix or a bound
    /// atomic variable leads the argument expression).
    Bound,
    /// Nothing about the column is known at call time.
    Free,
}

/// The adornment of a predicate occurrence: one [`ColumnBinding`] per argument
/// column.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Adornment(Vec<ColumnBinding>);

impl Adornment {
    /// Build an adornment from per-column bindings.
    pub fn new(columns: Vec<ColumnBinding>) -> Adornment {
        Adornment(columns)
    }

    /// The adornment of a *goal* pattern: a column is bound when its expression
    /// has a statically known first value (goal variables are free — they are
    /// the answers being asked for).
    pub fn of_goal(goal: &Predicate) -> Adornment {
        Adornment::of_subgoal(goal, &BTreeSet::new())
    }

    /// The adornment of a body predicate matched when `bound` variables are
    /// already bound by earlier steps.
    pub fn of_subgoal(pred: &Predicate, bound: &BTreeSet<Var>) -> Adornment {
        Adornment(
            pred.args
                .iter()
                .map(|arg| match first_value_expr(arg, bound) {
                    Some(_) => ColumnBinding::Bound,
                    None => ColumnBinding::Free,
                })
                .collect(),
        )
    }

    /// The per-column bindings.
    pub fn columns(&self) -> &[ColumnBinding] {
        &self.0
    }

    /// Number of bound columns.
    pub fn bound_count(&self) -> usize {
        self.0
            .iter()
            .filter(|c| **c == ColumnBinding::Bound)
            .count()
    }

    /// Is every column free (the adornment carries no demand information)?
    pub fn is_all_free(&self) -> bool {
        self.bound_count() == 0
    }

    /// The conventional letter string, `b` for bound and `f` for free columns
    /// (empty for nullary predicates).
    pub fn letters(&self) -> String {
        self.0
            .iter()
            .map(|c| match c {
                ColumnBinding::Bound => 'b',
                ColumnBinding::Free => 'f',
            })
            .collect()
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.letters())
    }
}

/// The length-1 expression denoting the *first value* of the column path that
/// `arg` denotes, when that value is statically known given the `bound`
/// variables:
///
/// * a leading constant `c` yields `c`;
/// * a leading *ground* packed term `⟨p⟩` yields `⟨p⟩` (one packed value);
/// * a leading atomic variable `@x ∈ bound` yields `@x` (exactly one atom).
///
/// Leading *path* variables yield `None` even when bound: a path variable may
/// denote `ε`, in which case the column's first value comes from whatever
/// follows, so no single expression captures it.  The empty expression also
/// yields `None` (an `ε` column has no first value).
pub fn first_value_expr(arg: &PathExpr, bound: &BTreeSet<Var>) -> Option<PathExpr> {
    match arg.terms().first() {
        Some(Term::Const(a)) => Some(PathExpr::singleton(Term::Const(*a))),
        Some(Term::Packed(inner)) if inner.is_ground() => {
            Some(PathExpr::singleton(Term::Packed(inner.clone())))
        }
        Some(Term::Var(v)) if v.kind == VarKind::Atom && bound.contains(v) => {
            Some(PathExpr::var(*v))
        }
        _ => None,
    }
}

/// The magic-guard argument expressions for a rule *head* under `adornment`:
/// one first-value expression per bound column.  Unlike body subgoals, a head's
/// leading atomic variables need no prior binding — the guard itself binds them
/// by matching the magic relation.  Returns `None` when some bound column's
/// head argument has no static first value (a leading path variable, say): such
/// a rule cannot be guarded and must run unrestricted.
pub fn guard_exprs(head: &Predicate, adornment: &Adornment) -> Option<Vec<PathExpr>> {
    let mut head_vars: BTreeSet<Var> = BTreeSet::new();
    head_vars.extend(head.vars());
    head.args
        .iter()
        .zip(adornment.columns())
        .filter(|(_, c)| **c == ColumnBinding::Bound)
        .map(|(arg, _)| first_value_expr(arg, &head_vars))
        .collect()
}

/// One step of the sideways-information-passing walk over a rule body: the
/// `body_index`-th literal is a positive predicate, matched with `adornment`
/// under the variables bound so far.
#[derive(Clone, Debug)]
pub struct SipStep {
    /// Index of the predicate literal in the rule body.
    pub body_index: usize,
    /// The predicate's adornment at match time.
    pub adornment: Adornment,
}

/// Walk the positive body predicates of `rule` in the body planner's evaluation
/// order (source order), threading the bound-variable set: each step is adorned
/// with respect to `seed_bound` (the variables the magic guard binds) plus the
/// variables of all earlier positive predicates, then contributes its own.
/// Positive equations are *not* folded in: the planner evaluates them after all
/// predicates, so their bindings are never available to a predicate probe.
pub fn sip_order(rule: &Rule, seed_bound: &BTreeSet<Var>) -> Vec<SipStep> {
    let mut bound = seed_bound.clone();
    let mut steps = Vec::new();
    for (body_index, lit) in rule.body.iter().enumerate() {
        if !lit.positive {
            continue;
        }
        let Atom::Pred(pred) = &lit.atom else {
            continue;
        };
        steps.push(SipStep {
            body_index,
            adornment: Adornment::of_subgoal(pred, &bound),
        });
        bound.extend(pred.vars());
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_rule};

    fn expr(s: &str) -> PathExpr {
        parse_expr(s).unwrap()
    }

    #[test]
    fn first_values_of_concatenations() {
        let bound = BTreeSet::from([Var::atom("q"), Var::path("p")]);
        // Leading constant.
        assert_eq!(first_value_expr(&expr("a·$x"), &bound), Some(expr("a")));
        // Leading bound atomic variable.
        assert_eq!(first_value_expr(&expr("@q·$x"), &bound), Some(expr("@q")));
        // Leading unbound atomic variable.
        assert_eq!(first_value_expr(&expr("@u·$x"), &bound), None);
        // Leading path variable: no first value even when bound (it may be ε).
        assert_eq!(first_value_expr(&expr("$p·a"), &bound), None);
        // ε has no first value.
        assert_eq!(first_value_expr(&expr("eps"), &bound), None);
    }

    #[test]
    fn first_values_of_packed_terms() {
        let bound = BTreeSet::new();
        // A ground packed prefix is one known value.
        assert_eq!(
            first_value_expr(&expr("<a·b>·$x"), &bound),
            Some(expr("<a·b>"))
        );
        assert_eq!(
            first_value_expr(&expr("<eps>·$x"), &bound),
            Some(expr("<eps>"))
        );
        // A packed term with variables inside is not a known value.
        assert_eq!(first_value_expr(&expr("<$s>·$x"), &bound), None);
    }

    #[test]
    fn goal_adornments_read_prefixes() {
        let goal = parse_rule("Reach(a·b·$x).").unwrap().head;
        let a = Adornment::of_goal(&goal);
        assert_eq!(a.letters(), "b");
        assert_eq!(a.bound_count(), 1);

        let goal = parse_rule("T($x, a·$y, eps).").unwrap().head;
        let a = Adornment::of_goal(&goal);
        assert_eq!(a.letters(), "fbf");
        assert!(!a.is_all_free());

        let goal = parse_rule("S($x).").unwrap().head;
        assert!(Adornment::of_goal(&goal).is_all_free());
    }

    #[test]
    fn sip_propagates_bindings_in_planner_order() {
        // With @x seeded (by a magic guard), T is matched first with its leading
        // @x bound; R's leading @y only becomes bound after T contributes it.
        let rule = parse_rule("T(@x·@z) <- T(@x·@y), R(@y·@z).").unwrap();
        let seed = BTreeSet::from([Var::atom("x")]);
        let steps = sip_order(&rule, &seed);
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].adornment.letters(), "b");
        assert_eq!(steps[1].adornment.letters(), "b");
        // Without the seed, T is free but R still gains @y from T.
        let steps = sip_order(&rule, &BTreeSet::new());
        assert_eq!(steps[0].adornment.letters(), "f");
        assert_eq!(steps[1].adornment.letters(), "b");
    }

    #[test]
    fn sip_skips_equations_and_negations() {
        let rule = parse_rule("S($x) <- R($x), $x = $y·a, !B($y).").unwrap();
        let steps = sip_order(&rule, &BTreeSet::new());
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].body_index, 0);
    }

    #[test]
    fn guard_exprs_follow_the_head_structure() {
        let rule = parse_rule("T(@x·@y) <- R(@x·@y).").unwrap();
        let a = Adornment::new(vec![ColumnBinding::Bound]);
        assert_eq!(guard_exprs(&rule.head, &a), Some(vec![expr("@x")]));

        // A constant-led head column is guarded by the constant itself.
        let rule = parse_rule("T(c·$x) <- R($x).").unwrap();
        assert_eq!(guard_exprs(&rule.head, &a), Some(vec![expr("c")]));

        // A path-variable-led head column cannot be guarded.
        let rule = parse_rule("T($x·a) <- R($x).").unwrap();
        assert_eq!(guard_exprs(&rule.head, &a), None);

        // Free columns contribute nothing.
        let rule = parse_rule("T(@x·@y, $z) <- R(@x·@y), R($z).").unwrap();
        let a = Adornment::new(vec![ColumnBinding::Bound, ColumnBinding::Free]);
        assert_eq!(guard_exprs(&rule.head, &a), Some(vec![expr("@x")]));
    }

    #[test]
    fn adornment_display_and_ordering() {
        let a = Adornment::new(vec![ColumnBinding::Bound, ColumnBinding::Free]);
        let b = Adornment::new(vec![ColumnBinding::Bound, ColumnBinding::Bound]);
        assert_eq!(a.to_string(), "bf");
        assert_ne!(a, b);
        // Ord exists so adornments can key worklist maps.
        assert!(b < a || a < b);
    }
}
