//! Path expressions (Section 2.2): paths with variables and packing added in.
//!
//! The set of path expressions is the smallest set such that
//!
//! 1. every atomic value is a path expression;
//! 2. every variable (atomic `@x` or path `$x`) is a path expression;
//! 3. if `e` is a path expression then `⟨e⟩` is a path expression;
//! 4. every finite sequence of path expressions is a path expression.
//!
//! Because concatenation is associative we keep path expressions in a *flattened*
//! form: a [`PathExpr`] is a sequence of [`Term`]s, where a term is a constant, a
//! variable, or a packed sub-expression.  The empty sequence is `ε`.

use seqdl_core::{AtomId, Path, Value, VarSym};
use std::collections::BTreeMap;
use std::fmt;

/// Kind of a variable: atomic variables range over atomic values, path variables
/// over paths.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum VarKind {
    /// An atomic variable `@x`.
    Atom,
    /// A path variable `$x`.
    Path,
}

/// A variable: a kind plus an interned name.  `@x` and `$x` are distinct variables.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var {
    /// Atomic or path variable.
    pub kind: VarKind,
    /// The variable's name (without the `@`/`$` sigil).
    pub name: VarSym,
}

impl Var {
    /// An atomic variable `@name`.
    pub fn atom(name: &str) -> Var {
        Var {
            kind: VarKind::Atom,
            name: VarSym::new(name),
        }
    }

    /// A path variable `$name`.
    pub fn path(name: &str) -> Var {
        Var {
            kind: VarKind::Path,
            name: VarSym::new(name),
        }
    }

    /// A fresh path variable whose name starts with `prefix`.
    pub fn fresh_path(prefix: &str) -> Var {
        Var {
            kind: VarKind::Path,
            name: VarSym::fresh(prefix),
        }
    }

    /// A fresh atomic variable whose name starts with `prefix`.
    pub fn fresh_atom(prefix: &str) -> Var {
        Var {
            kind: VarKind::Atom,
            name: VarSym::fresh(prefix),
        }
    }

    /// Is this an atomic variable?
    pub fn is_atom_var(&self) -> bool {
        self.kind == VarKind::Atom
    }

    /// Is this a path variable?
    pub fn is_path_var(&self) -> bool {
        self.kind == VarKind::Path
    }

    /// The sigil used to print this variable (`@` or `$`).
    pub fn sigil(&self) -> char {
        match self.kind {
            VarKind::Atom => '@',
            VarKind::Path => '$',
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.sigil(), self.name)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// One term of a flattened path expression.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A constant atomic value.
    Const(AtomId),
    /// A variable (atomic or path).
    Var(Var),
    /// A packed sub-expression `⟨e⟩`.
    Packed(PathExpr),
}

impl Term {
    /// A constant term by atom name.
    pub fn constant(name: &str) -> Term {
        Term::Const(AtomId::new(name))
    }

    /// Is this term a packed sub-expression?
    pub fn is_packed(&self) -> bool {
        matches!(self, Term::Packed(_))
    }

    /// Is this term a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(a) => fmt::Display::fmt(&Value::Atom(*a), f),
            Term::Var(v) => fmt::Display::fmt(v, f),
            Term::Packed(e) => write!(f, "<{e}>"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A path expression: a flattened sequence of terms.  The empty sequence is `ε`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PathExpr(Vec<Term>);

impl PathExpr {
    /// The empty path expression `ε`.
    pub fn empty() -> PathExpr {
        PathExpr(Vec::new())
    }

    /// A one-term expression.
    pub fn singleton(term: Term) -> PathExpr {
        PathExpr(vec![term])
    }

    /// A single-variable expression.
    pub fn var(v: Var) -> PathExpr {
        PathExpr::singleton(Term::Var(v))
    }

    /// A single-constant expression by atom name.
    pub fn constant(name: &str) -> PathExpr {
        PathExpr::singleton(Term::constant(name))
    }

    /// Build an expression from terms, flattening nothing (terms are already flat).
    pub fn from_terms(terms: impl IntoIterator<Item = Term>) -> PathExpr {
        PathExpr(terms.into_iter().collect())
    }

    /// Convert a ground [`Path`] into the corresponding path expression.
    pub fn from_path(path: &Path) -> PathExpr {
        PathExpr(
            path.iter()
                .map(|v| match v {
                    Value::Atom(a) => Term::Const(*a),
                    Value::Packed(p) => Term::Packed(PathExpr::from_path(p)),
                })
                .collect(),
        )
    }

    /// The terms of the expression.
    pub fn terms(&self) -> &[Term] {
        &self.0
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is this the empty expression `ε`?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Concatenation `self · other`.
    pub fn concat(&self, other: &PathExpr) -> PathExpr {
        let mut out = self.0.clone();
        out.extend(other.0.iter().cloned());
        PathExpr(out)
    }

    /// Append a term in place.
    pub fn push(&mut self, term: Term) {
        self.0.push(term);
    }

    /// Wrap this expression in packing: `⟨self⟩` as a one-term expression.
    pub fn packed(self) -> PathExpr {
        PathExpr::singleton(Term::Packed(self))
    }

    /// All variables occurring in the expression (at any packing depth), in order of
    /// first occurrence, without duplicates.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        for t in &self.0 {
            match t {
                Term::Var(v) => {
                    if !out.contains(v) {
                        out.push(*v);
                    }
                }
                Term::Packed(e) => e.collect_vars(out),
                Term::Const(_) => {}
            }
        }
    }

    /// All variable *occurrences* (with duplicates), in left-to-right order.
    pub fn var_occurrences(&self) -> Vec<Var> {
        let mut out = Vec::new();
        fn walk(e: &PathExpr, out: &mut Vec<Var>) {
            for t in &e.0 {
                match t {
                    Term::Var(v) => out.push(*v),
                    Term::Packed(inner) => walk(inner, out),
                    Term::Const(_) => {}
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// All constants occurring in the expression (at any packing depth).
    pub fn constants(&self) -> Vec<AtomId> {
        let mut out = Vec::new();
        fn walk(e: &PathExpr, out: &mut Vec<AtomId>) {
            for t in &e.0 {
                match t {
                    Term::Const(a) => out.push(*a),
                    Term::Packed(inner) => walk(inner, out),
                    Term::Var(_) => {}
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// Does packing `⟨…⟩` occur anywhere in the expression?
    pub fn has_packing(&self) -> bool {
        self.0.iter().any(|t| t.is_packed())
    }

    /// Is the expression ground (variable-free)?
    pub fn is_ground(&self) -> bool {
        self.vars().is_empty()
    }

    /// Convert a ground expression to the path it denotes; `None` if not ground.
    pub fn as_path(&self) -> Option<Path> {
        let mut values = Vec::with_capacity(self.len());
        for t in &self.0 {
            match t {
                Term::Const(a) => values.push(Value::Atom(*a)),
                Term::Packed(e) => values.push(Value::packed(e.as_path()?)),
                Term::Var(_) => return None,
            }
        }
        Some(Path::from_values(values))
    }

    /// Simultaneously substitute variables by expressions.  Variables not in the map
    /// are left untouched.  The result is flattened.
    pub fn substitute(&self, map: &BTreeMap<Var, PathExpr>) -> PathExpr {
        let mut out = Vec::new();
        for t in &self.0 {
            match t {
                Term::Const(a) => out.push(Term::Const(*a)),
                Term::Var(v) => match map.get(v) {
                    Some(e) => out.extend(e.0.iter().cloned()),
                    None => out.push(Term::Var(*v)),
                },
                Term::Packed(e) => out.push(Term::Packed(e.substitute(map))),
            }
        }
        PathExpr(out)
    }

    /// Rename variables according to `map` (leaving others untouched).
    pub fn rename_vars(&self, map: &BTreeMap<Var, Var>) -> PathExpr {
        let subst: BTreeMap<Var, PathExpr> =
            map.iter().map(|(k, v)| (*k, PathExpr::var(*v))).collect();
        self.substitute(&subst)
    }

    /// The maximum packing nesting depth in the expression (0 if no packing).
    pub fn packing_depth(&self) -> usize {
        self.0
            .iter()
            .map(|t| match t {
                Term::Packed(e) => 1 + e.packing_depth(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of path variables occurring (with multiplicity).
    pub fn path_var_count(&self) -> usize {
        self.var_occurrences()
            .iter()
            .filter(|v| v.is_path_var())
            .count()
    }

    /// Number of atomic values and atomic variables occurring (with multiplicity),
    /// the `b_i` quantity in the proof of Lemma 5.1.
    pub fn atom_like_count(&self) -> usize {
        fn walk(e: &PathExpr) -> usize {
            e.0.iter()
                .map(|t| match t {
                    Term::Const(_) => 1,
                    Term::Var(v) if v.is_atom_var() => 1,
                    Term::Var(_) => 0,
                    Term::Packed(inner) => walk(inner),
                })
                .sum()
        }
        walk(self)
    }
}

impl FromIterator<Term> for PathExpr {
    fn from_iter<T: IntoIterator<Item = Term>>(iter: T) -> Self {
        PathExpr(iter.into_iter().collect())
    }
}

impl From<Var> for PathExpr {
    fn from(v: Var) -> Self {
        PathExpr::var(v)
    }
}

impl From<AtomId> for PathExpr {
    fn from(a: AtomId) -> Self {
        PathExpr::singleton(Term::Const(a))
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("eps");
        }
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str("·")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::path_of;

    fn x() -> Var {
        Var::path("x")
    }
    fn ax() -> Var {
        Var::atom("x")
    }

    #[test]
    fn atomic_and_path_variables_are_distinct() {
        assert_ne!(x(), ax());
        assert_eq!(x().to_string(), "$x");
        assert_eq!(ax().to_string(), "@x");
        assert!(x().is_path_var());
        assert!(ax().is_atom_var());
    }

    #[test]
    fn display_matches_paper_notation() {
        // a·$x = the left side of Example 3.1's equation.
        let e = PathExpr::from_terms([Term::constant("a"), Term::Var(x())]);
        assert_eq!(e.to_string(), "a·$x");
        assert_eq!(PathExpr::empty().to_string(), "eps");
        // @a·⟨⟨$x·$y⟩·$z⟩·⟨ε⟩ from Example 4.11.
        let inner = PathExpr::from_terms([Term::Var(Var::path("x")), Term::Var(Var::path("y"))]);
        let e = PathExpr::from_terms([
            Term::Var(Var::atom("a")),
            Term::Packed(PathExpr::from_terms([
                Term::Packed(inner),
                Term::Var(Var::path("z")),
            ])),
            Term::Packed(PathExpr::empty()),
        ]);
        assert_eq!(e.to_string(), "@a·<<$x·$y>·$z>·<eps>");
        assert_eq!(e.packing_depth(), 2);
    }

    #[test]
    fn vars_are_collected_in_order_without_duplicates() {
        let e = PathExpr::from_terms([
            Term::Var(x()),
            Term::constant("a"),
            Term::Packed(PathExpr::from_terms([Term::Var(ax()), Term::Var(x())])),
        ]);
        assert_eq!(e.vars(), vec![x(), ax()]);
        assert_eq!(e.var_occurrences(), vec![x(), ax(), x()]);
        assert_eq!(e.constants(), vec![AtomId::new("a")]);
    }

    #[test]
    fn ground_expressions_convert_to_paths() {
        let p = path_of(&["a", "b"]);
        let e = PathExpr::from_path(&p);
        assert!(e.is_ground());
        assert_eq!(e.as_path(), Some(p));
        let with_var = PathExpr::from_terms([Term::constant("a"), Term::Var(x())]);
        assert!(!with_var.is_ground());
        assert_eq!(with_var.as_path(), None);
    }

    #[test]
    fn packed_paths_round_trip_through_expressions() {
        let p = Path::from_values([Value::atom("c"), Value::packed(path_of(&["a", "b"]))]);
        let e = PathExpr::from_path(&p);
        assert!(e.has_packing());
        assert_eq!(e.as_path(), Some(p));
    }

    #[test]
    fn substitution_flattens() {
        // Substituting $x := a·$y into $x·$x gives a·$y·a·$y.
        let e = PathExpr::from_terms([Term::Var(x()), Term::Var(x())]);
        let map = BTreeMap::from([(
            x(),
            PathExpr::from_terms([Term::constant("a"), Term::Var(Var::path("y"))]),
        )]);
        let s = e.substitute(&map);
        assert_eq!(s.to_string(), "a·$y·a·$y");
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn substitution_reaches_inside_packing() {
        let e = PathExpr::from_terms([Term::Packed(PathExpr::var(x()))]);
        let map = BTreeMap::from([(x(), PathExpr::constant("a"))]);
        assert_eq!(e.substitute(&map).to_string(), "<a>");
    }

    #[test]
    fn renaming_variables() {
        let e = PathExpr::from_terms([Term::Var(x()), Term::Var(ax())]);
        let map = BTreeMap::from([(x(), Var::path("z"))]);
        assert_eq!(e.rename_vars(&map).to_string(), "$z·@x");
    }

    #[test]
    fn counting_helpers_for_lemma_5_1() {
        // $x·a·@u·$x has 2 path-variable occurrences and 2 atom-like occurrences.
        let e = PathExpr::from_terms([
            Term::Var(x()),
            Term::constant("a"),
            Term::Var(Var::atom("u")),
            Term::Var(x()),
        ]);
        assert_eq!(e.path_var_count(), 2);
        assert_eq!(e.atom_like_count(), 2);
    }

    #[test]
    fn concat_and_packed_builders() {
        let e1 = PathExpr::constant("a");
        let e2 = PathExpr::var(x());
        let cat = e1.concat(&e2);
        assert_eq!(cat.to_string(), "a·$x");
        assert_eq!(cat.clone().packed().to_string(), "<a·$x>");
        assert_eq!(cat.len(), 2);
        let empty_concat = PathExpr::empty().concat(&PathExpr::empty());
        assert!(empty_concat.is_empty());
    }

    #[test]
    fn fresh_variables_do_not_collide() {
        let a = Var::fresh_path("v");
        let b = Var::fresh_path("v");
        assert_ne!(a, b);
        assert!(a.name.name().starts_with('v'));
    }
}
