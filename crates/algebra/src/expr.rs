//! Algebra expression trees and their static arity.

use seqdl_core::{RelName, Tuple};
use seqdl_syntax::{PathExpr, Var};
use std::fmt;

/// The column variable `$i` (1-based), used inside generalised selections and
/// projections.
pub fn col(i: usize) -> PathExpr {
    PathExpr::var(Var::path(&i.to_string()))
}

/// Errors raised when building or evaluating algebra expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// Union or difference of relations with different arities.
    ArityMismatch {
        /// Arity of the left operand.
        left: usize,
        /// Arity of the right operand.
        right: usize,
    },
    /// A column index outside `1..=arity`.
    ColumnOutOfRange {
        /// The offending column.
        column: usize,
        /// The arity of the operand.
        arity: usize,
    },
    /// A selection or projection expression used a variable that is not a column
    /// variable of the operand.
    BadColumnVariable {
        /// The offending variable, rendered.
        variable: String,
    },
    /// The relation's arity in the instance differs from the declared arity.
    RelationArityMismatch {
        /// The relation name.
        relation: String,
        /// Declared arity.
        declared: usize,
        /// Arity found in the instance.
        found: usize,
    },
    /// Translating a program that is not in the expected shape.
    Translation(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::ArityMismatch { left, right } => {
                write!(f, "arity mismatch: {left} vs {right}")
            }
            AlgebraError::ColumnOutOfRange { column, arity } => {
                write!(f, "column {column} out of range for arity {arity}")
            }
            AlgebraError::BadColumnVariable { variable } => {
                write!(f, "{variable} is not a column variable of the operand")
            }
            AlgebraError::RelationArityMismatch {
                relation,
                declared,
                found,
            } => write!(
                f,
                "relation {relation} declared with arity {declared} but has arity {found} in the instance"
            ),
            AlgebraError::Translation(msg) => write!(f, "translation error: {msg}"),
        }
    }
}

impl std::error::Error for AlgebraError {}

/// A sequence-relational-algebra expression (Section 7).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AlgebraExpr {
    /// A named relation of the given arity.
    Relation {
        /// The relation name.
        name: RelName,
        /// Its arity.
        arity: usize,
    },
    /// A constant relation.
    Constant {
        /// The arity of the relation.
        arity: usize,
        /// Its tuples.
        tuples: Vec<Tuple>,
    },
    /// Union of two expressions of the same arity.
    Union(Box<AlgebraExpr>, Box<AlgebraExpr>),
    /// Difference of two expressions of the same arity.
    Difference(Box<AlgebraExpr>, Box<AlgebraExpr>),
    /// Cartesian product.
    Product(Box<AlgebraExpr>, Box<AlgebraExpr>),
    /// Generalised selection `σ_{α=β}`.
    Select {
        /// The operand.
        input: Box<AlgebraExpr>,
        /// Left path expression over `$1..$n`.
        lhs: PathExpr,
        /// Right path expression over `$1..$n`.
        rhs: PathExpr,
    },
    /// Generalised projection `π_{α1,…,αp}`.
    Project {
        /// The operand.
        input: Box<AlgebraExpr>,
        /// The output column expressions over `$1..$n`.
        exprs: Vec<PathExpr>,
    },
    /// `UNPACK_i`: unpack column `i` (1-based).
    Unpack {
        /// The operand.
        input: Box<AlgebraExpr>,
        /// The column to unpack.
        column: usize,
    },
    /// `SUB_i`: append a column ranging over the substrings of column `i`.
    Substrings {
        /// The operand.
        input: Box<AlgebraExpr>,
        /// The column whose substrings are enumerated.
        column: usize,
    },
}

impl AlgebraExpr {
    /// A named relation.
    pub fn relation(name: RelName, arity: usize) -> AlgebraExpr {
        AlgebraExpr::Relation { name, arity }
    }

    /// A constant relation.
    pub fn constant(arity: usize, tuples: Vec<Tuple>) -> AlgebraExpr {
        AlgebraExpr::Constant { arity, tuples }
    }

    /// Union, boxing the operands.
    pub fn union(a: AlgebraExpr, b: AlgebraExpr) -> AlgebraExpr {
        AlgebraExpr::Union(Box::new(a), Box::new(b))
    }

    /// Difference, boxing the operands.
    pub fn difference(a: AlgebraExpr, b: AlgebraExpr) -> AlgebraExpr {
        AlgebraExpr::Difference(Box::new(a), Box::new(b))
    }

    /// Cartesian product, boxing the operands.
    pub fn product(a: AlgebraExpr, b: AlgebraExpr) -> AlgebraExpr {
        AlgebraExpr::Product(Box::new(a), Box::new(b))
    }

    /// Selection `σ_{lhs=rhs}`.
    pub fn select(input: AlgebraExpr, lhs: PathExpr, rhs: PathExpr) -> AlgebraExpr {
        AlgebraExpr::Select {
            input: Box::new(input),
            lhs,
            rhs,
        }
    }

    /// Projection `π_{exprs}`.
    pub fn project(input: AlgebraExpr, exprs: Vec<PathExpr>) -> AlgebraExpr {
        AlgebraExpr::Project {
            input: Box::new(input),
            exprs,
        }
    }

    /// `UNPACK_i`.
    pub fn unpack(input: AlgebraExpr, column: usize) -> AlgebraExpr {
        AlgebraExpr::Unpack {
            input: Box::new(input),
            column,
        }
    }

    /// `SUB_i`.
    pub fn substrings(input: AlgebraExpr, column: usize) -> AlgebraExpr {
        AlgebraExpr::Substrings {
            input: Box::new(input),
            column,
        }
    }

    /// The arity of the expression's result.
    ///
    /// # Errors
    /// Arity mismatches in union/difference, out-of-range columns.
    pub fn arity(&self) -> Result<usize, AlgebraError> {
        match self {
            AlgebraExpr::Relation { arity, .. } | AlgebraExpr::Constant { arity, .. } => Ok(*arity),
            AlgebraExpr::Union(a, b) | AlgebraExpr::Difference(a, b) => {
                let (la, lb) = (a.arity()?, b.arity()?);
                if la != lb {
                    return Err(AlgebraError::ArityMismatch {
                        left: la,
                        right: lb,
                    });
                }
                Ok(la)
            }
            AlgebraExpr::Product(a, b) => Ok(a.arity()? + b.arity()?),
            AlgebraExpr::Select { input, .. } => input.arity(),
            AlgebraExpr::Project { exprs, .. } => Ok(exprs.len()),
            AlgebraExpr::Unpack { input, column } => {
                let n = input.arity()?;
                if *column == 0 || *column > n {
                    return Err(AlgebraError::ColumnOutOfRange {
                        column: *column,
                        arity: n,
                    });
                }
                Ok(n)
            }
            AlgebraExpr::Substrings { input, column } => {
                let n = input.arity()?;
                if *column == 0 || *column > n {
                    return Err(AlgebraError::ColumnOutOfRange {
                        column: *column,
                        arity: n,
                    });
                }
                Ok(n + 1)
            }
        }
    }

    /// The number of operator nodes in the expression (a size measure for tests and
    /// reporting).
    pub fn size(&self) -> usize {
        1 + match self {
            AlgebraExpr::Relation { .. } | AlgebraExpr::Constant { .. } => 0,
            AlgebraExpr::Union(a, b)
            | AlgebraExpr::Difference(a, b)
            | AlgebraExpr::Product(a, b) => a.size() + b.size(),
            AlgebraExpr::Select { input, .. }
            | AlgebraExpr::Project { input, .. }
            | AlgebraExpr::Unpack { input, .. }
            | AlgebraExpr::Substrings { input, .. } => input.size(),
        }
    }
}

impl fmt::Display for AlgebraExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraExpr::Relation { name, .. } => write!(f, "{name}"),
            AlgebraExpr::Constant { tuples, .. } => write!(f, "const[{} tuples]", tuples.len()),
            AlgebraExpr::Union(a, b) => write!(f, "({a} ∪ {b})"),
            AlgebraExpr::Difference(a, b) => write!(f, "({a} − {b})"),
            AlgebraExpr::Product(a, b) => write!(f, "({a} × {b})"),
            AlgebraExpr::Select { input, lhs, rhs } => write!(f, "σ[{lhs} = {rhs}]({input})"),
            AlgebraExpr::Project { input, exprs } => {
                let cols: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                write!(f, "π[{}]({input})", cols.join(", "))
            }
            AlgebraExpr::Unpack { input, column } => write!(f, "UNPACK_{column}({input})"),
            AlgebraExpr::Substrings { input, column } => write!(f, "SUB_{column}({input})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::rel;

    #[test]
    fn arities_are_computed_structurally() {
        let r = AlgebraExpr::relation(rel("R"), 2);
        let s = AlgebraExpr::relation(rel("S"), 2);
        assert_eq!(AlgebraExpr::union(r.clone(), s.clone()).arity().unwrap(), 2);
        assert_eq!(
            AlgebraExpr::product(r.clone(), s.clone()).arity().unwrap(),
            4
        );
        assert_eq!(AlgebraExpr::substrings(r.clone(), 1).arity().unwrap(), 3);
        assert_eq!(AlgebraExpr::unpack(r.clone(), 2).arity().unwrap(), 2);
        assert_eq!(
            AlgebraExpr::project(r.clone(), vec![col(1)])
                .arity()
                .unwrap(),
            1
        );
        let mismatched = AlgebraExpr::union(r.clone(), AlgebraExpr::relation(rel("T"), 3));
        assert!(matches!(
            mismatched.arity(),
            Err(AlgebraError::ArityMismatch { left: 2, right: 3 })
        ));
        assert!(matches!(
            AlgebraExpr::unpack(r, 5).arity(),
            Err(AlgebraError::ColumnOutOfRange { .. })
        ));
    }

    #[test]
    fn display_uses_standard_notation() {
        let e = AlgebraExpr::select(
            AlgebraExpr::product(
                AlgebraExpr::relation(rel("R"), 1),
                AlgebraExpr::relation(rel("S"), 1),
            ),
            col(1),
            col(2),
        );
        assert_eq!(e.to_string(), "σ[$1 = $2]((R × S))");
        assert_eq!(e.size(), 4);
    }
}
