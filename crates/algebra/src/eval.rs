//! Evaluation of algebra expressions over instances.

use crate::expr::{AlgebraError, AlgebraExpr};
use seqdl_core::{Instance, Path, Tuple, Value};
use seqdl_syntax::{Valuation, Var};
use std::collections::BTreeSet;

/// Evaluate an algebra expression over an instance, producing the set of result
/// tuples.
///
/// # Errors
/// Arity mismatches, out-of-range columns, and column variables that do not refer to
/// columns of the operand.
pub fn eval(expr: &AlgebraExpr, instance: &Instance) -> Result<BTreeSet<Tuple>, AlgebraError> {
    match expr {
        AlgebraExpr::Relation { name, arity } => match instance.relation(*name) {
            None => Ok(BTreeSet::new()),
            Some(rel) => {
                if rel.arity() != *arity && !rel.is_empty() {
                    return Err(AlgebraError::RelationArityMismatch {
                        relation: name.name(),
                        declared: *arity,
                        found: rel.arity(),
                    });
                }
                Ok(rel.iter().cloned().collect())
            }
        },
        AlgebraExpr::Constant { tuples, .. } => Ok(tuples.iter().cloned().collect()),
        AlgebraExpr::Union(a, b) => {
            expr.arity()?;
            let mut out = eval(a, instance)?;
            out.extend(eval(b, instance)?);
            Ok(out)
        }
        AlgebraExpr::Difference(a, b) => {
            expr.arity()?;
            let left = eval(a, instance)?;
            let right = eval(b, instance)?;
            Ok(left.difference(&right).cloned().collect())
        }
        AlgebraExpr::Product(a, b) => {
            let left = eval(a, instance)?;
            let right = eval(b, instance)?;
            let mut out = BTreeSet::new();
            for l in &left {
                for r in &right {
                    let mut t = l.clone();
                    t.extend(r.iter().cloned());
                    out.insert(t);
                }
            }
            Ok(out)
        }
        AlgebraExpr::Select { input, lhs, rhs } => {
            let arity = input.arity()?;
            let rows = eval(input, instance)?;
            let mut out = BTreeSet::new();
            for t in rows {
                let nu = tuple_valuation(&t);
                let l = apply_columns(lhs, &nu, arity)?;
                let r = apply_columns(rhs, &nu, arity)?;
                if l == r {
                    out.insert(t);
                }
            }
            Ok(out)
        }
        AlgebraExpr::Project { input, exprs } => {
            let arity = input.arity()?;
            let rows = eval(input, instance)?;
            let mut out = BTreeSet::new();
            for t in rows {
                let nu = tuple_valuation(&t);
                let mut projected = Vec::with_capacity(exprs.len());
                for e in exprs {
                    projected.push(apply_columns(e, &nu, arity)?);
                }
                out.insert(projected);
            }
            Ok(out)
        }
        AlgebraExpr::Unpack { input, column } => {
            let arity = input.arity()?;
            if *column == 0 || *column > arity {
                return Err(AlgebraError::ColumnOutOfRange {
                    column: *column,
                    arity,
                });
            }
            let rows = eval(input, instance)?;
            let mut out = BTreeSet::new();
            for t in rows {
                let cell = &t[*column - 1];
                // UNPACK keeps only tuples whose column is a single packed value.
                if cell.len() == 1 {
                    if let Value::Packed(inner) = &cell[0] {
                        let mut nt = t.clone();
                        nt[*column - 1] = *inner;
                        out.insert(nt);
                    }
                }
            }
            Ok(out)
        }
        AlgebraExpr::Substrings { input, column } => {
            let arity = input.arity()?;
            if *column == 0 || *column > arity {
                return Err(AlgebraError::ColumnOutOfRange {
                    column: *column,
                    arity,
                });
            }
            let rows = eval(input, instance)?;
            let mut out = BTreeSet::new();
            for t in rows {
                // `subpaths` streams id-backed slices of the stored path: no
                // per-substring vector is ever materialised.
                for sub in t[*column - 1].subpaths() {
                    let mut nt = t.clone();
                    nt.push(sub);
                    out.insert(nt);
                }
            }
            Ok(out)
        }
    }
}

fn tuple_valuation(tuple: &[Path]) -> Valuation {
    let mut nu = Valuation::new();
    for (i, p) in tuple.iter().enumerate() {
        nu.bind_path(Var::path(&(i + 1).to_string()), *p);
    }
    nu
}

fn apply_columns(
    expr: &seqdl_syntax::PathExpr,
    nu: &Valuation,
    arity: usize,
) -> Result<Path, AlgebraError> {
    nu.apply(expr).ok_or_else(|| {
        let bad = expr
            .vars()
            .into_iter()
            .find(|v| !nu.contains(*v))
            .map(|v| v.to_string())
            .unwrap_or_else(|| format!("<arity {arity}>"));
        AlgebraError::BadColumnVariable { variable: bad }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;
    use seqdl_core::{path_of, rel, Fact, Instance};
    use seqdl_syntax::parse_expr;

    fn sample() -> Instance {
        let mut inst = Instance::new();
        for (x, y) in [("a", "b"), ("a", "c"), ("b", "b")] {
            inst.insert_fact(Fact::new(rel("E"), vec![path_of(&[x]), path_of(&[y])]))
                .unwrap();
        }
        inst.insert_fact(Fact::new(rel("R"), vec![path_of(&["a", "b", "a"])]))
            .unwrap();
        inst
    }

    #[test]
    fn relation_constant_union_difference_product() {
        let inst = sample();
        let e = AlgebraExpr::relation(rel("E"), 2);
        assert_eq!(eval(&e, &inst).unwrap().len(), 3);
        // Missing relations evaluate to the empty set.
        assert!(eval(&AlgebraExpr::relation(rel("Zzz"), 2), &inst)
            .unwrap()
            .is_empty());

        let c = AlgebraExpr::constant(2, vec![vec![path_of(&["a"]), path_of(&["b"])]]);
        let union = AlgebraExpr::union(e.clone(), c.clone());
        assert_eq!(eval(&union, &inst).unwrap().len(), 3);
        let diff = AlgebraExpr::difference(e.clone(), c.clone());
        assert_eq!(eval(&diff, &inst).unwrap().len(), 2);
        let prod = AlgebraExpr::product(e.clone(), c);
        assert_eq!(eval(&prod, &inst).unwrap().len(), 3);
        assert_eq!(eval(&prod, &inst).unwrap().iter().next().unwrap().len(), 4);
    }

    #[test]
    fn generalised_selection_with_path_expressions() {
        let inst = sample();
        let e = AlgebraExpr::relation(rel("E"), 2);
        // Classical equality selection σ_{$1=$2}.
        let eq = AlgebraExpr::select(e.clone(), col(1), col(2));
        assert_eq!(eval(&eq, &inst).unwrap().len(), 1);
        // Path-expression selection: tuples where $1·$2 = a·b.
        let cat = AlgebraExpr::select(
            e.clone(),
            parse_expr("$1·$2").unwrap(),
            parse_expr("a·b").unwrap(),
        );
        assert_eq!(eval(&cat, &inst).unwrap().len(), 1);
        // Selecting on a constant: σ_{$1=a}.
        let const_sel = AlgebraExpr::select(e, col(1), parse_expr("a").unwrap());
        assert_eq!(eval(&const_sel, &inst).unwrap().len(), 2);
    }

    #[test]
    fn generalised_projection_builds_new_paths() {
        let inst = sample();
        let e = AlgebraExpr::relation(rel("E"), 2);
        let p = AlgebraExpr::project(e, vec![parse_expr("$2·x·$1").unwrap()]);
        let rows = eval(&p, &inst).unwrap();
        assert!(rows.contains(&vec![path_of(&["b", "x", "a"])]));
        assert_eq!(rows.len(), 3);
        // Projection can duplicate and reorder columns.
        let e = AlgebraExpr::relation(rel("E"), 2);
        let swap = AlgebraExpr::project(e, vec![col(2), col(1), col(1)]);
        let rows = eval(&swap, &inst).unwrap();
        assert!(rows.contains(&vec![path_of(&["b"]), path_of(&["a"]), path_of(&["a"])]));
    }

    #[test]
    fn substrings_operator_enumerates_contiguous_subpaths() {
        let inst = sample();
        let r = AlgebraExpr::relation(rel("R"), 1);
        let sub = AlgebraExpr::substrings(r, 1);
        let rows = eval(&sub, &inst).unwrap();
        // a·b·a has 1 + 3 + 2 + 1 = 7 distinct substrings... but a appears twice as
        // a length-1 substring, so 6 distinct values; plus the original column.
        assert_eq!(rows.len(), 6);
        assert!(rows.contains(&vec![path_of(&["a", "b", "a"]), Path::empty()]));
        assert!(rows.contains(&vec![path_of(&["a", "b", "a"]), path_of(&["b", "a"])]));
    }

    #[test]
    fn unpack_operator_requires_a_packed_singleton() {
        let mut inst = Instance::new();
        inst.insert_fact(Fact::new(
            rel("P"),
            vec![Path::singleton(Value::packed(path_of(&["x", "y"])))],
        ))
        .unwrap();
        inst.insert_fact(Fact::new(rel("P"), vec![path_of(&["plain"])]))
            .unwrap();
        let unpacked = AlgebraExpr::unpack(AlgebraExpr::relation(rel("P"), 1), 1);
        let rows = eval(&unpacked, &inst).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows.contains(&vec![path_of(&["x", "y"])]));
    }

    #[test]
    fn errors_are_reported() {
        let inst = sample();
        let bad_select = AlgebraExpr::select(AlgebraExpr::relation(rel("E"), 2), col(3), col(1));
        assert!(matches!(
            eval(&bad_select, &inst),
            Err(AlgebraError::BadColumnVariable { .. })
        ));
        let bad_arity = AlgebraExpr::relation(rel("E"), 1);
        assert!(matches!(
            eval(&bad_arity, &inst),
            Err(AlgebraError::RelationArityMismatch { .. })
        ));
        let bad_union = AlgebraExpr::union(
            AlgebraExpr::relation(rel("E"), 2),
            AlgebraExpr::relation(rel("R"), 1),
        );
        assert!(matches!(
            eval(&bad_union, &inst),
            Err(AlgebraError::ArityMismatch { .. })
        ));
    }

    use seqdl_core::{Path, Value};
}
