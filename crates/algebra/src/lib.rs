//! # seqdl-algebra — the sequence relational algebra of Section 7
//!
//! The classical relational algebra (union, difference, cartesian product, equality
//! selection, projection) extended to the sequence data model:
//!
//! * **generalised selection** `σ_{α=β}(R)` where `α`, `β` are path expressions over
//!   the column variables `$1, …, $n`;
//! * **generalised projection** `π_{α1,…,αp}(R)` building new columns from path
//!   expressions;
//! * **unpacking** `UNPACK_i(R)` replacing a packed value `⟨s⟩` in column `i` by `s`
//!   (and dropping tuples whose column `i` is not packed);
//! * **substrings** `SUB_i(R)` appending a column ranging over the substrings of
//!   column `i`.
//!
//! [`eval`] evaluates algebra expressions over instances; [`algebra_to_datalog`] and
//! [`datalog_to_algebra`] implement the two directions of Theorem 7.1 (equivalence
//! with nonrecursive Sequence Datalog).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod eval;
pub mod expr;
pub mod translate;

pub use eval::eval;
pub use expr::{col, AlgebraError, AlgebraExpr};
pub use translate::{algebra_to_datalog, datalog_to_algebra};

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, rel, Instance};

    #[test]
    fn public_api_smoke_test() {
        let input = Instance::unary(rel("R"), [path_of(&["a", "b"])]);
        let expr = AlgebraExpr::relation(rel("R"), 1);
        let out = eval(&expr, &input).unwrap();
        assert_eq!(out.len(), 1);
    }
}
