//! The two directions of Theorem 7.1: sequence relational algebra ⇄ nonrecursive
//! Sequence Datalog.

use crate::expr::{col, AlgebraError, AlgebraExpr};
use seqdl_core::RelName;
use seqdl_rewrite::{classify_rule, to_normal_form, NormalForm};
use seqdl_syntax::{Literal, PathExpr, Predicate, Program, Rule, Stratum, Term, Var};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Algebra -> Datalog
// ---------------------------------------------------------------------------

/// Translate an algebra expression into a nonrecursive Sequence Datalog program
/// computing the same relation in `output` ("That sequence relational algebra can be
/// translated to Sequence Datalog is clear", Section 7).
pub fn algebra_to_datalog(expr: &AlgebraExpr, output: RelName) -> Result<Program, AlgebraError> {
    let mut strata: Vec<Stratum> = Vec::new();
    let top = translate_expr(expr, &mut strata)?;
    // Final copy rule into the requested output name.
    let arity = expr.arity()?;
    let vars: Vec<PathExpr> = (0..arity)
        .map(|i| PathExpr::var(Var::path(&format!("c{i}"))))
        .collect();
    strata.push(Stratum::new(vec![Rule::new(
        Predicate::new(output, vars.clone()),
        vec![Literal::pred(Predicate::new(top, vars))],
    )]));
    Ok(Program::new(strata))
}

/// Translate `expr`, appending strata that define a fresh relation holding its
/// value, and return that relation's name.
fn translate_expr(expr: &AlgebraExpr, strata: &mut Vec<Stratum>) -> Result<RelName, AlgebraError> {
    let arity = expr.arity()?;
    let me = RelName::fresh("Alg");
    let vars: Vec<Var> = (0..arity).map(|i| Var::path(&format!("c{i}"))).collect();
    let var_exprs: Vec<PathExpr> = vars.iter().map(|v| PathExpr::var(*v)).collect();
    let head = Predicate::new(me, var_exprs.clone());

    let rules = match expr {
        AlgebraExpr::Relation { name, .. } => vec![Rule::new(
            head,
            vec![Literal::pred(Predicate::new(*name, var_exprs.clone()))],
        )],
        AlgebraExpr::Constant { tuples, .. } => tuples
            .iter()
            .map(|t| {
                Rule::fact(Predicate::new(
                    me,
                    t.iter().map(PathExpr::from_path).collect(),
                ))
            })
            .collect(),
        AlgebraExpr::Union(a, b) => {
            let ra = translate_expr(a, strata)?;
            let rb = translate_expr(b, strata)?;
            vec![
                Rule::new(
                    head.clone(),
                    vec![Literal::pred(Predicate::new(ra, var_exprs.clone()))],
                ),
                Rule::new(
                    head,
                    vec![Literal::pred(Predicate::new(rb, var_exprs.clone()))],
                ),
            ]
        }
        AlgebraExpr::Difference(a, b) => {
            let ra = translate_expr(a, strata)?;
            let rb = translate_expr(b, strata)?;
            vec![Rule::new(
                head,
                vec![
                    Literal::pred(Predicate::new(ra, var_exprs.clone())),
                    Literal::not_pred(Predicate::new(rb, var_exprs.clone())),
                ],
            )]
        }
        AlgebraExpr::Product(a, b) => {
            let ra = translate_expr(a, strata)?;
            let rb = translate_expr(b, strata)?;
            let na = a.arity()?;
            vec![Rule::new(
                head,
                vec![
                    Literal::pred(Predicate::new(ra, var_exprs[..na].to_vec())),
                    Literal::pred(Predicate::new(rb, var_exprs[na..].to_vec())),
                ],
            )]
        }
        AlgebraExpr::Select { input, lhs, rhs } => {
            let ri = translate_expr(input, strata)?;
            vec![Rule::new(
                head,
                vec![
                    Literal::pred(Predicate::new(ri, var_exprs.clone())),
                    Literal::eq(columns_to_vars(lhs, &vars), columns_to_vars(rhs, &vars)),
                ],
            )]
        }
        AlgebraExpr::Project { input, exprs } => {
            let ri = translate_expr(input, strata)?;
            let in_arity = input.arity()?;
            let in_vars: Vec<Var> = (0..in_arity).map(|i| Var::path(&format!("c{i}"))).collect();
            let in_var_exprs: Vec<PathExpr> = in_vars.iter().map(|v| PathExpr::var(*v)).collect();
            vec![Rule::new(
                Predicate::new(
                    me,
                    exprs.iter().map(|e| columns_to_vars(e, &in_vars)).collect(),
                ),
                vec![Literal::pred(Predicate::new(ri, in_var_exprs))],
            )]
        }
        AlgebraExpr::Unpack { input, column } => {
            let ri = translate_expr(input, strata)?;
            let mut body_args = var_exprs.clone();
            body_args[*column - 1] =
                PathExpr::singleton(Term::Packed(PathExpr::var(vars[*column - 1])));
            vec![Rule::new(
                head,
                vec![Literal::pred(Predicate::new(ri, body_args))],
            )]
        }
        AlgebraExpr::Substrings { input, column } => {
            let ri = translate_expr(input, strata)?;
            let in_arity = input.arity()?;
            let u = Var::fresh_path("sub_u");
            let w = Var::fresh_path("sub_w");
            // Column `column` of the operand is matched as $u·$s·$w where $s is the
            // new last column.
            let s = vars[in_arity]; // the appended column variable
            let mut body_args: Vec<PathExpr> = var_exprs[..in_arity].to_vec();
            body_args[*column - 1] =
                PathExpr::from_terms([Term::Var(u), Term::Var(s), Term::Var(w)]);
            let mut head_args: Vec<PathExpr> = var_exprs[..in_arity].to_vec();
            head_args[*column - 1] = body_args[*column - 1].clone();
            head_args.push(PathExpr::var(s));
            vec![Rule::new(
                Predicate::new(me, head_args),
                vec![Literal::pred(Predicate::new(ri, body_args))],
            )]
        }
    };
    strata.push(Stratum::new(rules));
    Ok(me)
}

/// Replace the column variables `$1..$n` in a selection/projection expression by the
/// given rule variables.
fn columns_to_vars(expr: &PathExpr, vars: &[Var]) -> PathExpr {
    let map: BTreeMap<Var, PathExpr> = vars
        .iter()
        .enumerate()
        .map(|(i, v)| (Var::path(&(i + 1).to_string()), PathExpr::var(*v)))
        .collect();
    expr.substitute(&map)
}

// ---------------------------------------------------------------------------
// Datalog -> Algebra
// ---------------------------------------------------------------------------

/// Translate a nonrecursive, equation-free Sequence Datalog program into an algebra
/// expression for the IDB relation `target` (Theorem 7.1).
///
/// Programs with equations can be handled by composing with
/// [`seqdl_rewrite::eliminate_equations`] first.
///
/// # Errors
/// Translation errors (recursion, equations, or rules outside Lemma 7.2 shapes after
/// normalisation — the latter indicates a bug).
pub fn datalog_to_algebra(program: &Program, target: RelName) -> Result<AlgebraExpr, AlgebraError> {
    let normal = to_normal_form(program)
        .map_err(|e| AlgebraError::Translation(format!("normal form failed: {e}")))?;
    let arities = normal
        .relation_arities()
        .map_err(|e| AlgebraError::Translation(format!("inconsistent arities: {e}")))?;
    let idb = normal.idb_relations();
    let mut memo: BTreeMap<RelName, AlgebraExpr> = BTreeMap::new();
    let rules: Vec<Rule> = normal.rules().cloned().collect();
    let expr = expr_for_relation(target, &rules, &idb, &arities, &mut memo, 0)?;
    Ok(expr)
}

fn expr_for_relation(
    relation: RelName,
    rules: &[Rule],
    idb: &std::collections::BTreeSet<RelName>,
    arities: &BTreeMap<RelName, usize>,
    memo: &mut BTreeMap<RelName, AlgebraExpr>,
    depth: usize,
) -> Result<AlgebraExpr, AlgebraError> {
    if let Some(e) = memo.get(&relation) {
        return Ok(e.clone());
    }
    if depth > 10_000 {
        return Err(AlgebraError::Translation(
            "relation dependency too deep (recursive program?)".into(),
        ));
    }
    if !idb.contains(&relation) {
        let arity = arities.get(&relation).copied().unwrap_or(1);
        return Ok(AlgebraExpr::relation(relation, arity));
    }
    let defining: Vec<&Rule> = rules
        .iter()
        .filter(|r| r.head.relation == relation)
        .collect();
    let arity = arities.get(&relation).copied().unwrap_or(0);
    let mut expr: Option<AlgebraExpr> = None;
    for rule in defining {
        let rule_expr = expr_for_rule(rule, rules, idb, arities, memo, depth + 1)?;
        expr = Some(match expr {
            None => rule_expr,
            Some(prev) => AlgebraExpr::union(prev, rule_expr),
        });
    }
    let result = expr.unwrap_or(AlgebraExpr::Constant {
        arity,
        tuples: Vec::new(),
    });
    memo.insert(relation, result.clone());
    Ok(result)
}

fn expr_for_rule(
    rule: &Rule,
    rules: &[Rule],
    idb: &std::collections::BTreeSet<RelName>,
    arities: &BTreeMap<RelName, usize>,
    memo: &mut BTreeMap<RelName, AlgebraExpr>,
    depth: usize,
) -> Result<AlgebraExpr, AlgebraError> {
    let form = classify_rule(rule).ok_or_else(|| {
        AlgebraError::Translation(format!("rule is not in Lemma 7.2 normal form: {rule}"))
    })?;
    let mut sub = |rel: RelName| expr_for_relation(rel, rules, idb, arities, memo, depth + 1);
    match form {
        NormalForm::Constant => {
            let tuple: Option<Vec<_>> = rule.head.args.iter().map(PathExpr::as_path).collect();
            Ok(AlgebraExpr::Constant {
                arity: rule.head.arity(),
                tuples: vec![tuple.expect("constant rules have ground heads")],
            })
        }
        NormalForm::AddColumn => {
            // R1(v1..vn, e) ← R2(v1..vn): project R2 onto ($1..$n, e[$i/vi]).
            let body = rule.positive_body_predicates()[0];
            let input = sub(body.relation)?;
            let body_vars: Vec<Var> = body.args.iter().map(|a| a.vars()[0]).collect();
            let mut exprs: Vec<PathExpr> = (1..=body_vars.len()).map(col).collect();
            let last = rule.head.args.last().expect("arity n+1");
            exprs.push(vars_to_columns(last, &body_vars));
            Ok(AlgebraExpr::project(input, exprs))
        }
        NormalForm::Projection => {
            let body = rule.positive_body_predicates()[0];
            let input = sub(body.relation)?;
            let body_vars: Vec<Var> = body.args.iter().map(|a| a.vars()[0]).collect();
            let exprs: Vec<PathExpr> = rule
                .head
                .args
                .iter()
                .map(|a| vars_to_columns(a, &body_vars))
                .collect();
            Ok(AlgebraExpr::project(input, exprs))
        }
        NormalForm::Join => {
            let positives = rule.positive_body_predicates();
            let (p1, p2) = (positives[0], positives[1]);
            let left = sub(p1.relation)?;
            let right = sub(p2.relation)?;
            let product = AlgebraExpr::product(left, right);
            // Column for each variable occurrence; add selections for repeats.
            let mut all_vars: Vec<Var> = Vec::new();
            for p in [p1, p2] {
                for a in &p.args {
                    all_vars.push(a.vars()[0]);
                }
            }
            let mut selected = product;
            let mut first_col: BTreeMap<Var, usize> = BTreeMap::new();
            for (i, v) in all_vars.iter().enumerate() {
                match first_col.get(v) {
                    None => {
                        first_col.insert(*v, i + 1);
                    }
                    Some(&j) => {
                        selected = AlgebraExpr::select(selected, col(j), col(i + 1));
                    }
                }
            }
            let exprs: Vec<PathExpr> = rule
                .head
                .args
                .iter()
                .map(|a| col(first_col[&a.vars()[0]]))
                .collect();
            Ok(AlgebraExpr::project(selected, exprs))
        }
        NormalForm::Antijoin => {
            // R1(v1..vn) ← R2(v1..vn), ¬R3(v'1..v'm): R2 − (tuples matching R3).
            let body = rule.positive_body_predicates()[0];
            let neg = rule.negative_body_predicates()[0];
            let base = sub(body.relation)?;
            let neg_expr = sub(neg.relation)?;
            let body_vars: Vec<Var> = body.args.iter().map(|a| a.vars()[0]).collect();
            let n = body_vars.len();
            let mut matching = AlgebraExpr::product(base.clone(), neg_expr);
            for (i, a) in neg.args.iter().enumerate() {
                let v = a.vars()[0];
                let j = body_vars.iter().position(|bv| *bv == v).expect("v' ⊆ v") + 1;
                matching = AlgebraExpr::select(matching, col(j), col(n + i + 1));
            }
            let matching = AlgebraExpr::project(matching, (1..=n).map(col).collect());
            Ok(AlgebraExpr::difference(base, matching))
        }
        NormalForm::Extraction => {
            // R1(v1..vn) ← R2(e1..em): generate candidate values for the variables
            // from substrings (and unpackings) of R2's columns, then select the
            // tuples where each e_j equals column j, and project onto the variables.
            let body = rule.positive_body_predicates()[0];
            let input = sub(body.relation)?;
            let m = body.arity();
            let head_vars: Vec<Var> = rule.head.args.iter().map(|a| a.vars()[0]).collect();
            let depth_needed = body
                .args
                .iter()
                .map(PathExpr::packing_depth)
                .max()
                .unwrap_or(0);

            // CAND: one-column relation of all candidate values.
            let mut cand: Option<AlgebraExpr> = None;
            for i in 1..=m {
                let subs = AlgebraExpr::project(
                    AlgebraExpr::substrings(input.clone(), i),
                    vec![col(m + 1)],
                );
                cand = Some(match cand {
                    None => subs,
                    Some(prev) => AlgebraExpr::union(prev, subs),
                });
            }
            let mut cand = cand.ok_or_else(|| {
                AlgebraError::Translation("extraction rule with nullary body".into())
            })?;
            // Deepen: values inside packed candidates, up to the nesting depth used
            // by the rule.
            let mut level = cand.clone();
            for _ in 0..depth_needed {
                // Unpack the (single) column, then take substrings of the content.
                let unpacked = AlgebraExpr::unpack(level.clone(), 1);
                let inner =
                    AlgebraExpr::project(AlgebraExpr::substrings(unpacked, 1), vec![col(2)]);
                cand = AlgebraExpr::union(cand, inner.clone());
                level = inner;
            }
            let atomic_cand = atomic_filter(&cand);

            // R2 × candidates for each variable.
            let mut combined = input;
            for v in &head_vars {
                let candidates = if v.is_atom_var() {
                    atomic_cand.clone()
                } else {
                    cand.clone()
                };
                combined = AlgebraExpr::product(combined, candidates);
            }
            // Selections: e_j (with variables replaced by their candidate columns)
            // must equal column j.
            let var_col: BTreeMap<Var, usize> = head_vars
                .iter()
                .enumerate()
                .map(|(i, v)| (*v, m + i + 1))
                .collect();
            let mut selected = combined;
            for (j, e) in body.args.iter().enumerate() {
                let map: BTreeMap<Var, PathExpr> = e
                    .vars()
                    .into_iter()
                    .map(|v| (v, col(var_col[&v])))
                    .collect();
                selected = AlgebraExpr::select(selected, e.substitute(&map), col(j + 1));
            }
            let exprs: Vec<PathExpr> = head_vars.iter().map(|v| col(var_col[v])).collect();
            Ok(AlgebraExpr::project(selected, exprs))
        }
    }
}

/// `ATOMIC(C)` for a one-column relation `C`: the tuples whose value is an atomic
/// value, expressed with the primitive operators only (Section 7 remarks that the
/// given operators suffice).
fn atomic_filter(cand: &AlgebraExpr) -> AlgebraExpr {
    // EMPTY: value = ε.
    let empty = AlgebraExpr::select(cand.clone(), col(1), PathExpr::empty());
    // LONG: value has two nonempty parts.  D = SUB_1(SUB_1(C)) has columns
    // (c, s, t); keep c = s·t, drop s = ε and t = ε, project to c.
    let d = AlgebraExpr::substrings(AlgebraExpr::substrings(cand.clone(), 1), 1);
    let split = AlgebraExpr::select(d, col(1), col(2).concat(&col(3)));
    let s_empty = AlgebraExpr::select(split.clone(), col(2), PathExpr::empty());
    let t_empty = AlgebraExpr::select(split.clone(), col(3), PathExpr::empty());
    let long = AlgebraExpr::project(
        AlgebraExpr::difference(AlgebraExpr::difference(split, s_empty), t_empty),
        vec![col(1)],
    );
    // PACKED: duplicate the column and unpack the copy; survivors had packed values.
    let dup = AlgebraExpr::project(cand.clone(), vec![col(1), col(1)]);
    let packed = AlgebraExpr::project(AlgebraExpr::unpack(dup, 2), vec![col(1)]);
    AlgebraExpr::difference(
        AlgebraExpr::difference(AlgebraExpr::difference(cand.clone(), empty), long),
        packed,
    )
}

/// Replace rule variables by the column variables of their positions.
fn vars_to_columns(expr: &PathExpr, body_vars: &[Var]) -> PathExpr {
    let map: BTreeMap<Var, PathExpr> = body_vars
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, col(i + 1)))
        .collect();
    expr.substitute(&map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use seqdl_core::{path_of, rel, Fact, Instance, Path};
    use seqdl_engine::Engine;
    use seqdl_syntax::parse_program;
    use std::collections::BTreeSet;

    /// Check `P(I)(target) = E(I)` for the translated expression (Theorem 7.1).
    fn assert_translation_agrees(src: &str, target: &str, instances: Vec<Instance>) {
        let program = parse_program(src).unwrap();
        let expr = datalog_to_algebra(&program, rel(target)).unwrap();
        let engine = Engine::new();
        for instance in instances {
            let datalog: BTreeSet<Vec<Path>> = engine
                .run(&program, &instance)
                .unwrap()
                .relation(rel(target))
                .map(|r| r.iter().cloned().collect())
                .unwrap_or_default();
            let algebra = eval(&expr, &instance).unwrap();
            assert_eq!(datalog, algebra, "mismatch for `{src}` on {instance}");
        }
    }

    fn edge_instance(edges: &[(&str, &str)], black: &[&str]) -> Instance {
        let mut inst = Instance::new();
        for (a, b) in edges {
            inst.insert_fact(Fact::new(rel("R"), vec![path_of(&[a, b])]))
                .unwrap();
        }
        for b in black {
            inst.insert_fact(Fact::new(rel("B"), vec![path_of(&[b])]))
                .unwrap();
        }
        inst
    }

    #[test]
    fn algebra_to_datalog_round_trips_each_operator() {
        let mut inst = Instance::new();
        for (x, y) in [("a", "b"), ("b", "c"), ("c", "c")] {
            inst.insert_fact(Fact::new(rel("E"), vec![path_of(&[x]), path_of(&[y])]))
                .unwrap();
        }
        inst.insert_fact(Fact::new(
            rel("P"),
            vec![Path::singleton(seqdl_core::Value::packed(path_of(&[
                "x", "y",
            ])))],
        ))
        .unwrap();
        let exprs = vec![
            AlgebraExpr::relation(rel("E"), 2),
            AlgebraExpr::select(AlgebraExpr::relation(rel("E"), 2), col(1), col(2)),
            AlgebraExpr::project(
                AlgebraExpr::relation(rel("E"), 2),
                vec![col(2).concat(&col(1))],
            ),
            AlgebraExpr::union(
                AlgebraExpr::project(AlgebraExpr::relation(rel("E"), 2), vec![col(1)]),
                AlgebraExpr::project(AlgebraExpr::relation(rel("E"), 2), vec![col(2)]),
            ),
            AlgebraExpr::difference(
                AlgebraExpr::project(AlgebraExpr::relation(rel("E"), 2), vec![col(1)]),
                AlgebraExpr::project(AlgebraExpr::relation(rel("E"), 2), vec![col(2)]),
            ),
            AlgebraExpr::product(
                AlgebraExpr::relation(rel("E"), 2),
                AlgebraExpr::relation(rel("E"), 2),
            ),
            AlgebraExpr::substrings(AlgebraExpr::relation(rel("P"), 1), 1),
            AlgebraExpr::unpack(AlgebraExpr::relation(rel("P"), 1), 1),
            AlgebraExpr::constant(1, vec![vec![path_of(&["q"])]]),
        ];
        let engine = Engine::new();
        for expr in exprs {
            let program = algebra_to_datalog(&expr, rel("Out")).unwrap();
            let expected = eval(&expr, &inst).unwrap();
            let got: BTreeSet<Vec<Path>> = engine
                .run(&program, &inst)
                .unwrap()
                .relation(rel("Out"))
                .map(|r| r.iter().cloned().collect())
                .unwrap_or_default();
            assert_eq!(expected, got, "mismatch for {expr}");
        }
    }

    #[test]
    fn copy_and_projection_rules_translate() {
        assert_translation_agrees(
            "S($x) <- R($x).",
            "S",
            vec![
                Instance::unary(rel("R"), [path_of(&["a", "b"]), Path::empty()]),
                Instance::unary(rel("R"), []),
            ],
        );
    }

    #[test]
    fn extraction_rules_translate() {
        assert_translation_agrees(
            "S($x) <- R(a·$x·b).",
            "S",
            vec![Instance::unary(
                rel("R"),
                [
                    path_of(&["a", "z", "b"]),
                    path_of(&["a", "b"]),
                    path_of(&["b", "a"]),
                ],
            )],
        );
    }

    #[test]
    fn extraction_with_atomic_variables_translates() {
        // @u must bind an atomic value: a·b·d (with @u = b) qualifies, a·b·c·d does
        // not.
        assert_translation_agrees(
            "S(@u) <- R(a·@u·d).",
            "S",
            vec![Instance::unary(
                rel("R"),
                [path_of(&["a", "b", "d"]), path_of(&["a", "b", "c", "d"])],
            )],
        );
    }

    #[test]
    fn joins_translate() {
        let mut inst = Instance::unary(rel("R"), [path_of(&["a"]), path_of(&["b"])]);
        for p in [path_of(&["b"]), path_of(&["c"])] {
            inst.insert_fact(Fact::new(rel("Q"), vec![p])).unwrap();
        }
        assert_translation_agrees("S($x) <- R($x), Q($x).", "S", vec![inst]);
    }

    #[test]
    fn negation_translates_to_difference() {
        assert_translation_agrees(
            "S(@x) <- R(@x·@y), !B(@y).",
            "S",
            vec![
                edge_instance(&[("n1", "n2"), ("n1", "n3"), ("n4", "n2")], &["n2"]),
                edge_instance(&[("n1", "n2")], &[]),
            ],
        );
    }

    #[test]
    fn two_strata_translate() {
        assert_translation_agrees(
            "W(@x) <- R(@x·@y), !B(@y).\n---\nS(@x) <- R(@x·@y), !W(@x).",
            "S",
            vec![edge_instance(
                &[("n1", "n2"), ("n1", "n3"), ("n4", "n2")],
                &["n2"],
            )],
        );
    }

    #[test]
    fn packed_extraction_translates() {
        // Extract the content of a packed value.
        let mut inst = Instance::new();
        inst.insert_fact(Fact::new(
            rel("R"),
            vec![Path::from_values([
                seqdl_core::Value::atom("c"),
                seqdl_core::Value::packed(path_of(&["a", "b"])),
            ])],
        ))
        .unwrap();
        inst.insert_fact(Fact::new(rel("R"), vec![path_of(&["c", "d"])]))
            .unwrap();
        assert_translation_agrees("S($x) <- R(c·<$x>).", "S", vec![inst]);
    }

    #[test]
    fn recursive_programs_are_rejected() {
        let program = parse_program("T($x·a) <- T($x).\nT($x) <- R($x).").unwrap();
        assert!(datalog_to_algebra(&program, rel("T")).is_err());
    }
}
