//! # seqdl-trace — a zero-dependency span/event sink for the evaluation pipeline
//!
//! The evaluation pipeline (engine fixpoint, RAM interpreter, parallel
//! executor) is instrumented with *spans* (run → stratum → level → round →
//! rule firing) and *events* (counters, instants).  This crate is the sink
//! they write to, designed around one invariant: **when tracing is disabled,
//! an instrumentation point costs a single relaxed atomic load** — no clock
//! read, no allocation, no branch on shared mutable state — so the RAM
//! interpreter's hot loop is unaffected by the instrumentation existing.
//!
//! When a [`Session`] is active, each thread appends [`Event`]s to its own
//! thread-local buffer (no locks on the record path); buffers drain into a
//! global sink when a thread exits or the session [`finish`](Session::finish)es.
//! Thread ids are small process-local ordinals assigned at a thread's first
//! event, and timestamps are microseconds from a process-wide monotonic epoch,
//! so per-thread event order is meaningful.
//!
//! Sessions are process-global and exclusive: [`start`] holds a lock until
//! [`Session::finish`], and every event is tagged with the session ordinal so
//! a straggler thread flushing a stale buffer cannot contaminate a later
//! session.
//!
//! [`chrome_trace_json`] serializes an event stream in the Chrome trace-event
//! format, loadable by Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Whether any session is currently recording.  The one word every
/// instrumentation point reads.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic epoch shared by every thread; set once at the first [`start`].
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Ordinal of the current session; events carry it so [`Session::finish`] can
/// discard events a late-flushing thread recorded for an earlier session.
static SESSION_ID: AtomicU64 = AtomicU64::new(0);

/// Next process-local thread ordinal.
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// Buffers flushed by exiting threads and by [`Session::finish`].
static SINK: Mutex<Vec<Event>> = Mutex::new(Vec::new());

/// Serializes sessions: held from [`start`] to [`Session::finish`].
static SESSION_LOCK: Mutex<()> = Mutex::new(());

/// What an [`Event`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (matched by the next unmatched [`EventKind::End`] on the
    /// same thread).
    Begin,
    /// A span closed.
    End,
    /// A named counter sample ([`Event::value`] holds the sample).
    Counter,
    /// A zero-duration instant (e.g. a governor checkpoint).
    Instant,
}

/// One recorded trace event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Process-local thread ordinal (assigned at the thread's first event).
    pub tid: u32,
    /// Microseconds since the process-wide trace epoch.
    pub ts_us: u64,
    /// Begin/End/Counter/Instant.
    pub kind: EventKind,
    /// Span or counter name.  Present on [`EventKind::Begin`], [`EventKind::End`],
    /// [`EventKind::Counter`], and [`EventKind::Instant`] events alike.
    pub name: String,
    /// Counter sample; 0 for non-counter events.
    pub value: u64,
    /// Session ordinal the event belongs to.
    session: u64,
}

struct ThreadBuf {
    tid: u32,
    events: Vec<Event>,
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        if !self.events.is_empty() {
            lock(&SINK).append(&mut self.events);
        }
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Vec::new(),
    });
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether a tracing session is active.  A single relaxed load — the entire
/// cost of every instrumentation point while tracing is off.
#[inline(always)]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn now_us() -> u64 {
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn record(kind: EventKind, name: String, value: u64) {
    let event = Event {
        tid: 0, // patched below with the thread's ordinal
        ts_us: now_us(),
        kind,
        name,
        value,
        session: SESSION_ID.load(Ordering::Relaxed),
    };
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        let tid = b.tid;
        b.events.push(Event { tid, ..event });
    });
}

/// An exclusive recording session.  Created by [`start`]; dropped or
/// [`finish`](Session::finish)ed to stop recording.
pub struct Session {
    _exclusive: MutexGuard<'static, ()>,
}

/// Begin a recording session, enabling every instrumentation point in the
/// process.  Blocks until any other session in the process has finished.
#[must_use]
pub fn start() -> Session {
    let guard = lock(&SESSION_LOCK);
    EPOCH.get_or_init(Instant::now);
    SESSION_ID.fetch_add(1, Ordering::Relaxed);
    lock(&SINK).clear();
    ENABLED.store(true, Ordering::Relaxed);
    Session { _exclusive: guard }
}

impl Session {
    /// Stop recording and return every event of this session, stably ordered
    /// by timestamp (per-thread relative order is preserved).
    ///
    /// Threads that exited before this call (e.g. a scoped worker pool)
    /// flushed their buffers on exit; the calling thread's buffer is flushed
    /// here.  A thread still running concurrently may lose its tail events —
    /// the callers in this workspace all join their workers first.
    #[must_use]
    pub fn finish(self) -> Vec<Event> {
        ENABLED.store(false, Ordering::Relaxed);
        let session = SESSION_ID.load(Ordering::Relaxed);
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            if !b.events.is_empty() {
                let mut drained = std::mem::take(&mut b.events);
                lock(&SINK).append(&mut drained);
            }
        });
        let mut events: Vec<Event> = lock(&SINK)
            .drain(..)
            .filter(|e| e.session == session)
            .collect();
        events.sort_by_key(|e| e.ts_us);
        events
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Relaxed);
    }
}

/// RAII span: records [`EventKind::Begin`] now (if a session is active) and
/// the matching [`EventKind::End`] on drop.
pub struct SpanGuard {
    /// The span name, kept for the End event; `None` when tracing was off at
    /// construction, so the drop is free and never emits an unmatched End.
    name: Option<String>,
}

/// Open a span.  `name` is only invoked when a session is active, so callers
/// can format rule renderings lazily.
#[inline]
pub fn span(name: impl FnOnce() -> String) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name: None };
    }
    let name = name();
    record(EventKind::Begin, name.clone(), 0);
    SpanGuard { name: Some(name) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            record(EventKind::End, name, 0);
        }
    }
}

/// Record a counter sample (no-op without an active session).
#[inline]
pub fn counter(name: &str, value: u64) {
    if enabled() {
        record(EventKind::Counter, name.to_string(), value);
    }
}

/// Record a zero-duration instant (no-op without an active session).
#[inline]
pub fn instant(name: &str) {
    if enabled() {
        record(EventKind::Instant, name.to_string(), 0);
    }
}

/// Escape `s` for embedding in a JSON string literal (quotes, backslashes,
/// and control characters; everything else passes through as UTF-8).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize events in the Chrome trace-event format (JSON array form):
/// `B`/`E` duration events for spans, `C` counter events, and `i` instants,
/// all under `pid` 1 with the recorded thread ordinals as `tid`.  The result
/// loads directly into Perfetto or `chrome://tracing`.
#[must_use]
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = json_escape(&e.name);
        let (tid, ts) = (e.tid, e.ts_us);
        let _ = match e.kind {
            EventKind::Begin => write!(
                out,
                "\n{{\"name\":\"{name}\",\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":{ts}}}"
            ),
            EventKind::End => write!(
                out,
                "\n{{\"name\":\"{name}\",\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{ts}}}"
            ),
            EventKind::Counter => write!(
                out,
                "\n{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\
                 \"args\":{{\"value\":{}}}}}",
                e.value
            ),
            EventKind::Instant => write!(
                out,
                "\n{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\
                 \"ts\":{ts}}}"
            ),
        };
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing is process-global state; serialize the tests of this module so
    /// one test's disabled-phase assertions cannot observe another's session.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _t = lock(&TEST_LOCK);
        assert!(!enabled());
        {
            let _s = span(|| unreachable!("name closure must not run while disabled"));
            counter("c", 1);
            instant("i");
        }
        let session = start();
        let events = session.finish();
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn session_records_balanced_spans_and_counters() {
        let _t = lock(&TEST_LOCK);
        let session = start();
        {
            let _outer = span(|| "outer".to_string());
            counter("work", 3);
            let _inner = span(|| "inner".to_string());
            instant("tick");
        }
        let events = session.finish();
        assert!(!enabled());
        let names: Vec<(&str, EventKind)> =
            events.iter().map(|e| (e.name.as_str(), e.kind)).collect();
        assert_eq!(
            names,
            vec![
                ("outer", EventKind::Begin),
                ("work", EventKind::Counter),
                ("inner", EventKind::Begin),
                ("tick", EventKind::Instant),
                ("inner", EventKind::End),
                ("outer", EventKind::End),
            ]
        );
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert!(events.iter().all(|e| e.tid == events[0].tid));
    }

    #[test]
    fn worker_thread_buffers_flush_on_exit_with_distinct_tids() {
        let _t = lock(&TEST_LOCK);
        let session = start();
        let main_tid = {
            let _s = span(|| "driver".to_string());
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _w = span(|| "worker".to_string());
                });
            });
            BUF.with(|b| b.borrow().tid)
        };
        let events = session.finish();
        assert_eq!(events.len(), 4);
        let worker_tid = events
            .iter()
            .find(|e| e.name == "worker")
            .expect("worker span recorded")
            .tid;
        assert_ne!(main_tid, worker_tid);
    }

    #[test]
    fn chrome_export_emits_one_object_per_event() {
        let _t = lock(&TEST_LOCK);
        let session = start();
        {
            let _s = span(|| "a \"quoted\" name".to_string());
            counter("n", 7);
        }
        let events = session.finish();
        let json = chrome_trace_json(&events);
        assert_eq!(json.matches("{\"name\"").count(), 3);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn stale_buffers_from_an_earlier_session_are_discarded() {
        let _t = lock(&TEST_LOCK);
        let first = start();
        counter("old", 1);
        drop(first); // disable without draining: "old" stays buffered
        let second = start();
        counter("new", 2);
        let events = second.finish();
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!(events[0].name, "new");
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
