//! The `seqdl` binary: a thin wrapper around [`seqdl_cli::run_cli`].

fn main() {
    seqdl_cli::install_sigint_handler();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match seqdl_cli::run_cli(&args) {
        Ok(output) => {
            if !output.is_empty() {
                println!("{output}");
            }
        }
        Err(error) => {
            eprintln!("seqdl: {error}");
            std::process::exit(1);
        }
    }
}
