//! The subcommand implementations.

use crate::args::{ArgError, Flags};
use seqdl_algebra::datalog_to_algebra;
use seqdl_analysis::{check_json, check_program, render_text, CheckOptions, Severity};
use seqdl_core::{Instance, RelName, Tuple};
use seqdl_engine::{Engine, EvalLimits, FixpointStrategy};
use seqdl_exec::{Executor, Schedule};
use seqdl_fragments::{rewrite_into, Feature, Fragment, HasseDiagram};
use seqdl_io::{load_instance, load_program};
use seqdl_regex::{compile_contains, compile_match, parse_regex, CompileOptions};
use seqdl_rewrite::{
    eliminate_arity, eliminate_equations, eliminate_packing_nonrecursive,
    fold_intermediate_predicates, goal_matches, magic, parse_goal, to_normal_form,
};
use seqdl_syntax::{parse_expr, Equation, Program};
use seqdl_unify::{is_one_sided_nonlinear, solve, solve_allowing_empty, SolveOptions};
use std::fmt;
use std::fmt::Write as _;

/// Errors surfaced to the user by the CLI.
#[derive(Debug)]
pub enum CliError {
    /// Bad command-line arguments.
    Args(ArgError),
    /// An unknown subcommand.
    UnknownCommand(String),
    /// Anything that went wrong while executing the command (file, parse,
    /// evaluation, or rewrite errors), already rendered.
    Command(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(name) => {
                write!(f, "unknown command `{name}`; run `seqdl help` for usage")
            }
            CliError::Command(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

fn command_error(e: impl fmt::Display) -> CliError {
    CliError::Command(e.to_string())
}

/// The `seqdl help` text.
pub fn help_text() -> String {
    concat!(
        "seqdl — Sequence Datalog for sequence databases (PODS 2021 reproduction)\n",
        "\n",
        "Usage:\n",
        "  seqdl run         --program q.sdl --instance db.sdi [--output S] [--strategy naive|semi-naive]\n",
        "                    [--threads N] [--shard-size N] [--max-iterations N] [--max-facts N]\n",
        "                    [--max-path-len N] [--timeout 50ms|2s] [--max-store-bytes 64m]\n",
        "                    [--no-ram] [--stats] [--profile] [--stats-format text|json]\n",
        "                    [--trace-out trace.json] [--save out.sdi]\n",
        "  seqdl query       --program q.sdl --instance db.sdi --goal \"Reach(a·b·$x)?\"\n",
        "                    [--threads N] [--timeout 50ms] [--no-ram] [--stats] [--profile]\n",
        "                    [--stats-format text|json] [--trace-out trace.json] [--show-rewrite]\n",
        "                    (demand-driven: only rules relevant to the goal fire, via the\n",
        "                    magic-set rewrite)\n",
        "  seqdl check       --program q.sdl [--instance db.sdi] [--output S] [--format text|json]\n",
        "                    [--deny warnings]\n",
        "  seqdl analyze     --program q.sdl [--show-ram]\n",
        "  seqdl termination --program q.sdl\n",
        "  seqdl rewrite     --program q.sdl --eliminate arity|equations|packing|intermediate [--output S]\n",
        "  seqdl normalize   --program q.sdl\n",
        "  seqdl algebra     --program q.sdl --output S\n",
        "  seqdl fragment    --program q.sdl --target EINR --output S\n",
        "  seqdl hasse       [--dot] [--all]\n",
        "  seqdl unify       --equation \"lhs = rhs\" [--allow-empty] [--dot]\n",
        "  seqdl regex       --pattern \"a (b|c)*\" [--contains] [--instance db.sdi] [--input R] [--output Match]\n",
        "  seqdl help\n",
        "\n",
        "Programs are .sdl files (Sequence Datalog source); instances are .sdi files\n",
        "(ground facts, one per line).  See the repository README for the syntax.\n",
        "\n",
        "Static analysis: `seqdl check` runs the lint pipeline (dead rules,\n",
        "always-false bodies, duplicate and subsumed rules, variable hygiene,\n",
        "divergence risk) and reports findings with stable codes (SD-E…, SD-W…,\n",
        "SD-I…).  `--deny warnings` exits nonzero on any warning; `--format json`\n",
        "emits a versioned machine-readable document.  A program may annotate\n",
        "intentional findings with `% expect: SD-W101` comment lines — expected\n",
        "codes do not fail `--deny warnings`, and an expected code that does NOT\n",
        "fire is an error.  `run` and `query` print the same warnings as a\n",
        "pre-flight and prune rules that cannot contribute to the output before\n",
        "evaluation (disable with `--no-strip-dead`; `--save` also disables the\n",
        "pruning, since it must materialise every relation).\n",
        "\n",
        "By default rules are compiled to a flat RAM-style instruction program\n",
        "(`seqdl analyze --show-ram` prints the listing); `--no-ram` falls back to\n",
        "the legacy tree-walking matcher.\n",
        "\n",
        "Resource governance: `--timeout D` imposes a wall-clock deadline (bare\n",
        "numbers are milliseconds; `ms`/`s`/`m` suffixes accepted), and\n",
        "`--max-store-bytes N` bounds the path store's growth (`k`/`m`/`g`\n",
        "suffixes accepted).  A run stopped by either — or by Ctrl-C — exits\n",
        "nonzero and reports the statistics accumulated up to that point.\n",
        "\n",
        "Observability: `--stats` prints evaluation counters with per-stratum\n",
        "wall percentages and the path store's size; `--profile` prints a\n",
        "hot-rules table (per-rule firings, derived facts, wall time, and\n",
        "index counters, hottest first); `--stats-format json` replaces the\n",
        "text block with a stable JSON document (outcome, totals, strata,\n",
        "per-rule profile, store) that the bench harness consumes; and\n",
        "`--trace-out FILE` records the run's spans (run → stratum → round →\n",
        "rule, with real thread ids) as Chrome trace-event JSON — open it at\n",
        "https://ui.perfetto.dev or chrome://tracing.\n",
    )
    .to_string()
}

/// Dispatch a single subcommand.
///
/// # Errors
/// Propagates argument, file, parse, and evaluation errors as [`CliError`].
pub fn run_command(command: &str, flags: &Flags) -> Result<String, CliError> {
    match command {
        "help" | "--help" | "-h" => Ok(help_text()),
        "run" => cmd_run(flags),
        "query" => cmd_query(flags),
        "check" => cmd_check(flags),
        "analyze" | "analyse" => cmd_analyze(flags),
        "termination" => cmd_termination(flags),
        "rewrite" => cmd_rewrite(flags),
        "normalize" | "normalise" => cmd_normalize(flags),
        "algebra" => cmd_algebra(flags),
        "fragment" => cmd_fragment(flags),
        "hasse" => cmd_hasse(flags),
        "unify" => cmd_unify(flags),
        "regex" => cmd_regex(flags),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn load_program_flag(flags: &Flags) -> Result<Program, CliError> {
    let path = flags.require("program")?;
    load_program(path).map_err(command_error)
}

fn load_instance_flag(flags: &Flags) -> Result<Instance, CliError> {
    let path = flags.require("instance")?;
    load_instance(path).map_err(command_error)
}

fn output_relation(flags: &Flags, program: &Program) -> Result<RelName, CliError> {
    if let Some(name) = flags.get("output") {
        return Ok(RelName::new(name));
    }
    // Default: the single IDB relation of the last stratum's last rule.
    program
        .strata
        .last()
        .and_then(|s| s.rules.last())
        .map(|r| r.head.relation)
        .ok_or_else(|| CliError::Command("program has no rules; pass --output explicitly".into()))
}

/// Parse a `--timeout` value: a bare number means milliseconds; `ms`, `s`,
/// and `m` suffixes are accepted (`50ms`, `2s`, `1m`).
fn parse_timeout(value: &str) -> Result<std::time::Duration, CliError> {
    let value = value.trim();
    let (number, scale_ms) = if let Some(n) = value.strip_suffix("ms") {
        (n, 1u64)
    } else if let Some(n) = value.strip_suffix('s') {
        (n, 1_000)
    } else if let Some(n) = value.strip_suffix('m') {
        (n, 60_000)
    } else {
        (value, 1)
    };
    number
        .trim()
        .parse::<u64>()
        .map(|n| std::time::Duration::from_millis(n * scale_ms))
        .map_err(|_| {
            CliError::Command(format!(
                "--timeout expects a duration like `500`, `50ms`, `2s`, or `1m`, got `{value}`"
            ))
        })
}

/// Parse a `--max-store-bytes` value: a bare number is bytes; `k`/`kb`,
/// `m`/`mb`, and `g`/`gb` suffixes scale by powers of 1024.
fn parse_bytes(value: &str) -> Result<usize, CliError> {
    let value = value.trim();
    let lower = value.to_ascii_lowercase();
    let (number, scale) = if let Some(n) = lower.strip_suffix("kb").or(lower.strip_suffix('k')) {
        (n.to_string(), 1usize << 10)
    } else if let Some(n) = lower.strip_suffix("mb").or(lower.strip_suffix('m')) {
        (n.to_string(), 1 << 20)
    } else if let Some(n) = lower.strip_suffix("gb").or(lower.strip_suffix('g')) {
        (n.to_string(), 1 << 30)
    } else {
        (lower, 1)
    };
    number
        .trim()
        .parse::<usize>()
        .map(|n| n.saturating_mul(scale))
        .map_err(|_| {
            CliError::Command(format!(
                "--max-store-bytes expects a size like `1048576`, `64k`, or `4m`, got `{value}`"
            ))
        })
}

fn engine_from_flags(flags: &Flags) -> Result<Engine, CliError> {
    let mut limits = EvalLimits::default();
    if let Some(n) = flags.get_usize("max-iterations")? {
        limits.max_iterations = n;
    }
    if let Some(n) = flags.get_usize("max-facts")? {
        limits.max_facts = n;
    }
    if let Some(n) = flags.get_usize("max-path-len")? {
        limits.max_path_len = n;
    }
    if let Some(value) = flags.get("timeout") {
        limits.deadline = Some(parse_timeout(value)?);
    }
    if let Some(value) = flags.get("max-store-bytes") {
        limits.max_store_bytes = Some(parse_bytes(value)?);
    }
    let strategy = match flags.get("strategy") {
        None | Some("semi-naive") | Some("seminaive") => FixpointStrategy::SemiNaive,
        Some("naive") => FixpointStrategy::Naive,
        Some(other) => {
            return Err(CliError::Command(format!(
                "unknown strategy `{other}` (expected `naive` or `semi-naive`)"
            )))
        }
    };
    Ok(Engine::new()
        .with_limits(limits)
        .with_strategy(strategy)
        .with_ram(!flags.has("no-ram"))
        // Ctrl-C cancels a running evaluation at the next governor checkpoint
        // instead of killing the process: the run returns with partial stats.
        .with_cancel_token(seqdl_core::CancelToken::linked_to(&crate::INTERRUPTED)))
}

/// The stratified SCC executor configured by the flags: the engine's limits and
/// strategy plus `--threads N` (1 = in-line, 0 = all available cores) and
/// `--shard-size N` (base delta tuples per parallel shard).
fn executor_from_flags(flags: &Flags) -> Result<Executor, CliError> {
    let engine = engine_from_flags(flags)?;
    let threads = flags.get_usize("threads")?.unwrap_or(1);
    let mut executor = Executor::new().with_engine(engine).with_threads(threads);
    if let Some(shard) = flags.get_usize("shard-size")? {
        executor = executor.with_shard_size(shard);
    }
    Ok(executor)
}

/// Levenshtein edit distance, for did-you-mean suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let next = (prev + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[b.len()]
}

/// Every relation name known to the program or the instance.
fn known_relations(program: &Program, instance: &Instance) -> Vec<RelName> {
    let mut known: Vec<RelName> = program.all_relations().into_iter().collect();
    for name in instance.relation_names_iter() {
        if !known.contains(&name) {
            known.push(name);
        }
    }
    known
}

/// A [`CliError`] for a relation name that appears nowhere in the program or
/// the instance, with a did-you-mean suggestion when a known name is close.
fn unknown_relation_error(name: RelName, known: &[RelName]) -> CliError {
    let suggestion = known
        .iter()
        .map(|k| {
            // Case-insensitive matches outrank near-misses by edit distance.
            let rank = if k.name().eq_ignore_ascii_case(&name.name()) {
                0
            } else {
                edit_distance(&name.name(), &k.name())
            };
            (rank, *k)
        })
        .filter(|(rank, _)| *rank <= 2)
        .min_by_key(|(rank, _)| *rank)
        .map(|(_, k)| format!("; did you mean `{k}`?"))
        .unwrap_or_default();
    CliError::Command(format!(
        "unknown relation `{name}`: it appears nowhere in the program or the instance{suggestion}"
    ))
}

/// The rendering requested by `--stats-format` (the default is the historical
/// human-readable block).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StatsFormat {
    Text,
    Json,
}

fn stats_format(flags: &Flags) -> Result<StatsFormat, CliError> {
    match flags.get("stats-format") {
        None | Some("text") => Ok(StatsFormat::Text),
        Some("json") => Ok(StatsFormat::Json),
        Some(other) => Err(CliError::Command(format!(
            "unknown stats format `{other}` (expected `text` or `json`)"
        ))),
    }
}

/// A tracing session opened for `--trace-out FILE`, carried across the run so
/// the Chrome trace-event JSON is written whether the run succeeds or fails.
struct TraceCapture {
    path: String,
    session: seqdl_trace::Session,
}

fn start_trace(flags: &Flags) -> Option<TraceCapture> {
    flags.get("trace-out").map(|path| TraceCapture {
        path: path.to_string(),
        session: seqdl_trace::start(),
    })
}

impl TraceCapture {
    /// Stop recording, write the trace file, and return a one-line note for
    /// the report.
    fn write(self) -> Result<String, CliError> {
        let events = self.session.finish();
        std::fs::write(&self.path, seqdl_trace::chrome_trace_json(&events))
            .map_err(|e| CliError::Command(format!("cannot write {}: {e}", self.path)))?;
        Ok(format!(
            "trace: {} event(s) written to {}",
            events.len(),
            self.path
        ))
    }
}

/// Render an evaluation error from `run`/`query`, appending the partial
/// statistics a cancelled run accumulated before it stopped — so a `--timeout`
/// or Ctrl-C still reports how far the evaluation got (and the process exits
/// nonzero).  Under `--stats-format json` the partial statistics and the
/// outcome (`cancelled`/`limit`/`error`) are appended as the same JSON
/// document a successful run would print, so tooling parses failures too.
fn eval_error_report(
    executor: &Executor,
    error: &seqdl_engine::EvalError,
    format: StatsFormat,
) -> CliError {
    let mut message = error.to_string();
    match format {
        StatsFormat::Json => {
            let default_stats = seqdl_engine::EvalStats::default();
            let stats = error.partial_stats().unwrap_or(&default_stats);
            message.push('\n');
            message.push_str(&seqdl_engine::stats_json(
                stats,
                &seqdl_core::store_stats(),
                Some(error),
            ));
        }
        StatsFormat::Text => {
            if let Some(stats) = error.partial_stats() {
                message.push_str("\npartial progress at cancellation:\n");
                write_stats(&mut message, executor, stats);
            }
        }
    }
    // The stats block ends with a newline; the CLI error printer adds its
    // own, so trim the trailing one.
    while message.ends_with('\n') {
        message.pop();
    }
    CliError::Command(message)
}

/// Append the `--stats` block shared by `run` and `query`.
fn write_stats(report: &mut String, executor: &Executor, stats: &seqdl_engine::EvalStats) {
    writeln!(
        report,
        "threads: {}, shard size: {} (≤ {} shards per delta), iterations: {}, derived facts: {}, rule firings: {}",
        executor.effective_threads(),
        executor.shard_size(),
        executor.max_delta_shards(),
        stats.iterations,
        stats.derived_facts,
        stats.rule_firings
    )
    .expect("write to string");
    // Attribute index effectiveness: predicate steps answered by an index
    // probe (prefix trie, ε/packed bucket, or joint index) vs. relation
    // scans.  For `query`, this is what shows a demand-driven win coming
    // from probing, not merely from fewer firings.
    writeln!(
        report,
        "index probes: {}, relation scans: {}, instructions executed: {}, fused probes: {}",
        stats.index_probes, stats.scans, stats.instructions_executed, stats.fused_probes
    )
    .expect("write to string");
    let eval_wall: std::time::Duration = stats.strata.iter().map(|s| s.wall).sum();
    for (i, stratum) in stats.strata.iter().enumerate() {
        let pct = if eval_wall.is_zero() {
            0.0
        } else {
            stratum.wall.as_secs_f64() / eval_wall.as_secs_f64() * 100.0
        };
        writeln!(
            report,
            "stratum {i}: {} rule(s), {} iteration(s), {} fact(s), {} firing(s), {} delta shard(s), {:?} ({pct:.1}% of eval wall)",
            stratum.rules,
            stratum.iterations,
            stratum.derived_facts,
            stratum.rule_firings,
            stratum.shards,
            stratum.wall
        )
        .expect("write to string");
    }
    let store = seqdl_core::store_stats();
    writeln!(
        report,
        "store: {} distinct path(s), {:.1} KiB",
        store.distinct_paths,
        store.total_bytes() as f64 / 1024.0
    )
    .expect("write to string");
}

/// Append the `--profile` hot-rules table: every rule that fired, hottest (by
/// accumulated pass wall time) first, with its counters, then one roll-up
/// line per stratum.  Parallel passes overlap, so summed rule walls can
/// exceed a stratum's wall clock.
fn write_profile(report: &mut String, stats: &seqdl_engine::EvalStats) {
    if stats.rules.is_empty() {
        report.push_str("per-rule profile: no rule fired\n");
        return;
    }
    report.push_str("per-rule profile (hottest first):\n");
    let mut order: Vec<&seqdl_engine::RuleStats> = stats.rules.iter().collect();
    order.sort_by(|a, b| {
        b.wall
            .cmp(&a.wall)
            .then_with(|| (a.stratum, a.rule_ix).cmp(&(b.stratum, b.rule_ix)))
    });
    for r in &order {
        writeln!(
            report,
            "  s{}r{}: {} firing(s), {} fact(s), {:?}, {} probe(s), {} scan(s), {} instruction(s), {} fused, {} memo hit(s) — {}",
            r.stratum,
            r.rule_ix,
            r.firings,
            r.derived_facts,
            r.wall,
            r.index_probes,
            r.scans,
            r.instructions,
            r.fused_probes,
            r.emit_memo_hits,
            r.rule
        )
        .expect("write to string");
    }
    for (i, stratum) in stats.strata.iter().enumerate() {
        let (mut firings, mut facts, mut wall) = (0usize, 0usize, std::time::Duration::ZERO);
        let mut rules = 0usize;
        for r in stats.rules.iter().filter(|r| r.stratum == i) {
            rules += 1;
            firings += r.firings;
            facts += r.derived_facts;
            wall += r.wall;
        }
        writeln!(
            report,
            "  stratum {i} rollup: {rules} rule(s) profiled, {firings} firing(s), {facts} fact(s), {wall:?} summed rule wall (stratum wall {:?})",
            stratum.wall
        )
        .expect("write to string");
    }
}

/// The lint codes a program file declares as intentional: one or more per
/// `% expect: SD-W101[, SD-W102 …]` comment line.  Read from the raw file
/// text, because the loader strips comment lines before parsing.
fn expected_lints(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut codes = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line
            .strip_prefix('%')
            .or_else(|| line.strip_prefix('#'))
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix("expect:"))
        else {
            continue;
        };
        for token in rest.split(|c: char| c == ',' || c.is_whitespace()) {
            if !token.is_empty() {
                codes.push(token.to_string());
            }
        }
    }
    codes
}

/// The [`CheckOptions`] shared by `check`, `run`, and `query`: lints are
/// computed relative to the declared (or defaulted) output relations, and —
/// when an instance is at hand — relative to which EDB relations actually
/// hold facts.
fn check_options(
    outputs: impl IntoIterator<Item = RelName>,
    instance: Option<&Instance>,
) -> CheckOptions {
    let mut options = CheckOptions::for_outputs(outputs);
    options.nonempty_edb = instance.map(seqdl_rewrite::nonempty_relations);
    options
}

/// `seqdl check`: run the full lint pipeline and report diagnostics.  Exits
/// nonzero on errors, on `--deny warnings` with unexpected warnings present,
/// and on `% expect:` codes that did not fire.
fn cmd_check(flags: &Flags) -> Result<String, CliError> {
    let path = flags.require("program")?.to_string();
    let program = load_program(&path).map_err(command_error)?;
    let instance = match flags.get("instance") {
        Some(_) => Some(load_instance_flag(flags)?),
        None => None,
    };
    let outputs = match flags.get("output") {
        Some(name) => vec![RelName::new(name)],
        // Default to the conventional output (the last rule's head); a
        // program with no rules checks everything reachable from nothing.
        None => output_relation(flags, &program).ok().into_iter().collect(),
    };
    let deny_warnings = match flags.get("deny") {
        None => false,
        Some("warnings") => true,
        Some(other) => {
            return Err(CliError::Command(format!(
                "unknown --deny class `{other}` (expected `warnings`)"
            )))
        }
    };
    let report = check_program(&program, &check_options(outputs, instance.as_ref()));
    let rendered = match flags.get("format") {
        None | Some("text") => render_text(&report),
        Some("json") => check_json(&report),
        Some(other) => {
            return Err(CliError::Command(format!(
                "unknown check format `{other}` (expected `text` or `json`)"
            )))
        }
    };

    let expected = expected_lints(&path);
    let fired = report.codes();
    let mut failures: Vec<String> = Vec::new();
    if report.has_errors() {
        failures.push(format!("{} error(s)", report.count(Severity::Error)));
    }
    for code in &expected {
        if !fired.contains(code.as_str()) {
            failures.push(format!("expected lint {code} did not fire"));
        }
    }
    if deny_warnings {
        let denied = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .filter(|d| !expected.iter().any(|c| c == d.lint.code()))
            .count();
        if denied > 0 {
            failures.push(format!("{denied} warning(s) denied"));
        }
    }
    if failures.is_empty() {
        Ok(rendered)
    } else {
        let mut message = rendered;
        if !message.ends_with('\n') {
            message.push('\n');
        }
        write!(message, "check failed: {}", failures.join("; ")).expect("write to string");
        Err(CliError::Command(message))
    }
}

/// The pre-flight block `run` and `query` print before evaluating: every
/// warning- or error-severity diagnostic, one line each (errors here are
/// advisory — evaluation performs its own validation and fails on its own
/// terms).
fn preflight_warnings(program: &Program, options: &CheckOptions) -> String {
    let report = check_program(program, options);
    let mut block = String::new();
    for d in &report.diagnostics {
        if d.severity >= Severity::Warning {
            writeln!(block, "{d}").expect("write to string");
        }
    }
    block
}

/// Reject instances that populate (or redeclare at another arity) a relation
/// the given *pre-optimization* program defines as IDB.  The evaluator runs
/// the same check, but against the program it is handed — after `strip_dead`
/// a relation whose rules were all removed is no longer IDB there, so without
/// this pre-check the optimized and unoptimized runs would diverge (silent
/// acceptance vs error) on the same invalid input.
fn check_idb_schema(
    program: &Program,
    instance: &Instance,
) -> Result<(), seqdl_engine::EvalError> {
    // An inconsistent-arity program fails through evaluation on its own terms.
    let Ok(arities) = program.relation_arities() else {
        return Ok(());
    };
    for relation in program.idb_relations() {
        if let Some(existing) = instance.relation(relation) {
            if !existing.is_empty() || arities.get(&relation) != Some(&existing.arity()) {
                return Err(seqdl_engine::EvalError::IdbRelationInInput {
                    relation: relation.name().to_string(),
                });
            }
        }
    }
    Ok(())
}

fn cmd_run(flags: &Flags) -> Result<String, CliError> {
    let program = load_program_flag(flags)?;
    let instance = load_instance_flag(flags)?;
    let output = output_relation(flags, &program)?;
    let executor = executor_from_flags(flags)?;
    let format = stats_format(flags)?;
    check_idb_schema(&program, &instance).map_err(|e| eval_error_report(&executor, &e, format))?;
    let options = check_options([output], Some(&instance));
    let preflight = preflight_warnings(&program, &options);
    // Prune rules that cannot contribute to the requested output before
    // lowering to RAM.  `--save` materialises the full result, so it keeps
    // every rule; `--no-strip-dead` disables the rewrite explicitly.
    let stripped = (!flags.has("no-strip-dead") && flags.get("save").is_none()).then(|| {
        seqdl_rewrite::strip_dead_with_edb(
            &program,
            &options.outputs,
            options.nonempty_edb.as_ref(),
        )
    });
    let eval_program = stripped.as_ref().map_or(&program, |s| &s.program);
    let trace = start_trace(flags);
    let run = executor.run_with_stats(eval_program, &instance);
    let trace_note = trace.map(TraceCapture::write).transpose()?;
    let (result, stats) = run.map_err(|e| eval_error_report(&executor, &e, format))?;

    let mut report = preflight;
    let relation = result.relation(output);
    match relation {
        None => {
            // `(not derived)` is reserved for relation names the program or
            // instance actually knows (an EDB relation absent from the input,
            // say); a name known to neither is a user error worth a hint.
            let known = known_relations(&program, &instance);
            if !known.contains(&output) {
                return Err(unknown_relation_error(output, &known));
            }
            writeln!(report, "{output}: (not derived)").expect("write to string");
        }
        Some(relation) if relation.arity() == 0 => {
            writeln!(report, "{output} = {}", result.nullary_true(output))
                .expect("write to string");
        }
        Some(relation) => {
            writeln!(report, "{output}: {} fact(s)", relation.len()).expect("write to string");
            // Borrow and sort references for stable output; no tuple is cloned.
            let mut rows: Vec<&seqdl_core::Tuple> = relation.iter().collect();
            rows.sort();
            for tuple in rows {
                let args: Vec<String> = tuple.iter().map(ToString::to_string).collect();
                writeln!(report, "  {output}({})", args.join(", ")).expect("write to string");
            }
        }
    }
    match format {
        StatsFormat::Json => {
            report.push_str(&seqdl_engine::stats_json(
                &stats,
                &seqdl_core::store_stats(),
                None,
            ));
        }
        StatsFormat::Text => {
            if flags.has("stats") {
                if let Some(strip) = &stripped {
                    writeln!(
                        report,
                        "strip-dead: {} of {} rule(s) removed before lowering",
                        strip.removed.len(),
                        program.rule_count()
                    )
                    .expect("write to string");
                }
                write_stats(&mut report, &executor, &stats);
            }
            if flags.has("profile") {
                write_profile(&mut report, &stats);
            }
        }
    }
    if let Some(note) = trace_note {
        writeln!(report, "{note}").expect("write to string");
    }
    if let Some(path) = flags.get("save") {
        seqdl_io::save_instance(path, &result).map_err(command_error)?;
        writeln!(report, "full result saved to {path}").expect("write to string");
    }
    Ok(report)
}

/// `seqdl query`: demand-driven evaluation of one goal atom.  The goal is
/// adorned, the program rewritten by the magic-set transformation
/// (`seqdl_rewrite::magic`), the goal's bound first values injected as seed
/// facts, and the rewritten program evaluated through the ordinary SCC
/// schedule — so only rules relevant to the goal fire.
fn cmd_query(flags: &Flags) -> Result<String, CliError> {
    let program = load_program_flag(flags)?;
    let instance = load_instance_flag(flags)?;
    let goal = parse_goal(flags.require("goal")?).map_err(command_error)?;
    let executor = executor_from_flags(flags)?;

    let mut report = String::new();
    let print_answers = |report: &mut String, answers: &std::collections::BTreeSet<Tuple>| {
        writeln!(report, "{}: {} answer(s)", goal, answers.len()).expect("write to string");
        for tuple in answers {
            if tuple.is_empty() {
                writeln!(report, "  {}", goal.relation).expect("write to string");
            } else {
                let args: Vec<String> = tuple.iter().map(ToString::to_string).collect();
                writeln!(report, "  {}({})", goal.relation, args.join(", "))
                    .expect("write to string");
            }
        }
    };

    if !program.idb_relations().contains(&goal.relation) {
        // An EDB goal needs no evaluation at all: filter the input facts.
        let known = known_relations(&program, &instance);
        if !known.contains(&goal.relation) {
            return Err(unknown_relation_error(goal.relation, &known));
        }
        // A goal of the wrong arity would silently match nothing; reject it
        // the same way `magic` rejects IDB goals of the wrong arity.
        let expected = instance
            .relation(goal.relation)
            .map(seqdl_core::Relation::arity)
            .or_else(|| {
                program
                    .relation_arities()
                    .ok()
                    .and_then(|a| a.get(&goal.relation).copied())
            });
        if let Some(expected) = expected {
            if expected != goal.arity() {
                return Err(CliError::Command(format!(
                    "goal {} has arity {} but relation {} has arity {expected}",
                    goal,
                    goal.arity(),
                    goal.relation
                )));
            }
        }
        let answers: std::collections::BTreeSet<Tuple> = instance
            .relation(goal.relation)
            .map(|rel| {
                rel.iter()
                    .filter(|t| goal_matches(&goal, t))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        print_answers(&mut report, &answers);
        return Ok(report);
    }

    let mp = magic(&program, &goal).map_err(command_error)?;
    report.push_str(&preflight_warnings(
        &program,
        &check_options([goal.relation], Some(&instance)),
    ));
    let format = stats_format(flags)?;
    check_idb_schema(&mp.program, &instance).map_err(|e| eval_error_report(&executor, &e, format))?;
    // Prune magic rules that cannot reach the answer relation before
    // lowering.  The seeds make relations nonempty that neither the raw
    // instance nor the program's rules know anything about — the goal's
    // magic relation may have only statically-false demand rules and still
    // hold its seed facts at runtime — so the emptiness analysis must treat
    // every seeded relation as never-empty (and no EDB emptiness is assumed
    // at all).
    let stripped = (!flags.has("no-strip-dead")).then(|| {
        let seeded: std::collections::BTreeSet<RelName> =
            mp.seeds.iter().map(|f| f.relation).collect();
        seqdl_rewrite::strip_dead_seeded(
            &mp.program,
            &std::collections::BTreeSet::from([mp.answer]),
            &seeded,
        )
    });
    let eval_program = stripped.as_ref().map_or(&mp.program, |s| &s.program);
    let trace = start_trace(flags);
    let run = executor.run_with_stats_seeded(eval_program, &instance, &mp.seeds);
    let trace_note = trace.map(TraceCapture::write).transpose()?;
    let (result, stats) = run.map_err(|e| eval_error_report(&executor, &e, format))?;
    let answers = mp.answers(&result);
    print_answers(&mut report, &answers);
    if flags.has("show-rewrite") {
        writeln!(report, "% magic rewrite (answers read from {}):", mp.answer)
            .expect("write to string");
        writeln!(report, "{}", mp.program).expect("write to string");
        for seed in &mp.seeds {
            writeln!(report, "% seed: {seed}").expect("write to string");
        }
    }
    if flags.has("stats") && format == StatsFormat::Text {
        writeln!(
            report,
            "magic rewrite: {} rule(s) (from {}), {} seed fact(s), answers in {}",
            mp.program.rule_count(),
            program.rule_count(),
            mp.seeds.len(),
            mp.answer
        )
        .expect("write to string");
        if let Some(strip) = &stripped {
            writeln!(
                report,
                "strip-dead: {} of {} magic rule(s) removed before lowering",
                strip.removed.len(),
                mp.program.rule_count()
            )
            .expect("write to string");
        }
        write_stats(&mut report, &executor, &stats);
    }
    if flags.has("profile") && format == StatsFormat::Text {
        write_profile(&mut report, &stats);
    }
    if format == StatsFormat::Json {
        report.push_str(&seqdl_engine::stats_json(
            &stats,
            &seqdl_core::store_stats(),
            None,
        ));
    }
    if let Some(note) = trace_note {
        writeln!(report, "{note}").expect("write to string");
    }
    Ok(report)
}

fn cmd_analyze(flags: &Flags) -> Result<String, CliError> {
    let program = load_program_flag(flags)?;
    // One shared analysis entry point: features, fragment, safety,
    // stratification, arity, and termination all come from the same
    // `check_program` report that `seqdl check` renders.  No outputs are
    // declared here, so reachability lints stay quiet.
    let check = check_program(&program, &CheckOptions::default());
    let features = &check.features;
    let fragment = &check.fragment;
    let mut report = String::new();
    writeln!(report, "rules: {}", program.rule_count()).expect("write to string");
    writeln!(report, "strata: {}", program.stratum_count()).expect("write to string");
    for (i, stratum) in Schedule::of_program(&program).strata.iter().enumerate() {
        let members: Vec<String> = stratum
            .components
            .iter()
            .map(|c| {
                let names: Vec<String> = c.relations.iter().map(ToString::to_string).collect();
                format!(
                    "{{{}}}{}",
                    names.join(", "),
                    if c.recursive { "*" } else { "" }
                )
            })
            .collect();
        writeln!(
            report,
            "schedule stratum {i}: {} SCC(s) over {} level(s), {} recursive: {}",
            stratum.component_count(),
            stratum.levels.len(),
            stratum.recursive_count(),
            members.join(" -> ")
        )
        .expect("write to string");
    }
    writeln!(
        report,
        "cancel checkpoints: every stratum boundary ({} here), every fixpoint round, \
         and every {} interpreter instructions (amortised); `--timeout`, \
         `--max-store-bytes`, and Ctrl-C take effect there",
        program.stratum_count(),
        seqdl_engine::GOVERNOR_CHECK_INTERVAL
    )
    .expect("write to string");
    if flags.has("show-ram") {
        match seqdl_engine::ram::lower(&program) {
            Ok(lowered) => {
                writeln!(report, "RAM program:").expect("write to string");
                write!(report, "{lowered}").expect("write to string");
            }
            Err(e) => writeln!(report, "RAM program: {e}").expect("write to string"),
        }
    }
    writeln!(report, "features: {}", features.letters()).expect("write to string");
    writeln!(report, "fragment: {fragment}").expect("write to string");
    writeln!(report, "fragment modulo A, P: {}", fragment.hat()).expect("write to string");

    let edb: Vec<String> = program
        .edb_relations()
        .iter()
        .map(ToString::to_string)
        .collect();
    let idb: Vec<String> = program
        .idb_relations()
        .iter()
        .map(ToString::to_string)
        .collect();
    writeln!(report, "EDB relations: {}", edb.join(", ")).expect("write to string");
    writeln!(report, "IDB relations: {}", idb.join(", ")).expect("write to string");

    use seqdl_analysis::Lint;
    let first_message = |codes: &[Lint]| {
        check
            .diagnostics
            .iter()
            .find(|d| codes.contains(&d.lint))
            .map(|d| d.message.clone())
    };
    match first_message(&[
        Lint::UnsafeRule,
        Lint::HeadOnlyVariable,
        Lint::NegationShadowedVariable,
    ]) {
        None => writeln!(report, "safety: all rules are safe").expect("write to string"),
        Some(m) => writeln!(report, "safety: {m}").expect("write to string"),
    }
    match first_message(&[Lint::NotStratified]) {
        None => writeln!(report, "stratification: valid").expect("write to string"),
        Some(m) => writeln!(report, "stratification: {m}").expect("write to string"),
    }
    if let Some(m) = first_message(&[Lint::InconsistentArity]) {
        writeln!(report, "analysis: {m}").expect("write to string");
    }
    writeln!(report, "{}", check.summary()).expect("write to string");
    write!(report, "termination: {}", check.termination).expect("write to string");
    Ok(report)
}

fn cmd_termination(flags: &Flags) -> Result<String, CliError> {
    let program = load_program_flag(flags)?;
    // Shares the `check_program` entry point with `check` and `analyze`
    // instead of re-deriving the program structure on its own.
    let check = check_program(&program, &CheckOptions::default());
    Ok(check.termination.to_string())
}

fn cmd_rewrite(flags: &Flags) -> Result<String, CliError> {
    let program = load_program_flag(flags)?;
    let which = flags.require("eliminate")?;
    let rewritten = match which {
        "arity" => eliminate_arity(&program).map_err(command_error)?,
        "equations" => eliminate_equations(&program).map_err(command_error)?,
        "packing" => {
            let output = output_relation(flags, &program)?;
            eliminate_packing_nonrecursive(&program, output).map_err(command_error)?
        }
        "intermediate" => {
            let output = output_relation(flags, &program)?;
            fold_intermediate_predicates(&program, output).map_err(command_error)?
        }
        other => {
            return Err(CliError::Command(format!(
                "unknown feature `{other}` (expected arity, equations, packing, or intermediate)"
            )))
        }
    };
    Ok(format!(
        "% fragment: {} -> {}\n{rewritten}",
        Fragment::of_program(&program),
        Fragment::of_program(&rewritten)
    ))
}

fn cmd_normalize(flags: &Flags) -> Result<String, CliError> {
    let program = load_program_flag(flags)?;
    let normal = to_normal_form(&program).map_err(command_error)?;
    Ok(normal.to_string())
}

fn cmd_algebra(flags: &Flags) -> Result<String, CliError> {
    let program = load_program_flag(flags)?;
    let output = output_relation(flags, &program)?;
    let expr = datalog_to_algebra(&program, output).map_err(command_error)?;
    Ok(format!("{expr}"))
}

fn cmd_fragment(flags: &Flags) -> Result<String, CliError> {
    let program = load_program_flag(flags)?;
    let output = output_relation(flags, &program)?;
    let letters = flags.require("target")?;
    let mut target = Fragment::empty();
    for c in letters.chars() {
        if c == '{' || c == '}' || c == ',' || c.is_whitespace() {
            continue;
        }
        let feature = Feature::from_letter(c)
            .ok_or_else(|| CliError::Command(format!("unknown feature letter `{c}`")))?;
        target = target.with(feature);
    }
    let source = Fragment::of_program(&program);
    let rewritten = rewrite_into(&program, output, target)
        .map_err(|e| CliError::Command(format!("cannot rewrite {source} into {target}: {e}")))?;
    Ok(format!(
        "% fragment: {source} -> {} (target {target})\n{rewritten}",
        Fragment::of_program(&rewritten)
    ))
}

fn cmd_hasse(flags: &Flags) -> Result<String, CliError> {
    let fragments = if flags.has("all") {
        Fragment::all()
    } else {
        Fragment::all_over_einr()
    };
    let diagram = HasseDiagram::build(&fragments);
    if flags.has("dot") {
        return Ok(diagram.to_dot());
    }
    Ok(format!(
        "{} fragments fall into {} equivalence classes (Figure 1 of the paper):\n{}",
        fragments.len(),
        diagram.classes.len(),
        diagram.render_text()
    ))
}

fn cmd_unify(flags: &Flags) -> Result<String, CliError> {
    let text = flags.require("equation")?;
    let (lhs, rhs) = text
        .split_once('=')
        .ok_or_else(|| CliError::Command("the --equation value must contain `=`".into()))?;
    let lhs = parse_expr(lhs.trim()).map_err(command_error)?;
    let rhs = parse_expr(rhs.trim()).map_err(command_error)?;
    let equation = Equation::new(lhs, rhs);

    let mut report = String::new();
    writeln!(
        report,
        "equation: {equation}\none-sided nonlinear: {}",
        is_one_sided_nonlinear(&equation)
    )
    .expect("write to string");

    if flags.has("allow-empty") {
        let solutions =
            solve_allowing_empty(&equation, &SolveOptions::default()).map_err(command_error)?;
        writeln!(
            report,
            "{} symbolic solution(s) (empty words allowed):",
            solutions.len()
        )
        .expect("write to string");
        for s in &solutions {
            writeln!(report, "  {s}").expect("write to string");
        }
    } else {
        let result = solve(&equation, &SolveOptions::default()).map_err(command_error)?;
        writeln!(
            report,
            "{} symbolic solution(s), search tree with {} node(s):",
            result.solutions.len(),
            result.tree.len()
        )
        .expect("write to string");
        for s in &result.solutions {
            writeln!(report, "  {s}").expect("write to string");
        }
        if flags.has("dot") {
            writeln!(report, "{}", result.tree.to_dot()).expect("write to string");
        }
    }
    Ok(report)
}

fn cmd_regex(flags: &Flags) -> Result<String, CliError> {
    let pattern = flags.require("pattern")?;
    let regex = parse_regex(pattern).map_err(command_error)?;
    let mut options = CompileOptions::default();
    if let Some(input) = flags.get("input") {
        options.input = RelName::new(input);
    }
    if let Some(output) = flags.get("output") {
        options.output = RelName::new(output);
    }
    if let Some(prefix) = flags.get("state-prefix") {
        options.state_prefix = prefix.to_string();
    }
    let compiled = if flags.has("contains") {
        compile_contains(&regex, &options)
    } else {
        compile_match(&regex, &options)
    };

    let mut report = format!(
        "% regex: {regex}\n% reads {} and writes {}\n{}",
        compiled.input, compiled.output, compiled.program
    );
    if flags.get("instance").is_some() {
        let instance = load_instance_flag(flags)?;
        let engine = engine_from_flags(flags)?;
        let result = engine
            .run(&compiled.program, &instance)
            .map_err(command_error)?;
        let matches = result.unary_paths(compiled.output);
        writeln!(report, "\n{} matching string(s):", matches.len()).expect("write to string");
        for path in matches {
            writeln!(report, "  {path}").expect("write to string");
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_flags;
    use seqdl_core::{path_of, rel};

    fn flags(parts: &[&str]) -> Flags {
        parse_flags(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("seqdl-cli-test-{}-{name}", std::process::id()));
        dir
    }

    fn write_program(name: &str, source: &str) -> String {
        let path = temp_path(name);
        std::fs::write(&path, source).unwrap();
        path.display().to_string()
    }

    fn write_instance_file(name: &str, instance: &Instance) -> String {
        let path = temp_path(name);
        seqdl_io::save_instance(&path, instance).unwrap();
        path.display().to_string()
    }

    #[test]
    fn run_executes_a_program_on_an_instance() {
        let program = write_program("run.sdl", "S($x) <- R($x), a·$x = $x·a.");
        let instance = write_instance_file(
            "run.sdi",
            &Instance::unary(rel("R"), [path_of(&["a", "a"]), path_of(&["a", "b"])]),
        );
        let output = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--output",
            "S",
            "--stats",
        ]))
        .unwrap();
        assert!(output.contains("S: 1 fact(s)"), "{output}");
        assert!(output.contains("S(a·a)"), "{output}");
        assert!(output.contains("iterations:"), "{output}");
    }

    #[test]
    fn run_defaults_the_output_relation_to_the_last_rule_head() {
        let program = write_program(
            "run-default.sdl",
            "T(a·$x, $x) <- R($x).\nS($x) <- T($x·a, $x).",
        );
        let instance = write_instance_file(
            "run-default.sdi",
            &Instance::unary(rel("R"), [path_of(&["a", "a", "a"])]),
        );
        let output = cmd_run(&flags(&["--program", &program, "--instance", &instance])).unwrap();
        assert!(output.contains("S: 1 fact(s)"), "{output}");
    }

    #[test]
    fn run_evaluates_in_parallel_with_per_stratum_stats() {
        let program = write_program(
            "run-par.sdl",
            "T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).\nS($p) <- T($p).",
        );
        let mut graph = Instance::new();
        for (x, y) in [("a", "b"), ("b", "c"), ("c", "d")] {
            graph
                .insert_fact(seqdl_core::Fact::new(rel("R"), vec![path_of(&[x, y])]))
                .unwrap();
        }
        let instance = write_instance_file("run-par.sdi", &graph);
        let sequential = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--output",
            "S",
        ]))
        .unwrap();
        let parallel = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--output",
            "S",
            "--threads",
            "4",
            "--stats",
        ]))
        .unwrap();
        assert!(parallel.starts_with(&sequential), "{parallel}");
        assert!(parallel.contains("threads: 4"), "{parallel}");
        assert!(parallel.contains("stratum 0: 3 rule(s)"), "{parallel}");
        // The recursive rule probes R by the bound @y prefix: the stats must
        // attribute index probes (and report the scan fallbacks) so wins are
        // explainable.
        assert!(parallel.contains("index probes: "), "{parallel}");
        assert!(parallel.contains("relation scans: "), "{parallel}");
        let probes: usize = parallel
            .split("index probes: ")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|n| n.trim().parse().ok())
            .expect("parse probe count");
        assert!(probes > 0, "expected index probes on the reachability join");
    }

    /// The §5.1.1 reachability workload used by the observability tests: a
    /// transitive-closure program and a small chain digraph.
    fn reachability_files(tag: &str) -> (String, String) {
        let program = write_program(
            &format!("reach-{tag}.sdl"),
            "T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).",
        );
        let mut graph = Instance::new();
        for (x, y) in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")] {
            graph
                .insert_fact(seqdl_core::Fact::new(rel("R"), vec![path_of(&[x, y])]))
                .unwrap();
        }
        let instance = write_instance_file(&format!("reach-{tag}.sdi"), &graph);
        (program, instance)
    }

    #[test]
    fn profile_firings_sum_to_the_total_rule_firings() {
        let (program, instance) = reachability_files("profile");
        let output = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--output",
            "T",
            "--stats",
            "--profile",
        ]))
        .unwrap();
        assert!(
            output.contains("per-rule profile (hottest first):"),
            "{output}"
        );
        assert!(output.contains("stratum 0 rollup:"), "{output}");
        let total: usize = output
            .split("rule firings: ")
            .nth(1)
            .and_then(|rest| rest.lines().next())
            .and_then(|n| n.trim().parse().ok())
            .expect("parse total rule firings");
        let profiled: usize = output
            .lines()
            .filter(|l| {
                l.starts_with("  s") && !l.starts_with("  stratum") && l.contains(" firing(s), ")
            })
            .map(|l| {
                l.split(": ")
                    .nth(1)
                    .and_then(|rest| rest.split(" firing(s)").next())
                    .and_then(|n| n.trim().parse::<usize>().ok())
                    .expect("parse per-rule firings")
            })
            .sum();
        assert!(total > 0, "{output}");
        assert_eq!(profiled, total, "{output}");
        // Both rules of the recursive component are attributed by name.
        assert!(output.contains("T(@x·@y) <- R(@x·@y)."), "{output}");
        assert!(
            output.contains("T(@x·@z) <- T(@x·@y), R(@y·@z)."),
            "{output}"
        );
    }

    #[test]
    fn trace_out_writes_chrome_trace_json_with_worker_threads() {
        let (program, instance) = reachability_files("trace");
        let trace_file = temp_path("trace.json");
        let output = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--output",
            "T",
            "--threads",
            "4",
            "--trace-out",
            trace_file.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(output.contains("event(s) written to"), "{output}");
        let json = std::fs::read_to_string(&trace_file).unwrap();
        assert!(json.trim_start().starts_with('['), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        assert!(json.contains("\"ph\":\"B\""), "{json}");
        assert!(json.contains("\"ph\":\"E\""), "{json}");
        assert!(json.contains("\"name\":\"run\""), "{json}");
        // Rule passes run on pool workers while the driver holds the round
        // span, so a parallel run records at least two distinct thread ids.
        let tids: std::collections::BTreeSet<u32> = json
            .split("\"tid\":")
            .skip(1)
            .map(|part| {
                part.split(|c: char| !c.is_ascii_digit())
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("parse tid")
            })
            .collect();
        assert!(tids.len() >= 2, "expected >=2 tids, got {tids:?}");
        std::fs::remove_file(&trace_file).ok();
    }

    #[test]
    fn stats_format_json_emits_the_versioned_document() {
        let (program, instance) = reachability_files("json");
        let output = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--output",
            "T",
            "--stats-format",
            "json",
        ]))
        .unwrap();
        for key in [
            "\"version\": 1",
            "{\"status\":\"ok\"}",
            "\"totals\": {",
            "\"strata\": [",
            "\"rules\": [",
            "\"store\": {",
            "\"wall_pct\":",
        ] {
            assert!(output.contains(key), "missing {key} in:\n{output}");
        }
        let bad = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--stats-format",
            "yaml",
        ]));
        assert!(bad.is_err());
    }

    #[test]
    fn run_stats_show_single_pass_strata_for_nonrecursive_programs() {
        let program = write_program(
            "run-sp.sdl",
            "T($x) <- R($x).\n---\nS($x) <- T($x), !B($x).",
        );
        let instance =
            write_instance_file("run-sp.sdi", &Instance::unary(rel("R"), [path_of(&["a"])]));
        let output = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--output",
            "S",
            "--stats",
        ]))
        .unwrap();
        assert!(
            output.contains("stratum 0: 1 rule(s), 1 iteration(s)"),
            "{output}"
        );
        assert!(
            output.contains("stratum 1: 1 rule(s), 1 iteration(s)"),
            "{output}"
        );
    }

    #[test]
    fn timeout_and_byte_values_parse_with_suffixes() {
        assert_eq!(parse_timeout("500").unwrap().as_millis(), 500);
        assert_eq!(parse_timeout("50ms").unwrap().as_millis(), 50);
        assert_eq!(parse_timeout("2s").unwrap().as_millis(), 2_000);
        assert_eq!(parse_timeout("1m").unwrap().as_millis(), 60_000);
        assert!(parse_timeout("soon").is_err());
        assert_eq!(parse_bytes("1024").unwrap(), 1024);
        assert_eq!(parse_bytes("64k").unwrap(), 64 << 10);
        assert_eq!(parse_bytes("4MB").unwrap(), 4 << 20);
        assert_eq!(parse_bytes("1g").unwrap(), 1 << 30);
        assert!(parse_bytes("lots").is_err());
    }

    #[test]
    fn run_with_timeout_cancels_and_reports_partial_stats() {
        // Non-terminating without the deadline: path-doubling recursion with
        // limits far beyond what 50ms can evaluate.
        let program = write_program("timeout.sdl", "T(a).\nT(a·$x) <- T($x).");
        let instance = write_instance_file("timeout.sdi", &Instance::new());
        let started = std::time::Instant::now();
        let err = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--output",
            "T",
            "--timeout",
            "50ms",
            "--max-iterations",
            "100000000",
            "--max-facts",
            "100000000",
            "--max-path-len",
            "100000000",
        ]))
        .unwrap_err();
        let elapsed = started.elapsed();
        let message = err.to_string();
        assert!(message.contains("cancelled"), "{message}");
        assert!(message.contains("deadline"), "{message}");
        assert!(
            message.contains("partial progress at cancellation:"),
            "{message}"
        );
        assert!(message.contains("iterations:"), "{message}");
        // The deadline is enforced at governor checkpoints, so termination is
        // prompt — well within the acceptance bound of 2× the deadline (with
        // slack for debug-build scheduling noise).
        assert!(
            elapsed < std::time::Duration::from_millis(1_000),
            "cancelled run took {elapsed:?}"
        );
    }

    #[test]
    fn run_reports_store_budget_violations() {
        let program = write_program("store-budget.sdl", "T(a).\nT(a·$x) <- T($x).");
        let instance = write_instance_file("store-budget.sdi", &Instance::new());
        let err = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--output",
            "T",
            "--max-store-bytes",
            "4k",
            "--max-iterations",
            "100000000",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("path-store bytes"), "{err}");
    }

    #[test]
    fn run_reports_limit_violations() {
        let program = write_program("diverge.sdl", "T(a).\nT(a·$x) <- T($x).");
        let instance = write_instance_file("empty.sdi", &Instance::new());
        let err = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--output",
            "T",
            "--max-iterations",
            "10",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");
    }

    #[test]
    fn run_rejects_unknown_output_relations_with_a_suggestion() {
        let program = write_program("unknown-out.sdl", "S($x) <- R($x).");
        let instance = write_instance_file(
            "unknown-out.sdi",
            &Instance::unary(rel("R"), [path_of(&["a"])]),
        );
        let err = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--output",
            "Q",
        ]))
        .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("unknown relation `Q`"), "{message}");
        // A near-miss gets a did-you-mean hint.
        let err = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--output",
            "s",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("did you mean `S`"), "{err}");
    }

    #[test]
    fn run_still_reports_known_but_absent_relations_as_not_derived() {
        // B is negated in the program but absent from the instance: a known
        // name, so no error — the old `(not derived)` notice remains.
        let program = write_program("absent.sdl", "S($x) <- R($x), !B($x).");
        let instance =
            write_instance_file("absent.sdi", &Instance::unary(rel("R"), [path_of(&["a"])]));
        let output = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--output",
            "B",
        ]))
        .unwrap();
        assert!(output.contains("B: (not derived)"), "{output}");
    }

    #[test]
    fn query_answers_goals_demand_driven() {
        let program = write_program(
            "query.sdl",
            "T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).",
        );
        let mut graph = Instance::new();
        for (x, y) in [("a", "b"), ("b", "c"), ("x", "y")] {
            graph
                .insert_fact(seqdl_core::Fact::new(rel("R"), vec![path_of(&[x, y])]))
                .unwrap();
        }
        let instance = write_instance_file("query.sdi", &graph);
        let output = cmd_query(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--goal",
            "T(a·$y)?",
            "--stats",
            "--show-rewrite",
        ]))
        .unwrap();
        assert!(output.contains("T(a·$y): 2 answer(s)"), "{output}");
        assert!(output.contains("T(a·b)"), "{output}");
        assert!(output.contains("T(a·c)"), "{output}");
        assert!(!output.contains("T(x·y)"), "{output}");
        assert!(output.contains("magic rewrite:"), "{output}");
        assert!(output.contains("magic_T_b"), "{output}");
    }

    #[test]
    fn query_strip_dead_keeps_seeded_demand_relations_live() {
        // The recursive rule's demand prefix reads P, whose only rule is
        // statically false — every demand rule of the seeded magic relation
        // is always false, but the goal's seed facts still make it nonempty
        // at runtime.  The default (stripped) query must agree with
        // --no-strip-dead instead of silently returning no answers.
        let program = write_program(
            "query-seed.sdl",
            "T(@x·@y) <- R(@x·@y).\n\
             T(@x·@z) <- P(@x), T(@x·@y), R(@y·@z).\n\
             P(@x) <- N(@x), a·@x = b·@x.",
        );
        let mut graph = Instance::new();
        for (x, y) in [("a", "b"), ("b", "c")] {
            graph
                .insert_fact(seqdl_core::Fact::new(rel("R"), vec![path_of(&[x, y])]))
                .unwrap();
        }
        graph
            .insert_fact(seqdl_core::Fact::new(rel("N"), vec![path_of(&["a"])]))
            .unwrap();
        let instance = write_instance_file("query-seed.sdi", &graph);
        let base = ["--program", &program, "--instance", &instance, "--goal", "T(a·$y)?"];
        let stripped = cmd_query(&flags(&base)).unwrap();
        let mut unstripped_args = base.to_vec();
        unstripped_args.push("--no-strip-dead");
        let unstripped = cmd_query(&flags(&unstripped_args)).unwrap();
        assert!(stripped.contains("T(a·$y): 1 answer(s)"), "{stripped}");
        assert!(stripped.contains("T(a·b)"), "{stripped}");
        assert_eq!(stripped, unstripped);
    }

    #[test]
    fn run_rejects_idb_facts_in_input_regardless_of_stripping() {
        // Dead's rules are unreachable from S and stripped by default; the
        // IDB-collision check must still run against the original program so
        // the optimized and unoptimized runs fail identically.
        let program = write_program("run-idb.sdl", "S($x) <- R($x).\nDead($x) <- Z($x).");
        let mut input = Instance::unary(rel("R"), [path_of(&["a"])]);
        input
            .insert_fact(seqdl_core::Fact::new(rel("Dead"), vec![path_of(&["b"])]))
            .unwrap();
        let instance = write_instance_file("run-idb.sdi", &input);
        let base = ["--program", &program, "--instance", &instance, "--output", "S"];
        let stripped = cmd_run(&flags(&base)).unwrap_err();
        let mut unstripped_args = base.to_vec();
        unstripped_args.push("--no-strip-dead");
        let unstripped = cmd_run(&flags(&unstripped_args)).unwrap_err();
        assert!(stripped.to_string().contains("Dead"), "{stripped}");
        assert_eq!(stripped.to_string(), unstripped.to_string());
    }

    #[test]
    fn query_filters_edb_goals_without_evaluation() {
        let program = write_program("query-edb.sdl", "S($x) <- R($x).");
        let instance = write_instance_file(
            "query-edb.sdi",
            &Instance::unary(rel("R"), [path_of(&["a", "b"]), path_of(&["b", "a"])]),
        );
        let output = cmd_query(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--goal",
            "R(a·$y)",
        ]))
        .unwrap();
        assert!(output.contains("1 answer(s)"), "{output}");
        assert!(output.contains("R(a·b)"), "{output}");
    }

    #[test]
    fn query_rejects_edb_goals_of_the_wrong_arity() {
        let program = write_program("query-arity.sdl", "S($x) <- R($x).");
        let instance = write_instance_file(
            "query-arity.sdi",
            &Instance::unary(rel("R"), [path_of(&["a"])]),
        );
        let err = cmd_query(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--goal",
            "R(a, $y)",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
    }

    #[test]
    fn query_rejects_unknown_goal_relations() {
        let program = write_program("query-bad.sdl", "S($x) <- R($x).");
        let instance = write_instance_file(
            "query-bad.sdi",
            &Instance::unary(rel("R"), [path_of(&["a"])]),
        );
        let err = cmd_query(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--goal",
            "Z($x)",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown relation `Z`"), "{err}");
    }

    #[test]
    fn analyze_reports_features_and_termination() {
        let program = write_program(
            "analyze.sdl",
            "T(eps, $x, $x) <- R($x).\nT($y·$x, $x, $z) <- T($y, $x, a·$z).\nS($y) <- T($y, $x, eps).",
        );
        let output = cmd_analyze(&flags(&["--program", &program])).unwrap();
        assert!(output.contains("fragment: {A, I, R}"), "{output}");
        assert!(output.contains("EDB relations: R"), "{output}");
        assert!(output.contains("guaranteed to terminate"), "{output}");
        assert!(
            output.contains("schedule stratum 0: 2 SCC(s) over 2 level(s), 1 recursive"),
            "{output}"
        );
        assert!(output.contains("{T}* -> {S}"), "{output}");
    }

    #[test]
    fn analyze_show_ram_pins_the_reachability_listing_shape() {
        // The §5.1.1 reachability program: base rule hoisted into the merge
        // section (probe+emit, one instruction), recursive rule in the {T}
        // loop with its delta-tagged T probe and a fused terminal R probe,
        // and the fully-bound boolean goal reduced to a filter.
        let program = write_program(
            "show-ram.sdl",
            "T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).\nS <- T(a·b).",
        );
        let output = cmd_analyze(&flags(&["--program", &program, "--show-ram"])).unwrap();
        assert!(output.contains("RAM program:"), "{output}");
        assert!(output.contains("merge (once):"), "{output}");
        assert!(output.contains("loop {T}:"), "{output}");
        assert!(
            output.contains("probe+emit R(@x·@y) -> T(@x·@y)"),
            "{output}"
        );
        assert!(output.contains("probe   T(@x·@y)"), "{output}");
        assert!(output.contains("[delta]"), "{output}");
        assert!(
            output.contains("probe+emit R(@y·@z) -> T(@x·@z)"),
            "{output}"
        );
        assert!(
            output.contains("filter  T(a·b)  ; fused probe (fully bound)"),
            "{output}"
        );
        assert!(output.contains("purge delta {T}"), "{output}");
        assert!(output.contains("exit when delta {T} is empty"), "{output}");
        // Without the flag the listing is absent.
        let plain = cmd_analyze(&flags(&["--program", &program])).unwrap();
        assert!(!plain.contains("RAM program:"), "{plain}");
    }

    #[test]
    fn run_stats_surface_instruction_counters_and_no_ram_disables_them() {
        let program = write_program("ram-stats.sdl", "S($x) <- R($x).");
        let instance = write_instance_file(
            "ram-stats.sdi",
            &Instance::unary(rel("R"), [path_of(&["a"]), path_of(&["b"])]),
        );
        let with_ram = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--stats",
        ]))
        .unwrap();
        assert!(with_ram.contains("instructions executed: "), "{with_ram}");
        assert!(with_ram.contains("fused probes: "), "{with_ram}");
        assert!(with_ram.contains("delta shard(s)"), "{with_ram}");
        let instructions: usize = with_ram
            .split("instructions executed: ")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|n| n.trim().parse().ok())
            .expect("parse instruction count");
        assert!(instructions > 0, "{with_ram}");
        // The legacy matcher executes no RAM instructions, but the answers
        // are identical.
        let without = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--stats",
            "--no-ram",
        ]))
        .unwrap();
        assert!(
            without.contains("instructions executed: 0, fused probes: 0"),
            "{without}"
        );
        assert_eq!(
            with_ram.lines().take(3).collect::<Vec<_>>(),
            without.lines().take(3).collect::<Vec<_>>(),
            "answers must not depend on the execution path"
        );
    }

    #[test]
    fn check_passes_clean_programs_and_reports_the_fragment() {
        let program = write_program("check-clean.sdl", "T($x) <- R($x).\nS($x) <- T($x).");
        let output = cmd_check(&flags(&["--program", &program])).unwrap();
        assert!(output.contains("SD-I401"), "{output}");
        assert!(
            output.contains("check: 0 error(s), 0 warning(s)"),
            "{output}"
        );
        // Clean even under --deny warnings.
        cmd_check(&flags(&["--program", &program, "--deny", "warnings"])).unwrap();
    }

    #[test]
    fn check_flags_dead_rules_and_denies_warnings() {
        let program = write_program(
            "check-dead.sdl",
            "U($x) <- R($x).\nS($x) <- R($x).", // U is dead relative to output S
        );
        let output = cmd_check(&flags(&["--program", &program])).unwrap();
        assert!(output.contains("SD-W101"), "{output}");
        assert!(output.contains("SD-W102"), "{output}");
        let err = cmd_check(&flags(&["--program", &program, "--deny", "warnings"])).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("check failed:"), "{message}");
        assert!(message.contains("warning(s) denied"), "{message}");
    }

    #[test]
    fn check_errors_on_unsafe_programs() {
        // $y occurs only in the head: SD-E004, error severity.
        let program = write_program("check-unsafe.sdl", "S($x, $y) <- R($x).");
        let err = cmd_check(&flags(&["--program", &program])).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("SD-E004"), "{message}");
        assert!(message.contains("check failed:"), "{message}");
    }

    #[test]
    fn check_expect_annotations_suppress_deny_and_must_fire() {
        // The dead rule is declared intentional: --deny warnings passes.
        let program = write_program(
            "check-expect.sdl",
            "% expect: SD-W101, SD-W102\nU($x) <- R($x).\nS($x) <- R($x).",
        );
        let output = cmd_check(&flags(&["--program", &program, "--deny", "warnings"])).unwrap();
        assert!(output.contains("SD-W101"), "{output}");
        // An expected code that does not fire is itself a failure.
        let stale = write_program(
            "check-expect-stale.sdl",
            "% expect: SD-W105\nS($x) <- R($x).",
        );
        let err = cmd_check(&flags(&["--program", &stale])).unwrap_err();
        assert!(
            err.to_string()
                .contains("expected lint SD-W105 did not fire"),
            "{err}"
        );
    }

    #[test]
    fn check_format_json_emits_the_versioned_document() {
        let program = write_program("check-json.sdl", "U($x) <- R($x).\nS($x) <- R($x).");
        let output = cmd_check(&flags(&["--program", &program, "--format", "json"])).unwrap();
        assert!(output.contains("\"version\": 1"), "{output}");
        assert!(output.contains("\"diagnostics\": ["), "{output}");
        assert!(output.contains("\"code\": \"SD-W101\""), "{output}");
        assert!(cmd_check(&flags(&["--program", &program, "--format", "yaml"])).is_err());
    }

    #[test]
    fn run_preflights_warnings_and_strips_dead_rules() {
        let program = write_program(
            "run-strip.sdl",
            "U($x) <- R($x).\nS($x) <- R($x).", // U cannot contribute to S
        );
        let instance = write_instance_file(
            "run-strip.sdi",
            &Instance::unary(rel("R"), [path_of(&["a"])]),
        );
        let output = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--output",
            "S",
            "--stats",
        ]))
        .unwrap();
        assert!(output.contains("warning[SD-W101]"), "{output}");
        assert!(
            output.contains("strip-dead: 1 of 2 rule(s) removed before lowering"),
            "{output}"
        );
        assert!(output.contains("S: 1 fact(s)"), "{output}");
        // The rewrite is observable in the instruction counter: stripping the
        // dead rule executes strictly fewer RAM instructions.
        let instructions = |report: &str| -> usize {
            report
                .split("instructions executed: ")
                .nth(1)
                .and_then(|rest| rest.split(',').next())
                .and_then(|n| n.trim().parse().ok())
                .expect("parse instruction count")
        };
        let unstripped = cmd_run(&flags(&[
            "--program",
            &program,
            "--instance",
            &instance,
            "--output",
            "S",
            "--stats",
            "--no-strip-dead",
        ]))
        .unwrap();
        assert!(!unstripped.contains("strip-dead:"), "{unstripped}");
        assert!(
            instructions(&output) < instructions(&unstripped),
            "stripped {} vs unstripped {}",
            instructions(&output),
            instructions(&unstripped)
        );
        // Answers are identical either way.
        assert_eq!(
            output.lines().take(3).collect::<Vec<_>>(),
            unstripped.lines().take(3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn analyze_prints_the_check_summary_line() {
        let program = write_program("analyze-check.sdl", "S($x) <- R($x).");
        let output = cmd_analyze(&flags(&["--program", &program])).unwrap();
        assert!(output.contains("check: 0 error(s)"), "{output}");
    }

    #[test]
    fn rewrite_eliminates_the_requested_feature() {
        let program = write_program("rewrite.sdl", "S($x) <- R($x), a·$x = $x·a.");
        let output =
            cmd_rewrite(&flags(&["--program", &program, "--eliminate", "equations"])).unwrap();
        assert!(!output.contains(" = "), "no equations left:\n{output}");
        let err =
            cmd_rewrite(&flags(&["--program", &program, "--eliminate", "negation"])).unwrap_err();
        assert!(err.to_string().contains("unknown feature"));
    }

    #[test]
    fn normalize_and_algebra_translate_nonrecursive_programs() {
        let program = write_program("norm.sdl", "T(a·$x, $x) <- R($x).\nS($x) <- T($x·a, $x).");
        let normal = cmd_normalize(&flags(&["--program", &program])).unwrap();
        assert!(normal.contains("<-"));
        let algebra = cmd_algebra(&flags(&["--program", &program, "--output", "S"])).unwrap();
        assert!(!algebra.is_empty());
    }

    #[test]
    fn fragment_rewrites_into_a_target_fragment() {
        let program = write_program("frag.sdl", "S($x) <- R($x), a·$x = $x·a.");
        let output = cmd_fragment(&flags(&[
            "--program",
            &program,
            "--target",
            "I",
            "--output",
            "S",
        ]))
        .unwrap();
        assert!(output.contains("target {I}"), "{output}");
        let err = cmd_fragment(&flags(&[
            "--program",
            &program,
            "--target",
            "X",
            "--output",
            "S",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown feature letter"));
    }

    #[test]
    fn hasse_counts_eleven_classes_for_both_fragment_sets() {
        let einr = cmd_hasse(&flags(&[])).unwrap();
        assert!(einr.contains("16 fragments fall into 11"), "{einr}");
        let all = cmd_hasse(&flags(&["--all"])).unwrap();
        assert!(all.contains("64 fragments fall into 11"), "{all}");
    }

    #[test]
    fn unify_lists_solutions_and_rejects_malformed_equations() {
        let output = cmd_unify(&flags(&["--equation", "$x·$y = a·b"])).unwrap();
        assert!(output.contains("1 symbolic solution"), "{output}");
        let with_empty =
            cmd_unify(&flags(&["--equation", "$x·$y = a·b", "--allow-empty"])).unwrap();
        assert!(with_empty.contains("3 symbolic solution"), "{with_empty}");
        assert!(cmd_unify(&flags(&["--equation", "no equals sign"])).is_err());
    }

    #[test]
    fn regex_compiles_and_optionally_runs() {
        let printed = cmd_regex(&flags(&["--pattern", "a (b|c)*"])).unwrap();
        assert!(printed.contains("Match($x)"), "{printed}");

        let instance = write_instance_file(
            "regex.sdi",
            &Instance::unary(
                rel("R"),
                [
                    path_of(&["a", "b", "b"]),
                    path_of(&["b", "a"]),
                    path_of(&["a"]),
                ],
            ),
        );
        let ran = cmd_regex(&flags(&["--pattern", "a (b|c)*", "--instance", &instance])).unwrap();
        assert!(ran.contains("2 matching string(s)"), "{ran}");
        assert!(cmd_regex(&flags(&["--pattern", "(((", "--instance", &instance])).is_err());
    }
}
