//! # seqdl-cli — the `seqdl` command-line tool
//!
//! A small, dependency-free CLI that exposes the workspace's functionality to users
//! who want to work with Sequence Datalog programs as files:
//!
//! ```text
//! seqdl run        --program q.sdl --instance db.sdi [--output S] [--strategy naive] [--stats]
//! seqdl check      --program q.sdl [--instance db.sdi] [--format json] [--deny warnings]
//! seqdl analyze    --program q.sdl
//! seqdl termination --program q.sdl
//! seqdl rewrite    --program q.sdl --eliminate equations [--output S]
//! seqdl normalize  --program q.sdl
//! seqdl algebra    --program q.sdl --output S
//! seqdl fragment   --program q.sdl --target IR --output S
//! seqdl hasse      [--dot] [--all]
//! seqdl unify      --equation "$x·<@y·$z>·@w = $u·$v·$u" [--allow-empty] [--dot]
//! seqdl regex      --pattern "a (b|c)*" [--contains] [--instance db.sdi] [--input R] [--output Match]
//! seqdl help
//! ```
//!
//! Every command is a pure function from parsed flags to a report string, so the
//! whole surface is unit-testable without spawning processes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod commands;

pub use args::{parse_flags, ArgError, Flags};
pub use commands::{run_command, CliError};

use std::sync::atomic::AtomicBool;

/// Process-wide interrupt flag: the SIGINT handler sets it (the only
/// async-signal-safe thing it does), and every engine built by the CLI links
/// its [`seqdl_core::CancelToken`] to it — so Ctrl-C makes a running
/// evaluation return [`seqdl_engine::EvalError::Cancelled`] with partial
/// statistics at the next governor checkpoint instead of killing the process.
pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Install the SIGINT handler that sets [`INTERRUPTED`].  Called once by the
/// `seqdl` binary before dispatching; library users (and the unit tests) can
/// skip it and cancel through their own tokens.
#[cfg(unix)]
pub fn install_sigint_handler() {
    use std::sync::atomic::Ordering;
    extern "C" fn on_sigint(_signum: i32) {
        // Async-signal-safe: a single atomic store, no allocation, no locks.
        INTERRUPTED.store(true, Ordering::Release);
    }
    const SIGINT: i32 = 2;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // Registering a handler cannot fail for SIGINT with a valid function
    // pointer; the previous handler (the default) is intentionally discarded.
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

/// No-op on platforms without POSIX signals.
#[cfg(not(unix))]
pub fn install_sigint_handler() {}

/// Entry point used by the `seqdl` binary: dispatch on the subcommand name.
///
/// # Errors
/// Propagates argument, file, parse, and evaluation errors as [`CliError`].
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Ok(commands::help_text());
    };
    let flags = parse_flags(rest).map_err(CliError::Args)?;
    run_command(command, &flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_arguments_prints_help() {
        let output = run_cli(&[]).unwrap();
        assert!(output.contains("seqdl run"));
        assert!(output.contains("seqdl hasse"));
    }

    #[test]
    fn unknown_subcommands_are_reported() {
        let err = run_cli(&args(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn help_subcommand_works() {
        assert!(run_cli(&args(&["help"])).unwrap().contains("seqdl analyze"));
    }

    #[test]
    fn hasse_runs_without_files() {
        let output = run_cli(&args(&["hasse"])).unwrap();
        assert!(output.contains("11"), "mentions the 11 classes:\n{output}");
        let dot = run_cli(&args(&["hasse", "--dot"])).unwrap();
        assert!(dot.contains("digraph"));
    }

    #[test]
    fn unify_runs_the_figure_2_equation() {
        let output = run_cli(&args(&["unify", "--equation", "$x·<@y·$z>·@w = $u·$v·$u"])).unwrap();
        assert!(output.contains("4 symbolic solution"), "{output}");
    }
}
