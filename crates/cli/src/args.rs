//! A minimal command-line flag parser (no external dependencies).
//!
//! The grammar is the conventional one: the first argument names the subcommand;
//! `--flag value` supplies an option, `--flag` alone a boolean switch, and anything
//! else is a positional argument.  `--flag=value` is also accepted.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Parsed command-line arguments for one subcommand.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Flags {
    /// Positional arguments, in order.
    pub positional: Vec<String>,
    /// `--name value` options.
    pub options: BTreeMap<String, String>,
    /// `--name` boolean switches.
    pub switches: BTreeSet<String>,
}

/// Errors raised while parsing arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// The set of flag names that take a value; everything else starting with `--` is a
/// boolean switch.
pub const VALUE_FLAGS: &[&str] = &[
    "program",
    "instance",
    "output",
    "format",
    "deny",
    "input",
    "target",
    "strategy",
    "eliminate",
    "equation",
    "pattern",
    "max-iterations",
    "max-facts",
    "max-path-len",
    "max-store-bytes",
    "timeout",
    "threads",
    "shard-size",
    "goal",
    "state-prefix",
    "save",
    "trace-out",
    "stats-format",
];

/// Parse the arguments following the subcommand name.
///
/// # Errors
/// Unknown `--flags`, missing values, and duplicate options are reported.
pub fn parse_flags(args: &[String]) -> Result<Flags, ArgError> {
    let mut flags = Flags::default();
    let mut index = 0;
    while index < args.len() {
        let arg = &args[index];
        if let Some(name) = arg.strip_prefix("--") {
            let (name, inline_value) = match name.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (name, None),
            };
            if VALUE_FLAGS.contains(&name) {
                let value = match inline_value {
                    Some(v) => v,
                    None => {
                        index += 1;
                        args.get(index)
                            .cloned()
                            .ok_or_else(|| ArgError(format!("--{name} expects a value")))?
                    }
                };
                if flags.options.insert(name.to_string(), value).is_some() {
                    return Err(ArgError(format!("--{name} given twice")));
                }
            } else if inline_value.is_some() {
                return Err(ArgError(format!("--{name} does not take a value")));
            } else {
                flags.switches.insert(name.to_string());
            }
        } else {
            flags.positional.push(arg.clone());
        }
        index += 1;
    }
    Ok(flags)
}

impl Flags {
    /// The value of a required option.
    ///
    /// # Errors
    /// Reports the missing option by name.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.options
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required option --{name}")))
    }

    /// The value of an optional option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Is the boolean switch set?
    pub fn has(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// Parse an optional numeric option.
    ///
    /// # Errors
    /// Reports values that are not numbers.
    pub fn get_usize(&self, name: &str) -> Result<Option<usize>, ArgError> {
        match self.get(name) {
            None => Ok(None),
            Some(value) => value
                .parse()
                .map(Some)
                .map_err(|_| ArgError(format!("--{name} expects a number, got `{value}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_switches_and_positionals_are_separated() {
        let flags = parse_flags(&args(&[
            "--program",
            "p.sdl",
            "--dot",
            "extra",
            "--output=S",
        ]))
        .unwrap();
        assert_eq!(flags.require("program").unwrap(), "p.sdl");
        assert_eq!(flags.get("output"), Some("S"));
        assert!(flags.has("dot"));
        assert!(!flags.has("stats"));
        assert_eq!(flags.positional, vec!["extra".to_string()]);
    }

    #[test]
    fn missing_values_and_duplicates_are_errors() {
        assert!(parse_flags(&args(&["--program"])).is_err());
        assert!(parse_flags(&args(&["--program", "a", "--program", "b"])).is_err());
        assert!(parse_flags(&args(&["--dot=value"])).is_err());
    }

    #[test]
    fn numeric_options_are_validated() {
        let flags = parse_flags(&args(&["--max-facts", "100"])).unwrap();
        assert_eq!(flags.get_usize("max-facts").unwrap(), Some(100));
        assert_eq!(flags.get_usize("max-iterations").unwrap(), None);
        let bad = parse_flags(&args(&["--max-facts", "lots"])).unwrap();
        assert!(bad.get_usize("max-facts").is_err());
    }

    #[test]
    fn required_options_report_their_name() {
        let flags = parse_flags(&args(&[])).unwrap();
        let err = flags.require("program").unwrap_err();
        assert!(err.to_string().contains("--program"));
    }
}
