//! End-to-end SIGINT handling: interrupting a running `seqdl run` makes the
//! process exit nonzero with a cancellation message and partial statistics,
//! instead of dying on the default signal disposition.
#![cfg(unix)]

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("seqdl-sigint-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp file");
    path
}

#[test]
fn sigint_cancels_a_running_evaluation_with_partial_stats() {
    // A diverging program with the safety limits pushed out of the way: only
    // the signal stops it.
    let program = temp_file("diverge.sdl", "T(a).\nT(a·$x) <- T($x).\n");
    let instance = temp_file("empty.sdi", "");

    let mut child = Command::new(env!("CARGO_BIN_EXE_seqdl"))
        .args([
            "run",
            "--program",
            program.to_str().expect("utf-8 temp path"),
            "--instance",
            instance.to_str().expect("utf-8 temp path"),
            "--output",
            "T",
            "--stats",
            "--max-iterations",
            "100000000",
            "--max-facts",
            "100000000",
            "--max-path-len",
            "100000000",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn seqdl");

    // Let the evaluation get going, then interrupt it.
    std::thread::sleep(Duration::from_millis(400));
    let kill = Command::new("/bin/kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    assert!(kill.success(), "kill -INT failed");

    // The run must notice the signal at a governor checkpoint and exit
    // promptly on its own error path.
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        match child.try_wait().expect("poll child") {
            Some(status) => break status,
            None if Instant::now() > deadline => {
                child.kill().ok();
                panic!("seqdl did not exit within 10s of SIGINT");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    };
    let output = child.wait_with_output().expect("collect output");
    let stderr = String::from_utf8_lossy(&output.stderr);

    // Exited via the CLI's error path (code 1), not killed by the signal.
    assert_eq!(status.code(), Some(1), "stderr:\n{stderr}");
    assert!(stderr.contains("cancelled"), "stderr:\n{stderr}");
    assert!(stderr.contains("interrupted"), "stderr:\n{stderr}");
    assert!(
        stderr.contains("partial progress at cancellation:"),
        "stderr:\n{stderr}"
    );
    assert!(stderr.contains("iterations:"), "stderr:\n{stderr}");
}
