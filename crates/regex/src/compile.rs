//! Compilation of an NFA into a Sequence Datalog program (Example 2.1 made
//! self-contained): matching runs on the ordinary bottom-up engine using only the
//! {A, I, R} features, confirming the paper's remark that regular-expression
//! matching is syntactic sugar for recursion.

use crate::ast::Regex;
use crate::nfa::{Label, Nfa};
use seqdl_core::RelName;
use seqdl_syntax::{Literal, PathExpr, Predicate, Program, Rule, Term, Var};

/// Options controlling the generated program.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// The unary EDB relation holding the candidate strings.
    pub input: RelName,
    /// The unary IDB relation receiving the matching strings.
    pub output: RelName,
    /// Prefix used for the atoms that encode NFA states.  State atoms only ever
    /// appear at the start of the first component of the step relation, so a clash
    /// with input atoms is harmless, but a distinctive prefix keeps traces readable.
    pub state_prefix: String,
    /// Name of the intermediate "step" relation.
    pub step_relation: RelName,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            input: RelName::new("R"),
            output: RelName::new("Match"),
            state_prefix: "q".to_string(),
            step_relation: RelName::new("Step"),
        }
    }
}

/// A compiled regular expression: the generated program plus the relation names a
/// caller needs to run it.
#[derive(Clone, Debug)]
pub struct CompiledRegex {
    /// The generated Sequence Datalog program.
    pub program: Program,
    /// The EDB relation the program reads candidate strings from.
    pub input: RelName,
    /// The IDB relation holding the strings that match.
    pub output: RelName,
}

/// Compile a regular expression into a program selecting, from the unary relation
/// `options.input`, exactly the strings that **fully match** the expression.
pub fn compile_match(regex: &Regex, options: &CompileOptions) -> CompiledRegex {
    let nfa = Nfa::from_regex(regex);
    compile_nfa(&nfa, options)
}

/// Compile a regular expression into a program selecting the strings that **contain
/// a substring matching** the expression (i.e. a full match of `%* e %*`).
pub fn compile_contains(regex: &Regex, options: &CompileOptions) -> CompiledRegex {
    let wrapped = regex.clone().contains();
    compile_match(&wrapped, options)
}

/// Compile an arbitrary NFA (hand-built or Thompson-constructed) into a program in
/// the style of Example 2.1, with the transition table inlined as one rule per
/// transition instead of a ternary `D` relation.
pub fn compile_nfa(nfa: &Nfa, options: &CompileOptions) -> CompiledRegex {
    let state = |i: usize| Term::constant(&format!("{}{}", options.state_prefix, i));
    let step = options.step_relation;
    let x = Var::path("x");
    let y = Var::path("y");
    let z = Var::path("z");
    let c = Var::atom("c");

    let mut rules = Vec::new();

    // Seeding: Step(q_i · $x, eps) <- R($x)  for every initial state i.
    for i in nfa.initial_states() {
        let head = Predicate::new(
            step,
            vec![
                PathExpr::from_terms([state(i), Term::Var(x)]),
                PathExpr::empty(),
            ],
        );
        let body = vec![Literal::pred(Predicate::new(
            options.input,
            vec![PathExpr::var(x)],
        ))];
        rules.push(Rule::new(head, body));
    }

    // One rule per transition.
    for &(from, label, to) in nfa.transitions() {
        let rule = match label {
            // Step(q_to · $y, $z · a) <- Step(q_from · a · $y, $z).
            Label::Atom(a) => {
                let a_term = Term::Const(a);
                Rule::new(
                    Predicate::new(
                        step,
                        vec![
                            PathExpr::from_terms([state(to), Term::Var(y)]),
                            PathExpr::from_terms([Term::Var(z), a_term.clone()]),
                        ],
                    ),
                    vec![Literal::pred(Predicate::new(
                        step,
                        vec![
                            PathExpr::from_terms([state(from), a_term, Term::Var(y)]),
                            PathExpr::var(z),
                        ],
                    ))],
                )
            }
            // Step(q_to · $y, $z · @c) <- Step(q_from · @c · $y, $z).
            Label::Any => Rule::new(
                Predicate::new(
                    step,
                    vec![
                        PathExpr::from_terms([state(to), Term::Var(y)]),
                        PathExpr::from_terms([Term::Var(z), Term::Var(c)]),
                    ],
                ),
                vec![Literal::pred(Predicate::new(
                    step,
                    vec![
                        PathExpr::from_terms([state(from), Term::Var(c), Term::Var(y)]),
                        PathExpr::var(z),
                    ],
                ))],
            ),
            // Step(q_to · $y, $z) <- Step(q_from · $y, $z).
            Label::Epsilon => Rule::new(
                Predicate::new(
                    step,
                    vec![
                        PathExpr::from_terms([state(to), Term::Var(y)]),
                        PathExpr::var(z),
                    ],
                ),
                vec![Literal::pred(Predicate::new(
                    step,
                    vec![
                        PathExpr::from_terms([state(from), Term::Var(y)]),
                        PathExpr::var(z),
                    ],
                ))],
            ),
        };
        rules.push(rule);
    }

    // Acceptance: Match($x) <- Step(q_f, $x)  for every final state f.
    for f in nfa.final_states() {
        let head = Predicate::new(options.output, vec![PathExpr::var(x)]);
        let body = vec![Literal::pred(Predicate::new(
            step,
            vec![PathExpr::singleton(state(f)), PathExpr::var(x)],
        ))];
        rules.push(Rule::new(head, body));
    }

    CompiledRegex {
        program: Program::single_stratum(rules),
        input: options.input,
        output: options.output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use seqdl_core::{path_of, rel, repeat_path, Instance, Path};
    use seqdl_engine::run_unary_query;
    use seqdl_syntax::{
        analysis::{check_safety, check_stratification},
        FeatureSet,
    };

    fn p(names: &[&str]) -> Path {
        path_of(names)
    }

    fn run(compiled: &CompiledRegex, strings: Vec<Path>) -> std::collections::BTreeSet<Path> {
        let input = Instance::unary(compiled.input, strings);
        run_unary_query(&compiled.program, &input, compiled.output).expect("terminates")
    }

    #[test]
    fn compiled_programs_are_safe_stratified_and_air_only() {
        let regex = parse_regex("a (b|c)* d?").unwrap();
        let compiled = compile_match(&regex, &CompileOptions::default());
        check_safety(&compiled.program).expect("safe");
        check_stratification(&compiled.program).expect("stratified");
        let features = FeatureSet::of_program(&compiled.program);
        assert!(!features.equations);
        assert!(!features.negation);
        assert!(!features.packing);
        assert!(features.arity);
        assert!(features.intermediate);
        assert!(features.recursion);
    }

    #[test]
    fn compiled_match_selects_exactly_the_matching_strings() {
        let regex = parse_regex("a (b|c)*").unwrap();
        let compiled = compile_match(&regex, &CompileOptions::default());
        let strings = vec![
            p(&["a"]),
            p(&["a", "b", "c", "b"]),
            p(&["b", "a"]),
            p(&["a", "d"]),
            Path::empty(),
        ];
        let got = run(&compiled, strings);
        assert!(got.contains(&p(&["a"])));
        assert!(got.contains(&p(&["a", "b", "c", "b"])));
        assert!(!got.contains(&p(&["b", "a"])));
        assert!(!got.contains(&p(&["a", "d"])));
        assert!(!got.contains(&Path::empty()));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn compiled_contains_selects_strings_with_a_matching_substring() {
        let regex = parse_regex("b c").unwrap();
        let compiled = compile_contains(&regex, &CompileOptions::default());
        let strings = vec![
            p(&["a", "b", "c", "d"]),
            p(&["b", "c"]),
            p(&["b", "d", "c"]),
            p(&["c", "b"]),
        ];
        let got = run(&compiled, strings);
        assert_eq!(got.len(), 2);
        assert!(got.contains(&p(&["a", "b", "c", "d"])));
        assert!(got.contains(&p(&["b", "c"])));
    }

    #[test]
    fn empty_word_regexes_accept_the_empty_path() {
        let compiled = compile_match(&Regex::Epsilon, &CompileOptions::default());
        let got = run(&compiled, vec![Path::empty(), p(&["a"])]);
        assert_eq!(got.len(), 1);
        assert!(got.contains(&Path::empty()));
    }

    #[test]
    fn custom_relation_names_are_respected() {
        let options = CompileOptions {
            input: rel("Log"),
            output: rel("Compliant"),
            state_prefix: "state".to_string(),
            step_relation: rel("Walk"),
        };
        let regex = parse_regex("order %* pay").unwrap();
        let compiled = compile_contains(&regex, &options);
        assert_eq!(compiled.input, rel("Log"));
        assert_eq!(compiled.output, rel("Compliant"));
        assert!(compiled.program.idb_relations().contains(&rel("Walk")));
        let input = Instance::unary(
            rel("Log"),
            [
                p(&["start", "order", "ship", "pay"]),
                p(&["start", "order"]),
            ],
        );
        let got = run_unary_query(&compiled.program, &input, rel("Compliant")).unwrap();
        assert_eq!(got.len(), 1);
        assert!(got.contains(&p(&["start", "order", "ship", "pay"])));
    }

    #[test]
    fn compiled_program_agrees_with_the_matcher_and_the_nfa() {
        let regexes = ["a (b|c)*", "(a|b)+ c?", "% a %", "a b a", "a*", "eps"];
        // All words over {a, b, c} of length <= 4.
        let alphabet = ["a", "b", "c"];
        let mut words = vec![Path::empty()];
        let mut frontier = vec![Path::empty()];
        for _ in 0..4 {
            let mut next = Vec::new();
            for w in &frontier {
                for a in alphabet {
                    let mut e = *w;
                    e.push(seqdl_core::Value::Atom(seqdl_core::atom(a)));
                    next.push(e);
                    words.push(e);
                }
            }
            frontier = next;
        }
        for src in regexes {
            let regex = parse_regex(src).unwrap();
            let nfa = Nfa::from_regex(&regex);
            let compiled = compile_match(&regex, &CompileOptions::default());
            let got = run(&compiled, words.clone());
            for word in &words {
                let expected = regex.matches(word);
                assert_eq!(
                    nfa.accepts(word),
                    expected,
                    "NFA disagrees on {word} for `{src}`"
                );
                assert_eq!(
                    got.contains(word),
                    expected,
                    "compiled program disagrees on {word} for `{src}`"
                );
            }
        }
    }

    #[test]
    fn state_atoms_in_the_input_do_not_confuse_the_program() {
        // Input strings that deliberately contain the state atoms q0, q1, ….
        let regex = parse_regex("q0 q1*").unwrap();
        let compiled = compile_match(&regex, &CompileOptions::default());
        let got = run(
            &compiled,
            vec![
                p(&["q0"]),
                p(&["q0", "q1", "q1"]),
                p(&["q1"]),
                repeat_path("q0", 2),
            ],
        );
        assert!(got.contains(&p(&["q0"])));
        assert!(got.contains(&p(&["q0", "q1", "q1"])));
        assert!(!got.contains(&p(&["q1"])));
        assert!(!got.contains(&repeat_path("q0", 2)));
    }
}
