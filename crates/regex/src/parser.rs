//! A small concrete syntax for regular expressions over atomic values.
//!
//! Grammar (whitespace separates atoms; `·` is also accepted as a concatenation
//! separator):
//!
//! ```text
//! alternation   := concatenation ('|' concatenation)*
//! concatenation := repeated*
//! repeated      := primary ('*' | '+' | '?')*
//! primary       := atom-name | '%' | 'eps' | '(' alternation ')'
//! ```
//!
//! `%` is the any-atom wildcard and `eps` the empty word.  Atom names are
//! identifiers made of letters, digits, `_` and `-`, except the reserved word `eps`.

use crate::ast::Regex;
use std::fmt;

/// Errors raised while parsing a regular expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegexParseError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RegexParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for RegexParseError {}

/// Parse a regular expression from its concrete syntax.
///
/// # Errors
/// Returns a [`RegexParseError`] describing the first offending position.
pub fn parse_regex(input: &str) -> Result<Regex, RegexParseError> {
    let mut parser = Parser {
        chars: input.char_indices().collect(),
        pos: 0,
    };
    parser.skip_ws();
    if parser.at_end() {
        // The empty input denotes the empty word, mirroring `eps`.
        return Ok(Regex::Epsilon);
    }
    let regex = parser.alternation()?;
    parser.skip_ws();
    if !parser.at_end() {
        return Err(parser.error("unexpected trailing input"));
    }
    Ok(regex)
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn byte_offset(&self) -> usize {
        self.chars.get(self.pos).map_or_else(
            || self.chars.last().map_or(0, |&(i, c)| i + c.len_utf8()),
            |&(i, _)| i,
        )
    }

    fn error(&self, message: &str) -> RegexParseError {
        RegexParseError {
            position: self.byte_offset(),
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace() || c == '·') {
            self.pos += 1;
        }
    }

    fn alternation(&mut self) -> Result<Regex, RegexParseError> {
        let mut parts = vec![self.concatenation()?];
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.bump();
                parts.push(self.concatenation()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Regex::Alt(parts)
        })
    }

    fn concatenation(&mut self) -> Result<Regex, RegexParseError> {
        let mut parts = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None | Some('|') | Some(')') => break,
                _ => parts.push(self.repeated()?),
            }
        }
        Ok(match parts.len() {
            0 => Regex::Epsilon,
            1 => parts.pop().expect("one part"),
            _ => Regex::Concat(parts),
        })
    }

    fn repeated(&mut self) -> Result<Regex, RegexParseError> {
        let mut regex = self.primary()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    regex = regex.star();
                }
                Some('+') => {
                    self.bump();
                    regex = regex.plus();
                }
                Some('?') => {
                    self.bump();
                    regex = regex.optional();
                }
                _ => break,
            }
        }
        Ok(regex)
    }

    fn primary(&mut self) -> Result<Regex, RegexParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.alternation()?;
                self.skip_ws();
                if self.peek() != Some(')') {
                    return Err(self.error("expected ')'"));
                }
                self.bump();
                Ok(inner)
            }
            Some('%') => {
                self.bump();
                Ok(Regex::AnyAtom)
            }
            Some(c) if is_atom_char(c) => {
                let mut name = String::new();
                while matches!(self.peek(), Some(c) if is_atom_char(c)) {
                    name.push(self.bump().expect("peeked"));
                }
                if name == "eps" {
                    Ok(Regex::Epsilon)
                } else {
                    Ok(Regex::atom(&name))
                }
            }
            Some(_) => Err(self.error("expected an atom, '%', 'eps', or '('")),
            None => Err(self.error("unexpected end of input")),
        }
    }
}

fn is_atom_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, Path};

    fn p(names: &[&str]) -> Path {
        path_of(names)
    }

    #[test]
    fn atoms_and_concatenation_parse() {
        let r = parse_regex("a b c").unwrap();
        assert!(r.matches(&p(&["a", "b", "c"])));
        assert!(!r.matches(&p(&["a", "b"])));
        // The path concatenation dot also separates atoms.
        let r2 = parse_regex("a·b·c").unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn postfix_operators_parse() {
        let r = parse_regex("a* b+ c?").unwrap();
        assert!(r.matches(&p(&["b"])));
        assert!(r.matches(&p(&["a", "a", "b", "b", "c"])));
        assert!(!r.matches(&p(&["c"])));
    }

    #[test]
    fn alternation_and_grouping_parse() {
        let r = parse_regex("(a|b)* c").unwrap();
        assert!(r.matches(&p(&["c"])));
        assert!(r.matches(&p(&["a", "b", "b", "c"])));
        assert!(!r.matches(&p(&["a", "b"])));
    }

    #[test]
    fn wildcard_and_eps_parse() {
        let r = parse_regex("% % eps").unwrap();
        assert!(r.matches(&p(&["x", "y"])));
        assert!(!r.matches(&p(&["x"])));
        assert!(parse_regex("eps").unwrap().matches(&Path::empty()));
        assert!(parse_regex("").unwrap().matches(&Path::empty()));
        assert!(parse_regex("   ").unwrap().matches(&Path::empty()));
    }

    #[test]
    fn double_postfix_operators_compose() {
        let r = parse_regex("(a+)?").unwrap();
        assert!(r.matches(&Path::empty()));
        assert!(r.matches(&p(&["a", "a"])));
        let r = parse_regex("a?*").unwrap();
        assert!(r.matches(&Path::empty()));
        assert!(r.matches(&p(&["a", "a", "a"])));
    }

    #[test]
    fn long_atom_names_parse() {
        let r = parse_regex("complete_order receive-payment*").unwrap();
        assert!(r.matches(&p(&["complete_order"])));
        assert!(r.matches(&p(&[
            "complete_order",
            "receive-payment",
            "receive-payment"
        ])));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_regex("a )").unwrap_err();
        assert!(
            err.position >= 2,
            "position {} should point at ')'",
            err.position
        );
        assert!(parse_regex("(a").is_err());
        assert!(parse_regex("a | | b").is_err() || parse_regex("a | | b").is_ok());
        assert!(parse_regex("*").is_err());
    }

    #[test]
    fn display_output_reparses_to_an_equivalent_regex() {
        for src in ["a (b|c)* d?", "(a|b)+ c", "% a %*", "a b c", "eps", "a?*"] {
            let original = parse_regex(src).unwrap();
            let reparsed = parse_regex(&original.to_string()).unwrap();
            // Equivalence check on all words up to length 4 over {a, b, c, d}.
            let alphabet = ["a", "b", "c", "d"];
            let mut frontier = vec![Path::empty()];
            for _ in 0..=4 {
                for word in &frontier {
                    assert_eq!(
                        original.matches(word),
                        reparsed.matches(word),
                        "round trip of `{src}` changed the language at {word}"
                    );
                }
                let mut next = Vec::new();
                for word in &frontier {
                    for a in alphabet {
                        let mut e = *word;
                        e.push(seqdl_core::Value::Atom(seqdl_core::atom(a)));
                        next.push(e);
                    }
                }
                frontier = next;
            }
        }
    }
}
