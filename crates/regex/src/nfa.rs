//! Thompson construction and NFA simulation.

use crate::ast::Regex;
use seqdl_core::{AtomId, Path, Value};
use std::collections::BTreeSet;

/// A transition label of the NFA.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Label {
    /// Consume one occurrence of this atomic value.
    Atom(AtomId),
    /// Consume any single atomic value.
    Any,
    /// Consume nothing (an ε-transition).
    Epsilon,
}

/// A nondeterministic finite automaton over atomic values, in the shape used by
/// Example 2.1 of the paper (a set of initial states, labelled transitions, and a
/// set of final states).
#[derive(Clone, Debug)]
pub struct Nfa {
    state_count: usize,
    initial: BTreeSet<usize>,
    finals: BTreeSet<usize>,
    transitions: Vec<(usize, Label, usize)>,
}

impl Nfa {
    /// An NFA with `state_count` states and no transitions.
    pub fn new(state_count: usize) -> Nfa {
        Nfa {
            state_count,
            initial: BTreeSet::new(),
            finals: BTreeSet::new(),
            transitions: Vec::new(),
        }
    }

    /// Build the Thompson NFA of a regular expression.
    pub fn from_regex(regex: &Regex) -> Nfa {
        let mut nfa = Nfa::new(0);
        let start = nfa.add_state();
        let end = nfa.add_state();
        nfa.initial.insert(start);
        nfa.finals.insert(end);
        nfa.build(regex, start, end);
        nfa
    }

    /// The number of states.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// The initial states.
    pub fn initial_states(&self) -> impl Iterator<Item = usize> + '_ {
        self.initial.iter().copied()
    }

    /// The final (accepting) states.
    pub fn final_states(&self) -> impl Iterator<Item = usize> + '_ {
        self.finals.iter().copied()
    }

    /// The transitions as `(from, label, to)` triples.
    pub fn transitions(&self) -> &[(usize, Label, usize)] {
        &self.transitions
    }

    /// Add a fresh state and return its index.
    pub fn add_state(&mut self) -> usize {
        self.state_count += 1;
        self.state_count - 1
    }

    /// Mark a state as initial.
    pub fn set_initial(&mut self, state: usize) {
        self.initial.insert(state);
    }

    /// Mark a state as final.
    pub fn set_final(&mut self, state: usize) {
        self.finals.insert(state);
    }

    /// Add a transition.
    pub fn add_transition(&mut self, from: usize, label: Label, to: usize) {
        self.transitions.push((from, label, to));
    }

    fn build(&mut self, regex: &Regex, start: usize, end: usize) {
        match regex {
            Regex::Empty => {}
            Regex::Epsilon => self.add_transition(start, Label::Epsilon, end),
            Regex::Atom(a) => self.add_transition(start, Label::Atom(*a), end),
            Regex::AnyAtom => self.add_transition(start, Label::Any, end),
            Regex::Concat(parts) => {
                if parts.is_empty() {
                    self.add_transition(start, Label::Epsilon, end);
                    return;
                }
                let mut from = start;
                for (i, part) in parts.iter().enumerate() {
                    let to = if i + 1 == parts.len() {
                        end
                    } else {
                        self.add_state()
                    };
                    self.build(part, from, to);
                    from = to;
                }
            }
            Regex::Alt(parts) => {
                for part in parts {
                    self.build(part, start, end);
                }
            }
            Regex::Star(inner) => {
                let hub = self.add_state();
                self.add_transition(start, Label::Epsilon, hub);
                self.add_transition(hub, Label::Epsilon, end);
                let loop_start = self.add_state();
                let loop_end = self.add_state();
                self.add_transition(hub, Label::Epsilon, loop_start);
                self.add_transition(loop_end, Label::Epsilon, hub);
                self.build(inner, loop_start, loop_end);
            }
            Regex::Plus(inner) => {
                // inner · inner*
                let mid = self.add_state();
                self.build(inner, start, mid);
                self.build(&Regex::Star(inner.clone()), mid, end);
            }
            Regex::Optional(inner) => {
                self.add_transition(start, Label::Epsilon, end);
                self.build(inner, start, end);
            }
        }
    }

    /// The ε-closure of a set of states.
    fn epsilon_closure(&self, states: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut closure = states.clone();
        let mut frontier: Vec<usize> = states.iter().copied().collect();
        while let Some(s) = frontier.pop() {
            for &(from, label, to) in &self.transitions {
                if from == s && label == Label::Epsilon && closure.insert(to) {
                    frontier.push(to);
                }
            }
        }
        closure
    }

    /// Simulate the NFA on a word: does it accept the whole path?
    ///
    /// A packed value in the path never matches any label, so any path containing a
    /// packed value is rejected.
    pub fn accepts(&self, word: &Path) -> bool {
        let mut current = self.epsilon_closure(&self.initial);
        for value in word.iter() {
            let mut next = BTreeSet::new();
            for &(from, label, to) in &self.transitions {
                if !current.contains(&from) {
                    continue;
                }
                let fires = match (label, value) {
                    (Label::Any, Value::Atom(_)) => true,
                    (Label::Atom(a), Value::Atom(b)) => a == *b,
                    _ => false,
                };
                if fires {
                    next.insert(to);
                }
            }
            current = self.epsilon_closure(&next);
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|s| self.finals.contains(s))
    }

    /// All words over `alphabet` of length at most `max_len` accepted by the NFA
    /// (useful for exhaustive differential tests on small alphabets).
    pub fn accepted_words(&self, alphabet: &[AtomId], max_len: usize) -> Vec<Path> {
        let mut out = Vec::new();
        let mut frontier: Vec<Path> = vec![Path::empty()];
        for len in 0..=max_len {
            for word in &frontier {
                if self.accepts(word) {
                    out.push(*word);
                }
            }
            if len == max_len {
                break;
            }
            let mut next = Vec::new();
            for word in &frontier {
                for &a in alphabet {
                    let mut extended = *word;
                    extended.push(Value::Atom(a));
                    next.push(extended);
                }
            }
            frontier = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, repeat_path};

    fn p(names: &[&str]) -> Path {
        path_of(names)
    }

    #[test]
    fn literal_nfa_accepts_only_the_literal() {
        let nfa = Nfa::from_regex(&Regex::literal(&p(&["a", "b"])));
        assert!(nfa.accepts(&p(&["a", "b"])));
        assert!(!nfa.accepts(&p(&["a"])));
        assert!(!nfa.accepts(&p(&["a", "b", "b"])));
        assert!(!nfa.accepts(&Path::empty()));
    }

    #[test]
    fn star_and_plus_nfas_accept_repetitions() {
        let star = Nfa::from_regex(&Regex::atom("a").star());
        let plus = Nfa::from_regex(&Regex::atom("a").plus());
        assert!(star.accepts(&Path::empty()));
        assert!(!plus.accepts(&Path::empty()));
        for n in 1..6 {
            assert!(star.accepts(&repeat_path("a", n)));
            assert!(plus.accepts(&repeat_path("a", n)));
        }
        assert!(!star.accepts(&p(&["a", "b"])));
    }

    #[test]
    fn alternation_nfa_accepts_both_branches() {
        let nfa = Nfa::from_regex(&Regex::atom("a").or(Regex::atom("b")));
        assert!(nfa.accepts(&p(&["a"])));
        assert!(nfa.accepts(&p(&["b"])));
        assert!(!nfa.accepts(&p(&["c"])));
        assert!(!nfa.accepts(&p(&["a", "b"])));
    }

    #[test]
    fn wildcard_nfa_accepts_any_atom() {
        let nfa = Nfa::from_regex(&Regex::AnyAtom.star());
        assert!(nfa.accepts(&Path::empty()));
        assert!(nfa.accepts(&p(&["x", "y", "z"])));
    }

    #[test]
    fn empty_regex_nfa_accepts_nothing() {
        let nfa = Nfa::from_regex(&Regex::Empty);
        assert!(!nfa.accepts(&Path::empty()));
        assert!(!nfa.accepts(&p(&["a"])));
    }

    #[test]
    fn packed_values_are_rejected() {
        let nfa = Nfa::from_regex(&Regex::AnyAtom.star());
        let packed = Path::singleton(Value::packed(p(&["a"])));
        assert!(!nfa.accepts(&packed));
    }

    #[test]
    fn nfa_agrees_with_the_ast_matcher_on_an_exhaustive_alphabet() {
        let regexes = vec![
            Regex::atom("a").then(Regex::atom("b").or(Regex::atom("c")).star()),
            Regex::atom("a").plus().then(Regex::atom("b").optional()),
            Regex::atom("a")
                .or(Regex::atom("b"))
                .star()
                .then(Regex::atom("c")),
            Regex::atom("a").optional().star(),
            Regex::literal(&p(&["a", "b", "a"])).contains(),
        ];
        let alphabet = [AtomId::new("a"), AtomId::new("b"), AtomId::new("c")];
        for regex in regexes {
            let nfa = Nfa::from_regex(&regex);
            let mut frontier = vec![Path::empty()];
            for _ in 0..=4 {
                for word in &frontier {
                    assert_eq!(
                        nfa.accepts(word),
                        regex.matches(word),
                        "NFA and matcher disagree on {word} for {regex}"
                    );
                }
                let mut next = Vec::new();
                for word in &frontier {
                    for &a in &alphabet {
                        let mut e = *word;
                        e.push(Value::Atom(a));
                        next.push(e);
                    }
                }
                frontier = next;
            }
        }
    }

    #[test]
    fn accepted_words_enumerates_the_language_prefix() {
        let nfa = Nfa::from_regex(&Regex::atom("a").then(Regex::atom("b")).star());
        let alphabet = [AtomId::new("a"), AtomId::new("b")];
        let accepted = nfa.accepted_words(&alphabet, 4);
        assert!(accepted.contains(&Path::empty()));
        assert!(accepted.contains(&p(&["a", "b"])));
        assert!(accepted.contains(&p(&["a", "b", "a", "b"])));
        assert_eq!(accepted.len(), 3);
    }

    #[test]
    fn hand_built_nfas_work_too() {
        // q0 --a--> q1 --b--> q2 (final), q2 --a--> q1: the (ab)+ automaton of the
        // integration tests.
        let mut nfa = Nfa::new(3);
        nfa.set_initial(0);
        nfa.set_final(2);
        nfa.add_transition(0, Label::Atom(AtomId::new("a")), 1);
        nfa.add_transition(1, Label::Atom(AtomId::new("b")), 2);
        nfa.add_transition(2, Label::Atom(AtomId::new("a")), 1);
        assert!(nfa.accepts(&p(&["a", "b"])));
        assert!(nfa.accepts(&p(&["a", "b", "a", "b"])));
        assert!(!nfa.accepts(&p(&["a"])));
        assert!(!nfa.accepts(&Path::empty()));
        assert_eq!(nfa.state_count(), 3);
        assert_eq!(nfa.transitions().len(), 3);
    }
}
