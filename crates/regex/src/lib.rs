//! # seqdl-regex — regular expressions over sequence databases
//!
//! The paper notes (Section 1) that regular-expression matching, used as a built-in
//! primitive by the document-spanner line of work on Sequence Datalog, is "very
//! useful syntactic sugar, as it is also expressible using recursion".  This crate
//! makes that remark concrete:
//!
//! * [`Regex`] — a regular-expression AST over atomic values, with a direct
//!   backtracking matcher ([`Regex::matches`]);
//! * [`parse_regex`] — a small concrete syntax (`a (b|c)* d?`, `%` for any atom,
//!   `eps` for the empty word);
//! * [`Nfa`] — Thompson construction and NFA simulation ([`Nfa::accepts`]);
//! * [`compile_match`] / [`compile_contains`] — translation of an NFA into a
//!   Sequence Datalog program in the style of Example 2.1, so that regular matching
//!   runs on the ordinary engine using only the {A, I, R} features.
//!
//! The three layers (AST matcher, NFA simulation, compiled Datalog program) are
//! differentially tested against each other.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod compile;
pub mod nfa;
pub mod parser;

pub use ast::Regex;
pub use compile::{compile_contains, compile_match, CompileOptions, CompiledRegex};
pub use nfa::{Label, Nfa};
pub use parser::{parse_regex, RegexParseError};

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::path_of;

    #[test]
    fn public_api_smoke_test() {
        let regex = parse_regex("a (b|c)* d?").unwrap();
        assert!(regex.matches(&path_of(&["a", "b", "c", "b"])));
        assert!(regex.matches(&path_of(&["a", "d"])));
        assert!(!regex.matches(&path_of(&["b"])));
        let nfa = Nfa::from_regex(&regex);
        assert!(nfa.accepts(&path_of(&["a", "c", "c", "d"])));
        assert!(!nfa.accepts(&path_of(&["d"])));
    }
}
