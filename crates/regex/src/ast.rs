//! The regular-expression AST over atomic values, with a direct matcher.

use seqdl_core::{AtomId, Path, Value};
use std::fmt;

/// A regular expression over atomic values.  Words are flat [`Path`]s; a packed
/// value never matches any symbol.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Regex {
    /// Matches only the empty word `ε`.
    Epsilon,
    /// Matches nothing at all.
    Empty,
    /// Matches exactly the one-atom word consisting of this atomic value.
    Atom(AtomId),
    /// Matches any single atomic value (the wildcard, written `%`).
    AnyAtom,
    /// Concatenation, in order.
    Concat(Vec<Regex>),
    /// Alternation (union).
    Alt(Vec<Regex>),
    /// Kleene star: zero or more repetitions.
    Star(Box<Regex>),
    /// One or more repetitions.
    Plus(Box<Regex>),
    /// Zero or one occurrence.
    Optional(Box<Regex>),
}

impl Regex {
    /// The expression matching exactly the one-atom word `name`.
    pub fn atom(name: &str) -> Regex {
        Regex::Atom(AtomId::new(name))
    }

    /// Concatenate two expressions, flattening nested concatenations.
    pub fn then(self, other: Regex) -> Regex {
        let mut parts = match self {
            Regex::Concat(v) => v,
            r => vec![r],
        };
        match other {
            Regex::Concat(v) => parts.extend(v),
            r => parts.push(r),
        }
        Regex::Concat(parts)
    }

    /// Alternation of two expressions, flattening nested alternations.
    pub fn or(self, other: Regex) -> Regex {
        let mut parts = match self {
            Regex::Alt(v) => v,
            r => vec![r],
        };
        match other {
            Regex::Alt(v) => parts.extend(v),
            r => parts.push(r),
        }
        Regex::Alt(parts)
    }

    /// Zero or more repetitions of this expression.
    pub fn star(self) -> Regex {
        Regex::Star(Box::new(self))
    }

    /// One or more repetitions of this expression.
    pub fn plus(self) -> Regex {
        Regex::Plus(Box::new(self))
    }

    /// Zero or one occurrence of this expression.
    pub fn optional(self) -> Regex {
        Regex::Optional(Box::new(self))
    }

    /// The expression `%* · self · %*`: does a word *contain* a match of `self`?
    pub fn contains(self) -> Regex {
        Regex::AnyAtom.star().then(self).then(Regex::AnyAtom.star())
    }

    /// The exact word `w` as an expression (concatenation of its atoms).
    ///
    /// Returns [`Regex::Empty`] if the path contains a packed value, since packed
    /// values never match.
    pub fn literal(word: &Path) -> Regex {
        let mut parts = Vec::with_capacity(word.len());
        for v in word.iter() {
            match v {
                Value::Atom(a) => parts.push(Regex::Atom(*a)),
                Value::Packed(_) => return Regex::Empty,
            }
        }
        if parts.is_empty() {
            Regex::Epsilon
        } else {
            Regex::Concat(parts)
        }
    }

    /// Does this expression match the empty word?
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Epsilon => true,
            Regex::Empty | Regex::Atom(_) | Regex::AnyAtom => false,
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::nullable),
            Regex::Star(_) | Regex::Optional(_) => true,
            Regex::Plus(inner) => inner.nullable(),
        }
    }

    /// The number of AST nodes (used to bound generated test cases).
    pub fn size(&self) -> usize {
        1 + match self {
            Regex::Epsilon | Regex::Empty | Regex::Atom(_) | Regex::AnyAtom => 0,
            Regex::Concat(parts) | Regex::Alt(parts) => parts.iter().map(Regex::size).sum(),
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Optional(inner) => inner.size(),
        }
    }

    /// The set of atom names mentioned by the expression (useful for building test
    /// alphabets; the wildcard is not included).
    pub fn alphabet(&self) -> Vec<AtomId> {
        let mut out = Vec::new();
        self.collect_alphabet(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_alphabet(&self, out: &mut Vec<AtomId>) {
        match self {
            Regex::Atom(a) => out.push(*a),
            Regex::Concat(parts) | Regex::Alt(parts) => {
                for p in parts {
                    p.collect_alphabet(out);
                }
            }
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Optional(inner) => {
                inner.collect_alphabet(out)
            }
            Regex::Epsilon | Regex::Empty | Regex::AnyAtom => {}
        }
    }

    /// Does this expression match the whole word `word`?
    ///
    /// This is a direct recursive matcher over the AST, independent of the NFA and of
    /// the compiled Datalog program; it is the reference implementation the other two
    /// are differentially tested against.  Packed values never match.
    pub fn matches(&self, word: &Path) -> bool {
        self.match_at(word.values(), 0, &mut |rest| rest == word.len())
    }

    /// Try to match a prefix of `word[from..]`; call `continuation` with the index
    /// just past each successful prefix match, returning early on the first success.
    fn match_at(
        &self,
        word: &[Value],
        from: usize,
        continuation: &mut dyn FnMut(usize) -> bool,
    ) -> bool {
        match self {
            Regex::Empty => false,
            Regex::Epsilon => continuation(from),
            Regex::Atom(a) => match word.get(from) {
                Some(Value::Atom(b)) if b == a => continuation(from + 1),
                _ => false,
            },
            Regex::AnyAtom => match word.get(from) {
                Some(Value::Atom(_)) => continuation(from + 1),
                _ => false,
            },
            Regex::Concat(parts) => Self::match_seq(parts, word, from, continuation),
            Regex::Alt(parts) => parts.iter().any(|p| p.match_at(word, from, continuation)),
            Regex::Optional(inner) => {
                continuation(from) || inner.match_at(word, from, continuation)
            }
            Regex::Star(inner) => Self::match_star(inner, word, from, continuation, false),
            Regex::Plus(inner) => Self::match_star(inner, word, from, continuation, true),
        }
    }

    fn match_seq(
        parts: &[Regex],
        word: &[Value],
        from: usize,
        continuation: &mut dyn FnMut(usize) -> bool,
    ) -> bool {
        match parts.split_first() {
            None => continuation(from),
            Some((first, rest)) => first.match_at(word, from, &mut |next| {
                Self::match_seq(rest, word, next, continuation)
            }),
        }
    }

    fn match_star(
        inner: &Regex,
        word: &[Value],
        from: usize,
        continuation: &mut dyn FnMut(usize) -> bool,
        at_least_one: bool,
    ) -> bool {
        if !at_least_one && continuation(from) {
            return true;
        }
        // Require progress on each round to avoid infinite recursion on nullable
        // inner expressions (e.g. (a?)*).
        inner.match_at(word, from, &mut |next| {
            if next == from {
                return at_least_one && continuation(next);
            }
            Self::match_star(inner, word, next, continuation, false)
        }) || (at_least_one && inner.nullable() && continuation(from))
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn group(r: &Regex, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match r {
                Regex::Concat(_) | Regex::Alt(_) => write!(f, "({r})"),
                _ => write!(f, "{r}"),
            }
        }
        match self {
            Regex::Epsilon => f.write_str("eps"),
            Regex::Empty => f.write_str("∅"),
            Regex::Atom(a) => write!(f, "{}", Value::Atom(*a)),
            Regex::AnyAtom => f.write_str("%"),
            Regex::Concat(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    group(p, f)?;
                }
                Ok(())
            }
            Regex::Alt(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str("|")?;
                    }
                    group(p, f)?;
                }
                Ok(())
            }
            Regex::Star(inner) => {
                group(inner, f)?;
                f.write_str("*")
            }
            Regex::Plus(inner) => {
                group(inner, f)?;
                f.write_str("+")
            }
            Regex::Optional(inner) => {
                group(inner, f)?;
                f.write_str("?")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, Path};

    fn p(names: &[&str]) -> Path {
        path_of(names)
    }

    #[test]
    fn literals_match_exactly_themselves() {
        let r = Regex::literal(&p(&["a", "b", "c"]));
        assert!(r.matches(&p(&["a", "b", "c"])));
        assert!(!r.matches(&p(&["a", "b"])));
        assert!(!r.matches(&p(&["a", "b", "c", "c"])));
        assert!(!r.matches(&Path::empty()));
    }

    #[test]
    fn epsilon_matches_only_the_empty_word() {
        assert!(Regex::Epsilon.matches(&Path::empty()));
        assert!(!Regex::Epsilon.matches(&p(&["a"])));
        assert!(Regex::literal(&Path::empty()).matches(&Path::empty()));
    }

    #[test]
    fn empty_matches_nothing() {
        assert!(!Regex::Empty.matches(&Path::empty()));
        assert!(!Regex::Empty.matches(&p(&["a"])));
        assert!(!Regex::Empty.nullable());
    }

    #[test]
    fn wildcard_matches_any_single_atom() {
        assert!(Regex::AnyAtom.matches(&p(&["a"])));
        assert!(Regex::AnyAtom.matches(&p(&["zzz"])));
        assert!(!Regex::AnyAtom.matches(&Path::empty()));
        assert!(!Regex::AnyAtom.matches(&p(&["a", "b"])));
    }

    #[test]
    fn star_matches_all_repetition_counts() {
        let r = Regex::atom("a").star();
        for n in 0..6 {
            assert!(r.matches(&seqdl_core::repeat_path("a", n)), "a^{n}");
        }
        assert!(!r.matches(&p(&["a", "b"])));
    }

    #[test]
    fn plus_requires_at_least_one() {
        let r = Regex::atom("a").plus();
        assert!(!r.matches(&Path::empty()));
        assert!(r.matches(&p(&["a"])));
        assert!(r.matches(&p(&["a", "a", "a"])));
    }

    #[test]
    fn optional_matches_zero_or_one() {
        let r = Regex::atom("a").optional();
        assert!(r.matches(&Path::empty()));
        assert!(r.matches(&p(&["a"])));
        assert!(!r.matches(&p(&["a", "a"])));
    }

    #[test]
    fn alternation_and_concatenation_combine() {
        // a (b|c)+
        let r = Regex::atom("a").then(Regex::atom("b").or(Regex::atom("c")).plus());
        assert!(r.matches(&p(&["a", "b"])));
        assert!(r.matches(&p(&["a", "c", "b", "c"])));
        assert!(!r.matches(&p(&["a"])));
        assert!(!r.matches(&p(&["b", "c"])));
    }

    #[test]
    fn nullable_star_inner_does_not_loop() {
        // (a?)* is nullable and must not send the matcher into infinite recursion.
        let r = Regex::atom("a").optional().star();
        assert!(r.matches(&Path::empty()));
        assert!(r.matches(&p(&["a", "a"])));
        assert!(!r.matches(&p(&["b"])));
    }

    #[test]
    fn contains_wraps_with_wildcards() {
        let r = Regex::literal(&p(&["b", "c"])).contains();
        assert!(r.matches(&p(&["a", "b", "c", "d"])));
        assert!(r.matches(&p(&["b", "c"])));
        assert!(!r.matches(&p(&["b", "d", "c"])));
    }

    #[test]
    fn packed_values_never_match() {
        let packed = Path::singleton(seqdl_core::Value::packed(p(&["a"])));
        assert!(!Regex::AnyAtom.matches(&packed));
        assert!(!Regex::atom("a").matches(&packed));
        assert_eq!(Regex::literal(&packed), Regex::Empty);
    }

    #[test]
    fn nullability_is_computed_structurally() {
        assert!(Regex::atom("a").star().nullable());
        assert!(!Regex::atom("a").plus().nullable());
        assert!(Regex::atom("a").optional().nullable());
        assert!(Regex::Epsilon.then(Regex::atom("a").star()).nullable());
        assert!(!Regex::Epsilon.then(Regex::atom("a")).nullable());
        assert!(Regex::atom("a").or(Regex::Epsilon).nullable());
    }

    #[test]
    fn alphabet_collects_mentioned_atoms() {
        let r = Regex::atom("a")
            .then(Regex::atom("b").or(Regex::atom("a")))
            .star();
        let names: Vec<String> = r.alphabet().iter().map(|a| a.name().to_string()).collect();
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn display_is_reparseable_shape() {
        let r = Regex::atom("a").then(Regex::atom("b").or(Regex::atom("c")).star());
        let shown = r.to_string();
        assert!(shown.contains('a'));
        assert!(shown.contains('|'));
        assert!(shown.contains('*'));
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Regex::atom("a").size(), 1);
        assert_eq!(Regex::atom("a").star().size(), 2);
        assert_eq!(Regex::atom("a").then(Regex::atom("b")).size(), 3);
    }
}
