//! Demand-driven (magic-set) query transformation.
//!
//! Given a program and a *goal* pattern such as `Reach(a·b·$x)`, [`magic`]
//! rewrites the program so that bottom-up evaluation only derives facts
//! *demanded* by the goal, instead of materialising the whole model:
//!
//! 1. the goal is **adorned** ([`seqdl_syntax::Adornment`]): a column is bound
//!    when the goal fixes the first value of its path — the same granularity
//!    the storage layer's column index keys on;
//! 2. every demanded IDB relation `P` gets, per adornment `α`, an **adorned
//!    copy** `P__m_α` whose rules are the original rules with (a) a *magic
//!    guard* `magic_P_α(…)` prepended where the head structure allows it and
//!    (b) positive IDB body atoms renamed to their own adorned copies;
//! 3. **magic rules** derive demand sideways: for each IDB subgoal, the guard
//!    plus the body prefix before the subgoal (in the body planner's order)
//!    implies a magic fact for that subgoal's bound first values;
//! 4. the goal's own bound first values become **seed facts** for the goal
//!    relation's magic predicate; the caller injects them with the engine's or
//!    executor's `run_seeded` entry points and reads answers from
//!    [`MagicProgram::answer`], filtered through [`goal_matches`].
//!
//! Negation is handled conservatively: a relation read under negation must be
//! complete, so every such relation — and, transitively, everything it reads —
//! is evaluated *in full* under its original name, in its original stratum.
//! The adorned rules form one final stratum; they only negate original
//! relations, which are defined strictly earlier, so the rewritten program
//! passes the same safety and stratification analyses as the input (this is
//! checked before returning).

use crate::error::RewriteError;
use seqdl_core::{Fact, Instance, Path, RelName, Tuple, Value};
use seqdl_engine::matching::predicate_matches;
use seqdl_syntax::analysis::{check_safety, check_stratification};
use seqdl_syntax::{
    first_value_expr, guard_exprs, parse_rule, sip_order, Adornment, Atom, Literal, Predicate,
    Program, Rule, Stratum, Term, Var,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The result of the magic-set transformation: the rewritten program, the
/// demand seed facts, and where to read the goal's answers.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The rewritten (adorned + magic) program.
    pub program: Program,
    /// Seed facts for the goal's magic predicate — the goal's bound first
    /// values.  Inject with `Engine::run_seeded` / `Executor::run_seeded`.
    pub seeds: Vec<Fact>,
    /// The relation holding the goal's candidate answers (the goal relation's
    /// adorned copy).  Filter its tuples through [`goal_matches`].
    pub answer: RelName,
    /// The goal pattern itself.
    pub goal: Predicate,
}

impl MagicProgram {
    /// The goal answers in `result`: the tuples of the answer relation that
    /// match the goal pattern, as a sorted set.
    pub fn answers(&self, result: &Instance) -> BTreeSet<Tuple> {
        result
            .relation(self.answer)
            .map(|rel| {
                rel.iter()
                    .filter(|t| goal_matches(&self.goal, t))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Parse a goal pattern like `Reach(a·b·$x)?` (the trailing `?` and `.` are
/// optional).
///
/// # Errors
/// [`RewriteError::BadGoal`] when the text is not a single predicate pattern.
pub fn parse_goal(text: &str) -> Result<Predicate, RewriteError> {
    let trimmed = text.trim().trim_end_matches('?').trim_end_matches('.');
    let rule = parse_rule(&format!("{trimmed}.")).map_err(|e| RewriteError::BadGoal {
        message: format!("cannot parse goal `{text}`: {e}"),
    })?;
    if !rule.body.is_empty() {
        return Err(RewriteError::BadGoal {
            message: format!("goal `{text}` must be a single predicate pattern, not a rule"),
        });
    }
    Ok(rule.head)
}

/// Does `tuple` match the goal pattern (under some assignment of the goal's
/// variables)?  Decides existence only — the matcher short-circuits at the
/// first match and never clones or collects a valuation.
pub fn goal_matches(goal: &Predicate, tuple: &[Path]) -> bool {
    predicate_matches(goal, tuple, &seqdl_syntax::Valuation::new())
}

fn adorned_name(relation: RelName, adornment: &Adornment) -> RelName {
    let letters = adornment.letters();
    if letters.is_empty() {
        RelName::new(&format!("{}__m", relation.name()))
    } else {
        RelName::new(&format!("{}__m_{}", relation.name(), letters))
    }
}

fn magic_name(relation: RelName, adornment: &Adornment) -> RelName {
    RelName::new(&format!(
        "magic_{}_{}",
        relation.name(),
        adornment.letters()
    ))
}

/// The ground first *value* of a goal argument expression, for seeding.
fn seed_value(arg: &seqdl_syntax::PathExpr) -> Option<Value> {
    match arg.terms().first() {
        Some(Term::Const(a)) => Some(Value::Atom(*a)),
        Some(Term::Packed(inner)) => inner.as_path().map(Value::packed),
        _ => None,
    }
}

/// Rewrite `program` for demand-driven evaluation of `goal`.
///
/// The returned program, seeded with [`MagicProgram::seeds`], derives — for
/// the answer relation — exactly the facts of the original program's goal
/// relation that match the goal's demand, so
/// `magic(P, g).answers(run_seeded(…)) == { t ∈ full_run(P)[g.relation] | t
/// matches g }` (the differential property the test-suite pins down).
///
/// # Errors
/// [`RewriteError::BadGoal`] when the goal relation is not an IDB relation of
/// the program or its arity disagrees; [`RewriteError::MagicInvariant`] if the
/// rewritten program ever failed the safety or stratification analyses (a bug
/// guard, not an expected outcome).
pub fn magic(program: &Program, goal: &Predicate) -> Result<MagicProgram, RewriteError> {
    let arities = program
        .relation_arities()
        .map_err(|e| RewriteError::BadGoal {
            message: format!("program is ill-formed: {e}"),
        })?;
    let idb = program.idb_relations();
    if !idb.contains(&goal.relation) {
        return Err(RewriteError::BadGoal {
            message: format!(
                "goal relation {} is not an IDB relation of the program",
                goal.relation
            ),
        });
    }
    if arities.get(&goal.relation) != Some(&goal.arity()) {
        return Err(RewriteError::BadGoal {
            message: format!(
                "goal {} has arity {} but the program uses {} with arity {}",
                goal,
                goal.arity(),
                goal.relation,
                arities[&goal.relation]
            ),
        });
    }

    // Rules grouped by head relation, remembering the declared stratum.
    let mut rules_of: BTreeMap<RelName, Vec<(usize, &Rule)>> = BTreeMap::new();
    for (stratum_ix, stratum) in program.strata.iter().enumerate() {
        for rule in &stratum.rules {
            rules_of
                .entry(rule.head.relation)
                .or_default()
                .push((stratum_ix, rule));
        }
    }

    // Pass 1 — the *full* set: IDB relations the goal's rule subtree reads
    // under negation, closed under everything their own rules read.  These
    // must stay complete, so they keep their original names and strata, and
    // demanded rules read them in place (no adorned copy, no double
    // evaluation).
    let closure = |seeds: Vec<RelName>| -> BTreeSet<RelName> {
        let mut out: BTreeSet<RelName> = BTreeSet::new();
        let mut stack = seeds;
        while let Some(r) = stack.pop() {
            if !out.insert(r) {
                continue;
            }
            for (_, rule) in rules_of.get(&r).into_iter().flatten() {
                for body_rel in rule.body_relations() {
                    if idb.contains(&body_rel) && !out.contains(&body_rel) {
                        stack.push(body_rel);
                    }
                }
            }
        }
        out
    };
    let reachable = closure(vec![goal.relation]);
    let full = closure(
        reachable
            .iter()
            .flat_map(|r| rules_of.get(r).into_iter().flatten())
            .flat_map(|(_, rule)| rule.negative_body_predicates())
            .map(|p| p.relation)
            .filter(|r| idb.contains(r))
            .collect(),
    );

    // A goal relation that must itself stay complete gets no adorned copy at
    // all: the rewritten program is just the full portion, answered from the
    // original relation (demand could not have restricted it anyway).
    if full.contains(&goal.relation) {
        let strata: Vec<Stratum> = program
            .strata
            .iter()
            .map(|s| {
                Stratum::new(
                    s.rules
                        .iter()
                        .filter(|r| full.contains(&r.head.relation))
                        .cloned()
                        .collect(),
                )
            })
            .filter(|s| !s.rules.is_empty())
            .collect();
        return Ok(MagicProgram {
            program: Program::new(strata),
            seeds: Vec::new(),
            answer: goal.relation,
            goal: goal.clone(),
        });
    }

    // Pass 2 — the adornment worklist over the demanded portion.
    let goal_adornment = Adornment::of_goal(goal);
    let mut demanded: BTreeSet<(RelName, Adornment)> = BTreeSet::new();
    let mut queue: VecDeque<(RelName, Adornment)> = VecDeque::new();
    demanded.insert((goal.relation, goal_adornment.clone()));
    queue.push_back((goal.relation, goal_adornment.clone()));

    let mut adorned_rules: Vec<Rule> = Vec::new();
    let mut magic_rules: Vec<Rule> = Vec::new();
    let mut generated: BTreeSet<RelName> = BTreeSet::new();

    while let Some((relation, adornment)) = queue.pop_front() {
        generated.insert(adorned_name(relation, &adornment));
        if !adornment.is_all_free() {
            generated.insert(magic_name(relation, &adornment));
        }
        for (_, rule) in rules_of.get(&relation).into_iter().flatten() {
            // The magic guard, where the head structure allows one.  A rule
            // whose bound head columns start with path variables (or ε) cannot
            // be guarded and runs unrestricted — sound, just less selective.
            let guard: Option<Predicate> = if adornment.is_all_free() {
                None
            } else {
                guard_exprs(&rule.head, &adornment)
                    .map(|exprs| Predicate::new(magic_name(relation, &adornment), exprs))
            };
            let mut seed_bound: BTreeSet<Var> = BTreeSet::new();
            if let Some(g) = &guard {
                seed_bound.extend(g.vars());
            }
            let sip = sip_order(rule, &seed_bound);
            let mut sip_at: BTreeMap<usize, &Adornment> = BTreeMap::new();
            for step in &sip {
                sip_at.insert(step.body_index, &step.adornment);
            }

            let mut new_body: Vec<Literal> = guard.iter().cloned().map(Literal::pred).collect();
            // The body prefix (guard + earlier positive predicates, already
            // renamed) that implies demand for each subgoal.
            let mut prefix: Vec<Literal> = new_body.clone();
            for (body_index, lit) in rule.body.iter().enumerate() {
                let pred = lit.atom.as_predicate();
                match pred {
                    Some(q) if lit.positive && full.contains(&q.relation) => {
                        // A complete relation is read in place — its original
                        // rules are included below, so no adorned copy and no
                        // demand machinery are needed.
                        let _ = q;
                        new_body.push(lit.clone());
                        prefix.push(lit.clone());
                    }
                    Some(q) if lit.positive && idb.contains(&q.relation) => {
                        let beta = sip_at[&body_index];
                        if demanded.insert((q.relation, beta.clone())) {
                            queue.push_back((q.relation, beta.clone()));
                        }
                        let renamed =
                            Predicate::new(adorned_name(q.relation, beta), q.args.clone());
                        if !beta.is_all_free() {
                            // Demand rule: the prefix implies the subgoal's
                            // bound first values.  Bound columns have a first-
                            // value expression by construction of the adornment.
                            let bound_now: BTreeSet<Var> =
                                prefix.iter().flat_map(Literal::vars).collect();
                            let head_args: Vec<seqdl_syntax::PathExpr> = q
                                .args
                                .iter()
                                .zip(beta.columns())
                                .filter(|(_, c)| **c == seqdl_syntax::ColumnBinding::Bound)
                                .map(|(arg, _)| {
                                    first_value_expr(arg, &bound_now)
                                        .expect("bound columns have a first value")
                                })
                                .collect();
                            let head = Predicate::new(magic_name(q.relation, beta), head_args);
                            // Skip the degenerate self-implication `m(x) <- m(x).`
                            let trivial = prefix.len() == 1
                                && prefix[0].positive
                                && prefix[0].atom == Atom::Pred(head.clone());
                            if !trivial {
                                magic_rules.push(Rule::new(head, prefix.clone()));
                            }
                        }
                        new_body.push(Literal::pred(renamed.clone()));
                        prefix.push(Literal::pred(renamed));
                    }
                    Some(q) if lit.positive => {
                        // EDB predicates keep their names and join the prefix.
                        let _ = q;
                        new_body.push(lit.clone());
                        prefix.push(lit.clone());
                    }
                    Some(q) if idb.contains(&q.relation) => {
                        // A negated IDB atom reads the complete relation; pass
                        // 1 already placed it (and its reads) in `full`.
                        debug_assert!(full.contains(&q.relation));
                        let _ = q;
                        new_body.push(lit.clone());
                    }
                    _ => {
                        // Negated EDB atoms and (non)equations pass through.
                        // They are not part of the prefix: the planner orders
                        // them after every predicate, so their bindings are
                        // never available to a predicate probe.
                        new_body.push(lit.clone());
                    }
                }
            }
            adorned_rules.push(Rule::new(
                Predicate::new(adorned_name(relation, &adornment), rule.head.args.clone()),
                new_body,
            ));
        }
    }

    // Assemble: the full portion keeps its original strata (and order), the
    // magic + adorned rules form one final stratum.  Adorned rules only negate
    // original relations, which are defined strictly earlier, so declared-
    // stratum stratification is preserved.
    let mut strata: Vec<Stratum> = Vec::new();
    for stratum in &program.strata {
        let kept: Vec<Rule> = stratum
            .rules
            .iter()
            .filter(|r| full.contains(&r.head.relation))
            .cloned()
            .collect();
        if !kept.is_empty() {
            strata.push(Stratum::new(kept));
        }
    }
    let mut last = magic_rules;
    last.extend(adorned_rules);
    strata.push(Stratum::new(last));
    let rewritten = Program::new(strata);

    // A user relation literally named like a generated one would conflate
    // demand facts with data — refuse instead of silently merging.
    let original = program.all_relations();
    if let Some(clash) = generated.iter().find(|n| original.contains(n)) {
        return Err(RewriteError::BadGoal {
            message: format!(
                "the program already uses relation {clash}, which goal-directed \
                 evaluation needs for its rewrite; rename that relation to query this goal"
            ),
        });
    }

    // Validate against the paper's analyses: the construction must preserve
    // rule safety and stratified negation.
    check_safety(&rewritten).map_err(|e| RewriteError::MagicInvariant {
        message: format!("magic rewrite produced an unsafe rule: {e}"),
    })?;
    check_stratification(&rewritten).map_err(|e| RewriteError::MagicInvariant {
        message: format!("magic rewrite broke stratification: {e}"),
    })?;

    // Seeds: the goal's bound first values, one column per bound goal column.
    let mut seeds = Vec::new();
    if !goal_adornment.is_all_free() {
        let tuple: Tuple = goal
            .args
            .iter()
            .zip(goal_adornment.columns())
            .filter(|(_, c)| **c == seqdl_syntax::ColumnBinding::Bound)
            .map(|(arg, _)| {
                Path::singleton(seed_value(arg).expect("bound goal columns have a ground prefix"))
            })
            .collect();
        seeds.push(Fact::new(magic_name(goal.relation, &goal_adornment), tuple));
    }

    Ok(MagicProgram {
        program: rewritten,
        seeds,
        answer: adorned_name(goal.relation, &goal_adornment),
        goal: goal.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, rel};
    use seqdl_engine::Engine;
    use seqdl_syntax::parse_program;

    fn graph(edges: &[(&str, &str)]) -> Instance {
        let mut input = Instance::new();
        for (x, y) in edges {
            input
                .insert_fact(Fact::new(rel("R"), vec![path_of(&[x, y])]))
                .unwrap();
        }
        input
    }

    fn reachability() -> Program {
        parse_program("T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).").unwrap()
    }

    #[test]
    fn goal_parsing_accepts_question_marks() {
        let g = parse_goal("Reach(a·b·$x)?").unwrap();
        assert_eq!(g.relation, rel("Reach"));
        assert_eq!(g.arity(), 1);
        assert!(parse_goal("T($x) <- R($x)").is_err());
        assert!(parse_goal("not a goal at all (").is_err());
    }

    #[test]
    fn reachability_rewrite_has_guards_and_seed() {
        let program = reachability();
        let goal = parse_goal("T(a·$y)").unwrap();
        let mp = magic(&program, &goal).unwrap();
        assert_eq!(mp.seeds.len(), 1);
        assert_eq!(mp.seeds[0].relation, rel("magic_T_b"));
        assert_eq!(mp.seeds[0].tuple, vec![path_of(&["a"])]);
        assert_eq!(mp.answer, rel("T__m_b"));
        let text = mp.program.to_string();
        assert!(text.contains("magic_T_b(@x)"), "{text}");
        // The trivial self-implication magic rule is skipped.
        assert!(!text.contains("magic_T_b(@x) <- magic_T_b(@x)."), "{text}");
    }

    #[test]
    fn seeded_query_equals_full_run_filtered() {
        let program = reachability();
        let input = graph(&[("a", "b"), ("b", "c"), ("c", "d"), ("x", "y"), ("y", "x")]);
        let goal = parse_goal("T(a·$y)").unwrap();
        let mp = magic(&program, &goal).unwrap();

        let engine = Engine::new();
        let full = engine.run(&program, &input).unwrap();
        let expected: BTreeSet<Tuple> = full
            .relation(rel("T"))
            .unwrap()
            .iter()
            .filter(|t| goal_matches(&goal, t))
            .cloned()
            .collect();
        let demanded = engine.run_seeded(&mp.program, &input, &mp.seeds).unwrap();
        assert_eq!(mp.answers(&demanded), expected);
        assert_eq!(expected.len(), 3, "a reaches b, c, d");
        // Demand really restricts: the x/y cycle is never derived.
        assert!(demanded
            .relation(mp.answer)
            .unwrap()
            .iter()
            .all(|t| t[0].values().first() == Some(&Value::atom("a"))));
    }

    #[test]
    fn point_goals_filter_to_exact_tuples() {
        let program = reachability();
        let input = graph(&[("a", "b"), ("b", "c")]);
        let goal = parse_goal("T(a·c)").unwrap();
        let mp = magic(&program, &goal).unwrap();
        let out = Engine::new()
            .run_seeded(&mp.program, &input, &mp.seeds)
            .unwrap();
        let answers = mp.answers(&out);
        assert_eq!(answers, BTreeSet::from([vec![path_of(&["a", "c"])]]));
    }

    #[test]
    fn all_free_goals_still_prune_unreachable_rules() {
        // U's rules are not demanded by a goal on S.
        let program =
            parse_program("S($x) <- R($x).\nU($x·$x) <- R($x).\nV($x) <- U($x·$x).").unwrap();
        let goal = parse_goal("S($x)").unwrap();
        let mp = magic(&program, &goal).unwrap();
        assert!(mp.seeds.is_empty());
        assert_eq!(mp.program.rule_count(), 1);
        let input = Instance::unary(rel("R"), [path_of(&["a"]), path_of(&["b"])]);
        let out = Engine::new()
            .run_seeded(&mp.program, &input, &mp.seeds)
            .unwrap();
        assert_eq!(mp.answers(&out).len(), 2);
        assert!(out.relation(rel("U")).is_none());
    }

    #[test]
    fn negated_relations_are_kept_complete() {
        let program =
            parse_program("W(@x·@y) <- R(@x·@y), G(@y).\n---\nS(@x·@y) <- R(@x·@y), !W(@x·@y).")
                .unwrap();
        let goal = parse_goal("S(a·$y)").unwrap();
        let mp = magic(&program, &goal).unwrap();
        // W stays under its original name in an earlier stratum.
        assert!(mp
            .program
            .to_string()
            .contains("W(@x·@y) <- R(@x·@y), G(@y)."));
        let mut input = graph(&[("a", "b"), ("a", "c"), ("b", "c")]);
        input
            .insert_fact(Fact::new(rel("G"), vec![path_of(&["b"])]))
            .unwrap();
        let full = Engine::new().run(&program, &input).unwrap();
        let expected: BTreeSet<Tuple> = full
            .relation(rel("S"))
            .unwrap()
            .iter()
            .filter(|t| goal_matches(&goal, t))
            .cloned()
            .collect();
        let out = Engine::new()
            .run_seeded(&mp.program, &input, &mp.seeds)
            .unwrap();
        assert_eq!(mp.answers(&out), expected);
        assert_eq!(expected, BTreeSet::from([vec![path_of(&["a", "c"])]]));
    }

    #[test]
    fn complete_relations_are_read_in_place_not_copied() {
        // W is negated by S, so W stays complete; V reads W *positively* from
        // a demanded rule — the rewrite must read the original W, not spin up
        // an adorned copy of its rule subtree.
        let program = parse_program(
            "W(@x·@y) <- R(@x·@y), G(@y).\n---\n\
             S(@x·@y) <- R(@x·@y), W(@x·@y), !W(@y·@x).",
        )
        .unwrap();
        let goal = parse_goal("S(a·$y)").unwrap();
        let mp = magic(&program, &goal).unwrap();
        let text = mp.program.to_string();
        assert!(!text.contains("W__m"), "no adorned copy of W:\n{text}");
        assert!(
            !text.contains("magic_W"),
            "no demand machinery for W:\n{text}"
        );
        // W's single original rule appears exactly once.
        assert_eq!(text.matches("W(@x·@y) <- R(@x·@y), G(@y).").count(), 1);

        let mut input = graph(&[("a", "b"), ("b", "a"), ("a", "c")]);
        for g in ["a", "b"] {
            input
                .insert_fact(Fact::new(rel("G"), vec![path_of(&[g])]))
                .unwrap();
        }
        let full = Engine::new().run(&program, &input).unwrap();
        let expected: BTreeSet<Tuple> = full
            .relation(rel("S"))
            .unwrap()
            .iter()
            .filter(|t| goal_matches(&goal, t))
            .cloned()
            .collect();
        let out = Engine::new()
            .run_seeded(&mp.program, &input, &mp.seeds)
            .unwrap();
        assert_eq!(mp.answers(&out), expected);
    }

    #[test]
    fn goals_on_complete_relations_fall_back_to_the_full_portion() {
        // The goal's own subtree negates B, and B reads the goal relation
        // back, so V lands in the full set: demand cannot restrict it, and
        // the rewrite degrades to the full portion answered from the
        // original relation.
        let program = parse_program("B($x) <- V($x·a).\n---\nV($x) <- R($x), !B($x).").unwrap();
        let goal = parse_goal("V(a·$y)").unwrap();
        let mp = magic(&program, &goal).unwrap();
        assert_eq!(mp.answer, rel("V"));
        assert!(mp.seeds.is_empty());
        let input = Instance::unary(rel("R"), [path_of(&["a", "b"]), path_of(&["c"])]);
        let full = Engine::new().run(&program, &input).unwrap();
        let expected: BTreeSet<Tuple> = full
            .relation(rel("V"))
            .unwrap()
            .iter()
            .filter(|t| goal_matches(&goal, t))
            .cloned()
            .collect();
        let out = Engine::new()
            .run_seeded(&mp.program, &input, &mp.seeds)
            .unwrap();
        assert_eq!(mp.answers(&out), expected);
        assert_eq!(expected, BTreeSet::from([vec![path_of(&["a", "b"])]]));
    }

    #[test]
    fn packed_goal_prefixes_seed_packed_values() {
        let program = parse_program("T(<a·b>·$x) <- R($x).").unwrap();
        let goal = parse_goal("T(<a·b>·$y)").unwrap();
        let mp = magic(&program, &goal).unwrap();
        assert_eq!(mp.seeds.len(), 1);
        assert_eq!(
            mp.seeds[0].tuple,
            vec![Path::singleton(Value::packed(path_of(&["a", "b"])))]
        );
        let input = Instance::unary(rel("R"), [path_of(&["c"])]);
        let out = Engine::new()
            .run_seeded(&mp.program, &input, &mp.seeds)
            .unwrap();
        assert_eq!(mp.answers(&out).len(), 1);
    }

    #[test]
    fn bad_goals_are_reported() {
        let program = reachability();
        // EDB relation.
        let err = magic(&program, &parse_goal("R(a·$x)").unwrap()).unwrap_err();
        assert!(err.to_string().contains("not an IDB relation"), "{err}");
        // Unknown relation.
        let err = magic(&program, &parse_goal("Nope($x)").unwrap()).unwrap_err();
        assert!(err.to_string().contains("not an IDB relation"), "{err}");
        // Arity mismatch.
        let err = magic(&program, &parse_goal("T($x, $y)").unwrap()).unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
    }

    #[test]
    fn colliding_generated_names_are_refused() {
        // A user relation named like the rewrite's magic predicate would
        // conflate demand with data; the transformation refuses instead.
        let program = parse_program("T(@x·@y) <- R(@x·@y).\nmagic_T_b($x) <- R($x).").unwrap();
        let err = magic(&program, &parse_goal("T(a·$y)").unwrap()).unwrap_err();
        assert!(err.to_string().contains("magic_T_b"), "{err}");
        let program = parse_program("T(@x·@y) <- R(@x·@y).\nT__m_b($x) <- R($x).").unwrap();
        let err = magic(&program, &parse_goal("T(a·$y)").unwrap()).unwrap_err();
        assert!(err.to_string().contains("T__m_b"), "{err}");
    }

    #[test]
    fn rewritten_programs_pass_the_static_analyses() {
        let program = parse_program(
            "P($x) <- R($x·a).\nP($x) <- Q($x·b).\nQ($x) <- P($x·a).\nQ($x) <- R($x).\n---\n\
             S($x) <- Q($x), !P($x).",
        )
        .unwrap();
        let goal = parse_goal("S(x0·$y)").unwrap();
        let mp = magic(&program, &goal).unwrap();
        assert!(check_safety(&mp.program).is_ok());
        assert!(check_stratification(&mp.program).is_ok());
    }
}
