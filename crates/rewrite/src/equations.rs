//! Equation elimination (Example 4.4, Lemma 4.5, Theorem 4.7).
//!
//! * Positive equations are eliminated by introducing an auxiliary intermediate
//!   predicate holding the value of one side of the equation, and re-matching it
//!   against the other side (Example 4.4).
//! * Negated equations cannot be handled the same way inside recursive strata
//!   without breaking stratification; Lemma 4.5 instead inserts a *new stratum*
//!   before each stratum with negated equations, containing renamed copies of its
//!   rules plus auxiliary relations that collect the variable bindings under which
//!   some equation *does* hold; the original stratum then negates those relations.

use crate::error::RewriteError;
use seqdl_core::RelName;
use seqdl_syntax::{
    analysis::limited_vars, Atom, Equation, Literal, PathExpr, Predicate, Program, Rule, Stratum,
    Var,
};
use std::collections::{BTreeMap, BTreeSet};

/// Eliminate all **positive** equations from the program by introducing auxiliary
/// intermediate predicates (Example 4.4; the general construction behind Lemma 3.4
/// of the conference version).
///
/// The output uses the I and A features but no positive equations; negated
/// equations are left untouched.
///
/// # Errors
/// [`RewriteError::IterationLimit`] if the rewrite does not converge (cannot happen
/// for safe rules).
pub fn eliminate_positive_equations(program: &Program) -> Result<Program, RewriteError> {
    let mut current = program.clone();
    // Each pass eliminates one positive equation from one rule; iterate to fixpoint.
    for _ in 0..10_000 {
        let Some((stratum_ix, rule_ix)) = find_rule_with_positive_equation(&current) else {
            return Ok(current);
        };
        let rule = current.strata[stratum_ix].rules[rule_ix].clone();
        let (t_rule, call_rule) = split_positive_equation(&rule)?;
        let stratum = &mut current.strata[stratum_ix];
        stratum.rules[rule_ix] = call_rule;
        stratum.rules.insert(rule_ix, t_rule);
    }
    Err(RewriteError::IterationLimit {
        rewrite: "positive-equation elimination",
    })
}

fn find_rule_with_positive_equation(program: &Program) -> Option<(usize, usize)> {
    for (si, stratum) in program.strata.iter().enumerate() {
        for (ri, rule) in stratum.rules.iter().enumerate() {
            if !rule.positive_body_equations().is_empty() {
                return Some((si, ri));
            }
        }
    }
    None
}

/// Split one positive equation out of `rule`, producing the auxiliary `T` rule and
/// the rewritten calling rule (Example 4.4).
fn split_positive_equation(rule: &Rule) -> Result<(Rule, Rule), RewriteError> {
    // Pick an equation such that one side is limited by the rest of the body; orient
    // it so that `e_def` (stored in the auxiliary relation) is that side.  Prefer an
    // equation whose removal leaves the remaining body self-contained (all its
    // variables still limited), so the auxiliary rule is safe; such an equation (the
    // "last" one in the limited-variable fixpoint order) always exists, but we fall
    // back to the weaker condition for robustness.
    let equations: Vec<Equation> = rule
        .positive_body_equations()
        .into_iter()
        .cloned()
        .collect();
    for require_safe_rest in [true, false] {
        if let Some(result) = try_split(rule, &equations, require_safe_rest) {
            return Ok(result);
        }
    }
    // For a safe rule, some equation always has a side limited by the rest of the
    // body (the limited-variable fixpoint provides the order).
    Err(RewriteError::IterationLimit {
        rewrite: "positive-equation elimination (no orientable equation; rule unsafe?)",
    })
}

fn try_split(rule: &Rule, equations: &[Equation], require_safe_rest: bool) -> Option<(Rule, Rule)> {
    for eq in equations.iter() {
        // The positive part of the body without (one occurrence of) this equation.
        // Negated literals must *not* move into the auxiliary rule: their variables
        // may be limited only by the equation being eliminated, which would leave
        // the auxiliary rule unsafe.  They stay in the calling rule, where the
        // auxiliary predicate limits those variables again.
        let mut removed = false;
        let defining_body: Vec<Literal> = rule
            .body
            .iter()
            .filter(|lit| {
                if !lit.positive {
                    return false;
                }
                if !removed {
                    if let Atom::Eq(e) = &lit.atom {
                        if e == eq {
                            removed = true;
                            return false;
                        }
                    }
                }
                true
            })
            .cloned()
            .collect();
        let negative_body: Vec<Literal> = rule
            .body
            .iter()
            .filter(|lit| !lit.positive)
            .cloned()
            .collect();
        let defining_rule = Rule::new(rule.head.clone(), defining_body.clone());
        let limited = limited_vars(&defining_rule);
        if require_safe_rest {
            let defining_vars: BTreeSet<Var> =
                defining_body.iter().flat_map(|l| l.vars()).collect();
            if !defining_vars.iter().all(|v| limited.contains(v)) {
                continue;
            }
        }
        let lhs_ok = eq.lhs.vars().iter().all(|v| limited.contains(v));
        let rhs_ok = eq.rhs.vars().iter().all(|v| limited.contains(v));
        let (e_def, e_call) = if lhs_ok {
            (eq.lhs.clone(), eq.rhs.clone())
        } else if rhs_ok {
            (eq.rhs.clone(), eq.lhs.clone())
        } else {
            continue;
        };
        // Variables of the defining body, passed through the auxiliary relation.
        let body_vars: Vec<Var> = {
            let mut out = Vec::new();
            for lit in &defining_body {
                for v in lit.vars() {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            out
        };
        let t_rel = RelName::fresh("EqAux");
        let mut t_args = vec![e_def];
        t_args.extend(body_vars.iter().map(|v| PathExpr::var(*v)));
        let t_rule = Rule::new(Predicate::new(t_rel, t_args), defining_body);

        let mut call_args = vec![e_call];
        call_args.extend(body_vars.iter().map(|v| PathExpr::var(*v)));
        let mut call_body = vec![Literal::pred(Predicate::new(t_rel, call_args))];
        call_body.extend(negative_body);
        let call_rule = Rule::new(rule.head.clone(), call_body);
        return Some((t_rule, call_rule));
    }
    None
}

/// Eliminate all **negated** equations from the program (Lemma 4.5), leaving only
/// positive equations.
pub fn eliminate_negated_equations(program: &Program) -> Program {
    let mut new_strata: Vec<Stratum> = Vec::new();
    for stratum in &program.strata {
        let has_negated_equations = stratum
            .rules
            .iter()
            .any(|r| !r.negative_body_equations().is_empty());
        if !has_negated_equations {
            new_strata.push(stratum.clone());
            continue;
        }

        // Renaming ρ: head relation names of this stratum get fresh names; relation
        // names occurring only in bodies map to themselves.
        let heads = stratum.head_relations();
        let rho: BTreeMap<RelName, RelName> = heads
            .iter()
            .map(|r| (*r, RelName::fresh(&format!("{}Pre", r.name()))))
            .collect();
        let rename_pred = |p: &Predicate| Predicate {
            relation: rho.get(&p.relation).copied().unwrap_or(p.relation),
            args: p.args.clone(),
        };
        let rename_rule = |r: &Rule| -> Rule {
            Rule::new(
                rename_pred(&r.head),
                r.body
                    .iter()
                    .map(|lit| match &lit.atom {
                        Atom::Pred(p) => Literal {
                            positive: lit.positive,
                            atom: Atom::Pred(rename_pred(p)),
                        },
                        Atom::Eq(_) => lit.clone(),
                    })
                    .collect(),
            )
        };

        let mut pre_stratum = Vec::new();
        let mut main_stratum = Vec::new();
        for rule in &stratum.rules {
            let negated_eqs: Vec<Equation> = rule
                .negative_body_equations()
                .into_iter()
                .cloned()
                .collect();
            // The rule body with negated equations removed.
            let body_without_neq: Vec<Literal> = rule
                .body
                .iter()
                .filter(|l| l.positive || !l.is_equation())
                .cloned()
                .collect();
            let stripped = Rule::new(rule.head.clone(), body_without_neq.clone());

            // ρ(H) ← ρ(B) goes to the new stratum in every case.
            pre_stratum.push(rename_rule(&stripped));

            if negated_eqs.is_empty() {
                main_stratum.push(rule.clone());
                continue;
            }

            // Variables appearing in B (the body without the negated equations).
            let body_vars: Vec<Var> = {
                let mut out = Vec::new();
                for lit in &body_without_neq {
                    for v in lit.vars() {
                        if !out.contains(&v) {
                            out.push(v);
                        }
                    }
                }
                out
            };
            let t_rel = RelName::fresh("NeqAux");
            let t_args: Vec<PathExpr> = body_vars.iter().map(|v| PathExpr::var(*v)).collect();
            // One auxiliary rule per negated equation: T(v…) ← ρ(B) ∧ e_i = e'_i.
            for eq in &negated_eqs {
                let mut body = rename_rule(&stripped).body;
                body.push(Literal::eq(eq.lhs.clone(), eq.rhs.clone()));
                pre_stratum.push(Rule::new(Predicate::new(t_rel, t_args.clone()), body));
            }
            // In the original stratum, replace r by H ← B ∧ ¬T(v…).
            let mut body = body_without_neq;
            body.push(Literal::not_pred(Predicate::new(t_rel, t_args)));
            main_stratum.push(Rule::new(rule.head.clone(), body));
        }
        new_strata.push(Stratum::new(pre_stratum));
        new_strata.push(Stratum::new(main_stratum));
    }
    Program::new(new_strata)
}

/// Eliminate the **E** feature entirely (Theorem 4.7): first remove negated
/// equations (Lemma 4.5), then positive equations (Example 4.4).  The result uses
/// intermediate predicates and arity instead; compose with
/// [`crate::eliminate_arity`] to also drop arity.
///
/// # Errors
/// Propagates errors of [`eliminate_positive_equations`].
pub fn eliminate_equations(program: &Program) -> Result<Program, RewriteError> {
    let no_negated = eliminate_negated_equations(program);
    eliminate_positive_equations(&no_negated)
}

/// Collect every relation name negated anywhere in the program (used by tests).
#[allow(dead_code)]
fn negated_relations(program: &Program) -> BTreeSet<RelName> {
    program
        .rules()
        .flat_map(|r| r.negative_body_predicates().into_iter().map(|p| p.relation))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, rel, repeat_path, Instance, Path};
    use seqdl_engine::{run_boolean_query, run_unary_query};
    use seqdl_syntax::{analysis::check_stratification, parse_program, FeatureSet};
    use std::collections::BTreeSet;

    fn only_as_inputs() -> Vec<Instance> {
        vec![
            Instance::unary(rel("R"), [repeat_path("a", 3), path_of(&["a", "b"])]),
            Instance::unary(rel("R"), [Path::empty(), path_of(&["b"])]),
            Instance::unary(rel("R"), []),
        ]
    }

    #[test]
    fn example_4_4_positive_equation_elimination() {
        let program = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        let rewritten = eliminate_positive_equations(&program).unwrap();
        let features = FeatureSet::of_program(&rewritten);
        assert!(!features.equations, "not equation-free: {rewritten}");
        assert!(features.intermediate && features.arity);
        for input in only_as_inputs() {
            assert_eq!(
                run_unary_query(&program, &input, rel("S")).unwrap(),
                run_unary_query(&rewritten, &input, rel("S")).unwrap()
            );
        }
    }

    #[test]
    fn chained_equations_are_eliminated() {
        let program = parse_program("S($z) <- R($x), $y = $x·a, $z = b·$y.").unwrap();
        let rewritten = eliminate_positive_equations(&program).unwrap();
        assert!(!FeatureSet::of_program(&rewritten).equations);
        let input = Instance::unary(rel("R"), [path_of(&["c"])]);
        let expected: BTreeSet<Path> = [path_of(&["b", "c", "a"])].into();
        assert_eq!(
            run_unary_query(&program, &input, rel("S")).unwrap(),
            expected
        );
        assert_eq!(
            run_unary_query(&rewritten, &input, rel("S")).unwrap(),
            expected
        );
    }

    #[test]
    fn positive_elimination_in_recursive_strata_keeps_stratification() {
        // A recursive rule with a positive equation.
        let program =
            parse_program("T($x) <- R($x).\nT($y) <- T($x), $x = a·$y.\nS($x) <- T($x).").unwrap();
        let rewritten = eliminate_positive_equations(&program).unwrap();
        assert!(!FeatureSet::of_program(&rewritten).equations);
        assert!(check_stratification(&rewritten).is_ok());
        let input = Instance::unary(rel("R"), [repeat_path("a", 3)]);
        assert_eq!(
            run_unary_query(&program, &input, rel("S")).unwrap(),
            run_unary_query(&rewritten, &input, rel("S")).unwrap()
        );
    }

    #[test]
    fn example_4_6_negated_equation_elimination() {
        // Paths of the form a1…an·bn…b1 with ai ≠ bi.
        let program = parse_program(
            "U($x, $x) <- R($x).\nU($x, $y) <- U($x, @a·$y·@b), @a != @b.\nS($x) <- U($x, eps).",
        )
        .unwrap();
        let rewritten = eliminate_negated_equations(&program);
        // No negated equations remain (negated predicates are fine).
        assert!(rewritten
            .rules()
            .all(|r| r.negative_body_equations().is_empty()));
        assert!(check_stratification(&rewritten).is_ok(), "{rewritten}");
        // The new stratum count doubled for the affected stratum.
        assert_eq!(rewritten.stratum_count(), 2);

        let inputs = [
            vec![path_of(&["a", "b", "c", "d"])], // pairs (a,d), (b,c): all distinct -> in S
            vec![path_of(&["a", "b", "b", "a"])], // pairs (a,a): not in S
            vec![path_of(&["a", "b"])],           // single pair (a,b) -> in S
            vec![path_of(&["a"])],                // odd length -> not in S
            vec![Path::empty()],                  // zero pairs -> in S
        ];
        for paths in inputs {
            let input = Instance::unary(rel("R"), paths.clone());
            assert_eq!(
                run_unary_query(&program, &input, rel("S")).unwrap(),
                run_unary_query(&rewritten, &input, rel("S")).unwrap(),
                "divergence on {paths:?}"
            );
        }
    }

    #[test]
    fn full_equation_elimination_theorem_4_7() {
        let program = parse_program(
            "U($x, $x) <- R($x).\nU($x, $y) <- U($x, @a·$y·@b), @a != @b.\nS($x) <- U($x, eps).",
        )
        .unwrap();
        let rewritten = eliminate_equations(&program).unwrap();
        assert!(!FeatureSet::of_program(&rewritten).equations, "{rewritten}");
        assert!(check_stratification(&rewritten).is_ok());
        for paths in [
            vec![path_of(&["a", "b", "c", "d"]), path_of(&["a", "a"])],
            vec![path_of(&["x", "y", "z", "z", "y", "q"])],
        ] {
            let input = Instance::unary(rel("R"), paths.clone());
            assert_eq!(
                run_unary_query(&program, &input, rel("S")).unwrap(),
                run_unary_query(&rewritten, &input, rel("S")).unwrap(),
                "divergence on {paths:?}"
            );
        }
    }

    #[test]
    fn boolean_query_with_nonequalities_is_preserved() {
        // A simplified Example 2.2 without packing: are there two different
        // substring occurrences of a string from S in R?
        let program = parse_program(
            "T($u, $s, $v) <- R($u·$s·$v), S($s).\n\
             A <- T($u1, $s, $v1), T($u2, $s, $v2), $u1 != $u2.",
        )
        .unwrap();
        let rewritten = eliminate_equations(&program).unwrap();
        assert!(!FeatureSet::of_program(&rewritten).equations);

        let mut yes = Instance::unary(rel("R"), [path_of(&["a", "b", "x", "a", "b"])]);
        yes.insert_fact(seqdl_core::Fact::new(rel("S"), vec![path_of(&["a", "b"])]))
            .unwrap();
        assert_eq!(
            run_boolean_query(&program, &yes, rel("A")).unwrap(),
            run_boolean_query(&rewritten, &yes, rel("A")).unwrap()
        );
        assert!(run_boolean_query(&program, &yes, rel("A")).unwrap());

        let mut no = Instance::unary(rel("R"), [path_of(&["a", "b", "x"])]);
        no.insert_fact(seqdl_core::Fact::new(rel("S"), vec![path_of(&["a", "b"])]))
            .unwrap();
        assert_eq!(
            run_boolean_query(&program, &no, rel("A")).unwrap(),
            run_boolean_query(&rewritten, &no, rel("A")).unwrap()
        );
        assert!(!run_boolean_query(&program, &no, rel("A")).unwrap());
    }

    #[test]
    fn programs_without_equations_are_untouched() {
        let program = parse_program("S($x) <- R($x).").unwrap();
        assert_eq!(eliminate_positive_equations(&program).unwrap(), program);
        assert_eq!(eliminate_negated_equations(&program), program);
    }
}
