//! The normal form of Lemma 7.2 for nonrecursive, equation-free programs.
//!
//! Every rule of the normalised program has one of six shapes (numbered as in the
//! paper), which map directly onto sequence-relational-algebra operators
//! (Section 7):
//!
//! 1. `R1(v1, …, vn) ← R2(e1, …, em)` — *extraction*;
//! 2. `R1(v1, …, vn, e) ← R2(v1, …, vn)` — generalised projection (add a column);
//! 3. `R1(v1, …, vn) ← R2(x1, …, xk), R3(y1, …, yl)` — join;
//! 4. `R1(v1, …, vn) ← R2(v1, …, vn), ¬R3(v'1, …, v'm)` — antijoin;
//! 5. `R1(v'1, …, v'm) ← R2(v1, …, vn)` — column projection / permutation;
//! 6. `R(p) ← .` — constant relation.

use crate::error::RewriteError;
use seqdl_core::RelName;
use seqdl_syntax::{
    Atom, FeatureSet, Literal, PathExpr, Predicate, Program, Rule, Stratum, Term, Var, VarKind,
};
use std::collections::BTreeMap;

/// The six normal-form shapes of Lemma 7.2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NormalForm {
    /// Form 1: extraction.
    Extraction,
    /// Form 2: add a computed column.
    AddColumn,
    /// Form 3: join of two predicates.
    Join,
    /// Form 4: antijoin (negated predicate over a subset of the variables).
    Antijoin,
    /// Form 5: projection / permutation of columns.
    Projection,
    /// Form 6: constant relation.
    Constant,
}

/// Classify a rule according to the six forms of Lemma 7.2, or `None` if it matches
/// none of them.
pub fn classify_rule(rule: &Rule) -> Option<NormalForm> {
    let head_vars: Vec<Var> = rule
        .head
        .args
        .iter()
        .map(single_var)
        .collect::<Option<Vec<_>>>()
        .unwrap_or_default();
    let head_all_vars = rule.head.args.len() == head_vars.len() && all_distinct(&head_vars);
    let head_all_path_vars = head_all_vars && head_vars.iter().all(Var::is_path_var);
    let positives = rule.positive_body_predicates();
    let negatives = rule.negative_body_predicates();
    let has_equations = rule.body.iter().any(Literal::is_equation);
    if has_equations {
        return None;
    }

    match (positives.len(), negatives.len(), rule.body.len()) {
        // Form 6: constant.
        (0, 0, 0) => {
            if rule.head.args.iter().all(PathExpr::is_ground) {
                Some(NormalForm::Constant)
            } else {
                None
            }
        }
        (1, 0, 1) => {
            let body = positives[0];
            let body_vars: Vec<Var> = body
                .args
                .iter()
                .map(single_var)
                .collect::<Option<Vec<_>>>()
                .unwrap_or_default();
            let body_all_vars = body.args.len() == body_vars.len() && all_distinct(&body_vars);
            let body_all_path_vars = body_all_vars && body_vars.iter().all(Var::is_path_var);
            // Form 2: R1(v1..vn, e) ← R2(v1..vn).
            if body_all_path_vars
                && rule.head.arity() == body.arity() + 1
                && rule.head.args[..body.arity()]
                    .iter()
                    .zip(body_vars.iter())
                    .all(|(a, v)| single_var(a) == Some(*v))
            {
                return Some(NormalForm::AddColumn);
            }
            // Form 5: projection (head vars a sub-list of distinct body path vars).
            if body_all_path_vars
                && head_all_path_vars
                && head_vars.iter().all(|v| body_vars.contains(v))
            {
                return Some(NormalForm::Projection);
            }
            // Form 1: extraction (head all distinct vars, body components arbitrary).
            if head_all_vars {
                return Some(NormalForm::Extraction);
            }
            None
        }
        // Form 3: join.
        (2, 0, 2) => {
            if !head_all_path_vars {
                return None;
            }
            let mut body_vars: Vec<Var> = Vec::new();
            for p in &positives {
                for a in &p.args {
                    match single_var(a) {
                        Some(v) if v.is_path_var() => body_vars.push(v),
                        _ => return None,
                    }
                }
            }
            if head_vars.iter().all(|v| body_vars.contains(v)) {
                Some(NormalForm::Join)
            } else {
                None
            }
        }
        // Form 4: antijoin.
        (1, 1, 2) => {
            if !head_all_path_vars {
                return None;
            }
            let body = positives[0];
            let body_vars: Vec<Var> = body
                .args
                .iter()
                .map(single_var)
                .collect::<Option<Vec<_>>>()
                .unwrap_or_default();
            if body.args.len() != body_vars.len()
                || !all_distinct(&body_vars)
                || !body_vars.iter().all(Var::is_path_var)
            {
                return None;
            }
            if head_vars != body_vars {
                return None;
            }
            let neg = negatives[0];
            let neg_vars: Vec<Var> = neg
                .args
                .iter()
                .map(single_var)
                .collect::<Option<Vec<_>>>()
                .unwrap_or_default();
            if neg.args.len() == neg_vars.len()
                && all_distinct(&neg_vars)
                && neg_vars.iter().all(|v| body_vars.contains(v))
            {
                Some(NormalForm::Antijoin)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn single_var(expr: &PathExpr) -> Option<Var> {
    match expr.terms() {
        [Term::Var(v)] => Some(*v),
        _ => None,
    }
}

fn all_distinct(vars: &[Var]) -> bool {
    let mut seen = std::collections::BTreeSet::new();
    vars.iter().all(|v| seen.insert(*v))
}

/// Convert a nonrecursive, equation-free program into the normal form of Lemma 7.2.
/// Every rule of the result satisfies [`classify_rule`].
///
/// # Errors
/// * [`RewriteError::RequiresNonRecursive`] for recursive inputs;
/// * [`RewriteError::UnsupportedFeature`] if the program contains equations
///   (eliminate them first with [`crate::eliminate_equations`]).
pub fn to_normal_form(program: &Program) -> Result<Program, RewriteError> {
    let features = FeatureSet::of_program(program);
    if features.recursion {
        return Err(RewriteError::RequiresNonRecursive {
            rewrite: "normal form (Lemma 7.2)",
        });
    }
    if features.equations {
        return Err(RewriteError::UnsupportedFeature {
            rewrite: "normal form (Lemma 7.2)",
            feature: "equations",
        });
    }
    let mut strata = Vec::new();
    for stratum in &program.strata {
        let mut rules = Vec::new();
        for rule in &stratum.rules {
            rules.extend(normalise_rule(rule));
        }
        strata.push(Stratum::new(rules));
    }
    Ok(Program::new(strata))
}

/// Normalise a single rule into a set of normal-form rules (the "main stratum"
/// construction of the proof of Lemma 7.2).
fn normalise_rule(rule: &Rule) -> Vec<Rule> {
    let mut out: Vec<Rule> = Vec::new();

    // If the rule is already a constant rule, keep it (form 6 allows only ground
    // heads; other bodiless heads cannot occur in safe rules).
    if rule.body.is_empty() {
        out.push(rule.clone());
        return out;
    }

    // Step 1.1: replace every positive atom by a fresh predicate over its variables,
    // and replace atomic variables in the *main rule* by fresh path variables.
    let mut atom_to_path: BTreeMap<Var, Var> = BTreeMap::new();
    for v in rule.vars() {
        if v.kind == VarKind::Atom {
            atom_to_path.insert(v, Var::fresh_path(&format!("nf_{}", v.name)));
        }
    }
    let to_main_expr = |v: Var| -> PathExpr { PathExpr::var(*atom_to_path.get(&v).unwrap_or(&v)) };

    let mut positive_atoms: Vec<Predicate> = Vec::new();
    let mut negated_literals: Vec<Predicate> = Vec::new();
    for lit in &rule.body {
        let Atom::Pred(p) = &lit.atom else {
            unreachable!("equation-free precondition checked by to_normal_form");
        };
        if lit.positive {
            let vars = p.vars();
            let h_rel = RelName::fresh("NfH");
            if vars.is_empty() {
                // A variable-free atom: H' ← P(e…) (form 1) and H(a) ← H' (form 2).
                let h_prime = RelName::fresh("NfH0");
                out.push(Rule::new(
                    Predicate::nullary(h_prime),
                    vec![Literal::pred(p.clone())],
                ));
                out.push(Rule::new(
                    Predicate::new(h_rel, vec![PathExpr::constant("a")]),
                    vec![Literal::pred(Predicate::nullary(h_prime))],
                ));
                let fresh = Var::fresh_path("nf_v");
                positive_atoms.push(Predicate::new(h_rel, vec![PathExpr::var(fresh)]));
            } else {
                // Form 1 rule: H(vars…) ← P(e…), with the atom's own variables
                // (atomic variables allowed in form-1 heads).
                out.push(Rule::new(
                    Predicate::new(h_rel, vars.iter().map(|v| PathExpr::var(*v)).collect()),
                    vec![Literal::pred(p.clone())],
                ));
                // In the main rule the call uses path variables throughout.
                positive_atoms.push(Predicate::new(
                    h_rel,
                    vars.iter().map(|v| to_main_expr(*v)).collect(),
                ));
            }
        } else {
            negated_literals.push(p.clone());
        }
    }

    // Step 1.2: if there is no positive atom, introduce a constant relation.
    if positive_atoms.is_empty() {
        let c_rel = RelName::fresh("NfConst");
        out.push(Rule::fact(Predicate::new(
            c_rel,
            vec![PathExpr::constant("a")],
        )));
        let fresh = Var::fresh_path("nf_v");
        positive_atoms.push(Predicate::new(c_rel, vec![PathExpr::var(fresh)]));
    }

    // Step 1.2 (joining): combine positive atoms pairwise into a single atom.
    let join_all = |atoms: Vec<Predicate>, out: &mut Vec<Rule>| -> Predicate {
        let mut atoms = atoms;
        while atoms.len() > 1 {
            let a = atoms.remove(0);
            let b = atoms.remove(0);
            let mut vars: Vec<Var> = Vec::new();
            for p in [&a, &b] {
                for v in p.vars() {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
            }
            let h_rel = RelName::fresh("NfJ");
            let joined = Predicate::new(h_rel, vars.iter().map(|v| PathExpr::var(*v)).collect());
            out.push(Rule::new(
                joined.clone(),
                vec![Literal::pred(a), Literal::pred(b)],
            ));
            atoms.insert(0, joined);
        }
        atoms.pop().expect("at least one atom")
    };
    let h_atom = join_all(positive_atoms, &mut out);

    // Step 2: one intermediate rule per negated literal, then join them back into a
    // single positive atom.
    let h_vars: Vec<Var> = h_atom.vars();
    let mut hn_atoms: Vec<Predicate> = Vec::new();
    let mut negation_rules: Vec<(Predicate, Predicate, Predicate)> = Vec::new();
    for neg in &negated_literals {
        let hn_rel = RelName::fresh("NfN");
        let hn = Predicate::new(hn_rel, h_vars.iter().map(|v| PathExpr::var(*v)).collect());
        // Remember (HN, H, N) to expand in step 3; the negated atom's expressions use
        // the main-rule variable renaming.
        let neg_main = Predicate::new(
            neg.relation,
            neg.args
                .iter()
                .map(|a| {
                    a.substitute(
                        &atom_to_path
                            .iter()
                            .map(|(k, v)| (*k, PathExpr::var(*v)))
                            .collect(),
                    )
                })
                .collect(),
        );
        negation_rules.push((hn.clone(), h_atom.clone(), neg_main));
        hn_atoms.push(hn);
    }
    let main_atom = if hn_atoms.is_empty() {
        h_atom.clone()
    } else {
        join_all(hn_atoms, &mut out)
    };

    // Step 3: expand each negation rule HN ← H, ¬N(e…) into forms 2, 4, and 5.
    for (hn, h, neg) in negation_rules {
        let base_vars: Vec<Var> = h.vars();
        let mut chain_rel = h.relation;
        let mut chain_vars: Vec<Var> = base_vars.clone();
        let mut value_vars: Vec<Var> = Vec::new();
        for expr in &neg.args {
            let next_rel = RelName::fresh("NfNe");
            let value_var = Var::fresh_path("nf_ne");
            let mut head_args: Vec<PathExpr> =
                chain_vars.iter().map(|v| PathExpr::var(*v)).collect();
            head_args.push(expr.clone());
            out.push(Rule::new(
                Predicate::new(next_rel, head_args),
                vec![Literal::pred(Predicate::new(
                    chain_rel,
                    chain_vars.iter().map(|v| PathExpr::var(*v)).collect(),
                ))],
            ));
            chain_rel = next_rel;
            chain_vars.push(value_var);
            value_vars.push(value_var);
        }
        // Form 4: FN(vars, values) ← Nm(vars, values), ¬N(values).
        let fn_rel = RelName::fresh("NfF");
        out.push(Rule::new(
            Predicate::new(
                fn_rel,
                chain_vars.iter().map(|v| PathExpr::var(*v)).collect(),
            ),
            vec![
                Literal::pred(Predicate::new(
                    chain_rel,
                    chain_vars.iter().map(|v| PathExpr::var(*v)).collect(),
                )),
                Literal::not_pred(Predicate::new(
                    neg.relation,
                    value_vars.iter().map(|v| PathExpr::var(*v)).collect(),
                )),
            ],
        ));
        // Form 5: HN(base vars) ← FN(vars, values).
        out.push(Rule::new(
            hn,
            vec![Literal::pred(Predicate::new(
                fn_rel,
                chain_vars.iter().map(|v| PathExpr::var(*v)).collect(),
            ))],
        ));
    }

    // Step 4: generate the final head expressions through a chain of form-2 rules,
    // then project with a form-5 rule.
    let head_exprs: Vec<PathExpr> = rule
        .head
        .args
        .iter()
        .map(|a| {
            a.substitute(
                &atom_to_path
                    .iter()
                    .map(|(k, v)| (*k, PathExpr::var(*v)))
                    .collect(),
            )
        })
        .collect();
    let base_vars: Vec<Var> = main_atom.vars();
    let mut chain_rel = main_atom.relation;
    let mut chain_vars = base_vars.clone();
    let mut value_vars: Vec<Var> = Vec::new();
    for expr in &head_exprs {
        let next_rel = RelName::fresh("NfT");
        let value_var = Var::fresh_path("nf_t");
        let mut head_args: Vec<PathExpr> = chain_vars.iter().map(|v| PathExpr::var(*v)).collect();
        head_args.push(expr.clone());
        out.push(Rule::new(
            Predicate::new(next_rel, head_args),
            vec![Literal::pred(Predicate::new(
                chain_rel,
                chain_vars.iter().map(|v| PathExpr::var(*v)).collect(),
            ))],
        ));
        chain_rel = next_rel;
        chain_vars.push(value_var);
        value_vars.push(value_var);
    }
    out.push(Rule::new(
        Predicate::new(
            rule.head.relation,
            value_vars.iter().map(|v| PathExpr::var(*v)).collect(),
        ),
        vec![Literal::pred(Predicate::new(
            chain_rel,
            chain_vars.iter().map(|v| PathExpr::var(*v)).collect(),
        ))],
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, rel, Fact, Instance, Path};
    use seqdl_engine::run_unary_query;
    use seqdl_syntax::{parse_program, parse_rule};
    use std::collections::BTreeSet;

    #[test]
    fn classify_recognises_all_six_forms() {
        let cases = [
            (
                "H($y, $z, @u) <- P1($y·$y, $z·a, @u·d).",
                NormalForm::Extraction,
            ),
            ("N1($y, $z, $x·$y) <- H($y, $z).", NormalForm::AddColumn),
            (
                "H($y, $z, $u, $x) <- H1($y, $z, $u), H2($z, $x).",
                NormalForm::Join,
            ),
            (
                "F($y, $z, $n) <- N1($y, $z, $n), !N($n).",
                NormalForm::Antijoin,
            ),
            ("HN($y, $z) <- F($y, $z, $n).", NormalForm::Projection),
            ("T(a·b·c).", NormalForm::Constant),
        ];
        for (src, expected) in cases {
            let rule = parse_rule(src).unwrap();
            assert_eq!(classify_rule(&rule), Some(expected), "{src}");
        }
    }

    #[test]
    fn classify_rejects_non_normal_rules() {
        let not_normal = [
            "S($x) <- R($x), Q($x), P($x).", // three-way join
            "S($x·a) <- R($x), Q($x).",      // join with computed head
            "S($x) <- R($x), a·$x = $x·a.",  // equation
            "S($x·a) <- R($x).", // computed head over a single atom (not distinct variables)
        ];
        for src in not_normal {
            let rule = parse_rule(src).unwrap();
            assert_eq!(classify_rule(&rule), None, "{src}");
        }
    }

    fn assert_normalised_equivalent(src: &str, output: &str, inputs: Vec<Instance>) {
        let program = parse_program(src).unwrap();
        let normal = to_normal_form(&program).unwrap();
        for rule in normal.rules() {
            assert!(
                classify_rule(rule).is_some(),
                "rule not in normal form: {rule}"
            );
        }
        for input in inputs {
            let a = run_unary_query(&program, &input, rel(output)).unwrap();
            let b = run_unary_query(&normal, &input, rel(output)).unwrap();
            assert_eq!(a, b, "normalisation changed the query on {input}");
        }
    }

    #[test]
    fn simple_copy_rule_normalises() {
        assert_normalised_equivalent(
            "S($x) <- R($x).",
            "S",
            vec![
                Instance::unary(rel("R"), [path_of(&["a", "b"]), Path::empty()]),
                Instance::unary(rel("R"), []),
            ],
        );
    }

    #[test]
    fn extraction_and_head_construction_normalise() {
        assert_normalised_equivalent(
            "S($x·$x·c) <- R(a·$x·b).",
            "S",
            vec![Instance::unary(
                rel("R"),
                [
                    path_of(&["a", "z", "b"]),
                    path_of(&["a", "b"]),
                    path_of(&["z"]),
                ],
            )],
        );
    }

    #[test]
    fn joins_and_atomic_variables_normalise() {
        let mut input = Instance::unary(rel("R"), [path_of(&["a", "b"]), path_of(&["c", "d"])]);
        for p in [path_of(&["b"]), path_of(&["d"])] {
            input.insert_fact(Fact::new(rel("Q"), vec![p])).unwrap();
        }
        assert_normalised_equivalent("S(@u) <- R(@v·@u), Q(@u).", "S", vec![input]);
    }

    #[test]
    fn negation_normalises_into_antijoin_chains() {
        let mut input = Instance::unary(rel("R"), [path_of(&["a", "b"]), path_of(&["c", "d"])]);
        input
            .insert_fact(Fact::new(rel("B"), vec![path_of(&["b"])]))
            .unwrap();
        assert_normalised_equivalent("S(@x) <- R(@x·@y), !B(@y).", "S", vec![input]);
    }

    #[test]
    fn two_strata_with_negation_normalise() {
        let mut input = Instance::new();
        for (a, b) in [("n1", "n2"), ("n1", "n3"), ("n4", "n2")] {
            input
                .insert_fact(Fact::new(rel("R"), vec![path_of(&[a, b])]))
                .unwrap();
        }
        input
            .insert_fact(Fact::new(rel("B"), vec![path_of(&["n2"])]))
            .unwrap();
        assert_normalised_equivalent(
            "W(@x) <- R(@x·@y), !B(@y).\n---\nS(@x) <- R(@x·@y), !W(@x).",
            "S",
            vec![input],
        );
    }

    #[test]
    fn section_7_worked_example_normalises() {
        // The general example from the proof of Lemma 7.2 (relation names shortened,
        // data chosen so that some tuples survive the negations).
        let src = "T(a·b·c, @x·c·$y, $z·$z) <- P1($y·$y, $z·a, @u·d), P2($z·@x·c, d), !N1(@x·$y·$z, a·@x), !N2(a·b, $y).";
        let program = parse_program(src).unwrap();
        let normal = to_normal_form(&program).unwrap();
        for rule in normal.rules() {
            assert!(classify_rule(rule).is_some(), "not normal: {rule}");
        }
        // Build an instance where the body is satisfiable.
        let mut input = Instance::new();
        input
            .insert_fact(Fact::new(
                rel("P1"),
                vec![
                    path_of(&["y", "y"]),
                    path_of(&["z", "a"]),
                    path_of(&["u", "d"]),
                ],
            ))
            .unwrap();
        input
            .insert_fact(Fact::new(
                rel("P2"),
                vec![path_of(&["z", "x", "c"]), path_of(&["d"])],
            ))
            .unwrap();
        let engine = seqdl_engine::Engine::new();
        let a = engine.run(&program, &input).unwrap();
        let b = engine.run(&normal, &input).unwrap();
        assert_eq!(
            a.relation(rel("T")).map(|r| r.tuples()),
            b.relation(rel("T")).map(|r| r.tuples())
        );
        assert_eq!(a.relation(rel("T")).unwrap().len(), 1);
    }

    #[test]
    fn recursion_and_equations_are_rejected() {
        let recursive = parse_program("T($x·a) <- T($x).\nT($x) <- R($x).").unwrap();
        assert!(matches!(
            to_normal_form(&recursive),
            Err(RewriteError::RequiresNonRecursive { .. })
        ));
        let with_eq = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        assert!(matches!(
            to_normal_form(&with_eq),
            Err(RewriteError::UnsupportedFeature { .. })
        ));
    }

    #[test]
    fn constant_rules_pass_through() {
        let program = parse_program("T(a·b).\nS($x) <- T($x).").unwrap();
        let normal = to_normal_form(&program).unwrap();
        for rule in normal.rules() {
            assert!(classify_rule(rule).is_some(), "not normal: {rule}");
        }
        let out = run_unary_query(&normal, &Instance::new(), rel("S")).unwrap();
        assert_eq!(out, BTreeSet::from([path_of(&["a", "b"])]));
    }
}
