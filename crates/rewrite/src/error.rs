//! Errors raised by program rewrites.

use seqdl_unify::UnifyError;
use std::fmt;

/// Errors raised by the feature-elimination rewrites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The rewrite requires a non-recursive program but the input is recursive.
    RequiresNonRecursive {
        /// Name of the rewrite.
        rewrite: &'static str,
    },
    /// The rewrite requires an equation-free or negation-free program.
    UnsupportedFeature {
        /// Name of the rewrite.
        rewrite: &'static str,
        /// Which feature is not supported by this rewrite.
        feature: &'static str,
    },
    /// The program's EDB schema is not monadic, so arity cannot be eliminated
    /// without changing the input data (queries are defined over monadic schemas,
    /// Section 3.1).
    NonMonadicEdb {
        /// The offending EDB relation.
        relation: String,
    },
    /// Packing elimination for recursive programs relies on the J-Logic flat–flat
    /// construction, which this reproduction does not implement (see DESIGN.md).
    UnsupportedRecursivePacking,
    /// Associative unification failed (search limit) while purifying a rule.
    Unification(UnifyError),
    /// An internal iteration cap was hit; indicates a bug or pathological input.
    IterationLimit {
        /// Name of the rewrite.
        rewrite: &'static str,
    },
    /// The goal handed to the magic-set transformation is unusable (not a
    /// pattern, not an IDB relation, wrong arity).
    BadGoal {
        /// What is wrong with the goal.
        message: String,
    },
    /// The magic-set transformation produced a program that fails the safety or
    /// stratification analyses; this is a bug guard, not an expected outcome.
    MagicInvariant {
        /// The analysis failure.
        message: String,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::RequiresNonRecursive { rewrite } => {
                write!(f, "{rewrite} requires a non-recursive program")
            }
            RewriteError::UnsupportedFeature { rewrite, feature } => {
                write!(f, "{rewrite} does not support programs using {feature}")
            }
            RewriteError::NonMonadicEdb { relation } => write!(
                f,
                "EDB relation {relation} has arity greater than one; arity of input relations cannot be eliminated"
            ),
            RewriteError::UnsupportedRecursivePacking => f.write_str(
                "packing elimination for recursive programs (J-Logic flat-flat theorem) is not implemented",
            ),
            RewriteError::Unification(e) => write!(f, "unification failed: {e}"),
            RewriteError::IterationLimit { rewrite } => {
                write!(f, "{rewrite} exceeded its internal iteration limit")
            }
            RewriteError::BadGoal { message } => write!(f, "bad goal: {message}"),
            RewriteError::MagicInvariant { message } => {
                write!(f, "magic rewrite invariant violated: {message}")
            }
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<UnifyError> for RewriteError {
    fn from(e: UnifyError) -> Self {
        RewriteError::Unification(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RewriteError::RequiresNonRecursive {
            rewrite: "packing elimination",
        };
        assert!(e.to_string().contains("non-recursive"));
        let e = RewriteError::NonMonadicEdb {
            relation: "D".into(),
        };
        assert!(e.to_string().contains('D'));
        assert!(RewriteError::UnsupportedRecursivePacking
            .to_string()
            .contains("J-Logic"));
    }
}
