//! Dead-code elimination for programs: drop rules that provably cannot
//! contribute to the declared output relations.
//!
//! Three removal reasons, applied together to a fixpoint:
//!
//! * **Unreachable** — the rule's head relation cannot reach any output
//!   relation in the dependency graph (over positive *and* negated body
//!   occurrences, so stratified-negation semantics are untouched: a rule is
//!   only dropped when nothing the outputs depend on — even negatively —
//!   reads its head).
//! * **Always false** — the rule body is statically unsatisfiable: a
//!   contradictory equation (ground sides that differ, conflicting static
//!   first values via [`seqdl_syntax::first_value_expr`], disjoint length
//!   ranges) or a trivially failing nonequality `e != e`.
//! * **Empty relation** — a positive body predicate reads a relation that is
//!   statically empty: an EDB relation with no facts (when the caller knows
//!   the instance) or an IDB relation all of whose rules have been removed.
//!   Relations the caller will *seed* with facts at runtime (the magic-set
//!   demand seeds of `run_seeded`) are never statically empty — use
//!   [`strip_dead_seeded`] so the analysis knows about them.
//!
//! Removing a rule can only shrink the model of its head relation when the
//! rule could fire, and each reason above certifies it cannot — so the
//! stripped program computes the same facts for every output relation (and
//! for every relation the outputs depend on).  The differential property
//! test `tests/prop_check.rs` checks exactly that on random programs.

use seqdl_core::{Instance, RelName};
use seqdl_syntax::{first_value_expr, PathExpr, Program, Rule, Stratum, Term};
use std::collections::BTreeSet;
use std::fmt;

/// Why [`strip_dead`] removed a rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StripReason {
    /// The head relation cannot reach any output relation in the dependency
    /// graph.
    Unreachable,
    /// The rule body is statically unsatisfiable; the payload describes the
    /// offending literal.
    AlwaysFalse(String),
    /// A positive body predicate reads the named statically-empty relation.
    EmptyRelation(RelName),
}

impl fmt::Display for StripReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StripReason::Unreachable => f.write_str("unreachable from the outputs"),
            StripReason::AlwaysFalse(detail) => write!(f, "always false: {detail}"),
            StripReason::EmptyRelation(r) => {
                write!(f, "reads statically empty relation {r}")
            }
        }
    }
}

/// One rule dropped by [`strip_dead`], with its position in the original
/// program.
#[derive(Clone, Debug)]
pub struct RemovedRule {
    /// Index of the stratum the rule lived in.
    pub stratum: usize,
    /// Index of the rule within its stratum.
    pub rule_index: usize,
    /// Rendering of the removed rule.
    pub rule: String,
    /// Why it was removed.
    pub reason: StripReason,
}

/// The result of [`strip_dead`]: the surviving program plus an audit trail of
/// every removal.
#[derive(Clone, Debug)]
pub struct StripReport {
    /// The program with dead and always-false rules removed.  Stratum
    /// boundaries are preserved (strata may end up empty) so surviving rules
    /// keep their stratum indices.
    pub program: Program,
    /// The removed rules in original program order.
    pub removed: Vec<RemovedRule>,
}

impl StripReport {
    /// Did the rewrite change the program at all?
    pub fn changed(&self) -> bool {
        !self.removed.is_empty()
    }
}

/// The static lower/upper bound on the number of values a path expression can
/// denote: constants, atom variables, and packing brackets each contribute
/// exactly one value; path variables contribute zero or more.
fn length_range(expr: &PathExpr) -> (usize, Option<usize>) {
    let mut min = 0usize;
    let mut exact = true;
    for term in expr.terms() {
        match term {
            Term::Const(_) | Term::Packed(_) => min += 1,
            Term::Var(v) if v.is_atom_var() => min += 1,
            Term::Var(_) => exact = false,
        }
    }
    (min, exact.then_some(min))
}

/// The statically known first value of an expression, rendered for comparison:
/// `Some` only for a leading constant or ground packed term (no variables are
/// considered bound here).
fn static_first_value(expr: &PathExpr) -> Option<String> {
    first_value_expr(expr, &BTreeSet::new()).map(|e| e.to_string())
}

/// Is this rule's body statically unsatisfiable, given the set of statically
/// `empty` relations?  Returns a human-readable description of the first
/// offending literal, or `None` when every check passes.
///
/// The checks are conservative (syntactic): a `None` does not certify
/// satisfiability.
pub fn always_false_reason(rule: &Rule, empty: &BTreeSet<RelName>) -> Option<StripReason> {
    for pred in rule.positive_body_predicates() {
        if empty.contains(&pred.relation) {
            return Some(StripReason::EmptyRelation(pred.relation));
        }
    }
    for eq in rule.positive_body_equations() {
        // Fully ground sides: compare the paths they denote.
        if let (Some(l), Some(r)) = (eq.lhs.as_path(), eq.rhs.as_path()) {
            if l != r {
                return Some(StripReason::AlwaysFalse(format!(
                    "ground equation {eq} does not hold"
                )));
            }
            continue;
        }
        // Conflicting static first values (e.g. `a·$x = b·$y`).
        if let (Some(l), Some(r)) = (static_first_value(&eq.lhs), static_first_value(&eq.rhs)) {
            if l != r {
                return Some(StripReason::AlwaysFalse(format!(
                    "equation {eq} requires first value {l} = {r}"
                )));
            }
        }
        // Disjoint length ranges (e.g. `eps = a·$x`).
        let (lmin, lmax) = length_range(&eq.lhs);
        let (rmin, rmax) = length_range(&eq.rhs);
        if lmax.is_some_and(|m| m < rmin) || rmax.is_some_and(|m| m < lmin) {
            return Some(StripReason::AlwaysFalse(format!(
                "equation {eq} equates paths of incompatible lengths"
            )));
        }
    }
    for eq in rule.negative_body_equations() {
        if eq.lhs == eq.rhs {
            return Some(StripReason::AlwaysFalse(format!(
                "nonequality {} != {} can never hold",
                eq.lhs, eq.rhs
            )));
        }
    }
    None
}

/// The statically empty relations of `program`: seeded from the EDB relations
/// absent from `nonempty_edb` (when the caller knows the instance), then
/// propagated — an IDB relation is empty when all of its rules are always
/// false, and a rule is always false when it reads an empty relation
/// positively.  Runs to a fixpoint.
///
/// With `nonempty_edb = None` nothing is assumed about the EDB, so only IDB
/// relations whose rules are all unsatisfiable on their own are reported.
pub fn statically_empty_relations(
    program: &Program,
    nonempty_edb: Option<&BTreeSet<RelName>>,
) -> BTreeSet<RelName> {
    statically_empty_relations_seeded(program, nonempty_edb, &BTreeSet::new())
}

/// [`statically_empty_relations`] for a program that will be evaluated with
/// injected seed facts (`run_seeded`): the `seeded` relations hold facts at
/// runtime no matter what their rules look like, so they are never reported
/// empty — in particular an IDB relation whose rules are all statically false
/// is still nonempty when it is seeded.
pub fn statically_empty_relations_seeded(
    program: &Program,
    nonempty_edb: Option<&BTreeSet<RelName>>,
    seeded: &BTreeSet<RelName>,
) -> BTreeSet<RelName> {
    let idb = program.idb_relations();
    let mut empty: BTreeSet<RelName> = match nonempty_edb {
        Some(nonempty) => program
            .edb_relations()
            .into_iter()
            .filter(|r| !nonempty.contains(r) && !seeded.contains(r))
            .collect(),
        None => BTreeSet::new(),
    };
    loop {
        let mut grew = false;
        for relation in &idb {
            if empty.contains(relation) || seeded.contains(relation) {
                continue;
            }
            let all_false = program
                .rules()
                .filter(|r| r.head.relation == *relation)
                .all(|r| always_false_reason(r, &empty).is_some());
            if all_false {
                empty.insert(*relation);
                grew = true;
            }
        }
        if !grew {
            return empty;
        }
    }
}

/// The relations the `outputs` transitively depend on (through positive *and*
/// negated body occurrences), including the outputs themselves.
pub fn needed_relations(program: &Program, outputs: &BTreeSet<RelName>) -> BTreeSet<RelName> {
    let mut needed: BTreeSet<RelName> = outputs.clone();
    let mut stack: Vec<RelName> = outputs.iter().copied().collect();
    while let Some(relation) = stack.pop() {
        for rule in program.rules() {
            if rule.head.relation != relation {
                continue;
            }
            for body in rule.body_relations() {
                if needed.insert(body) {
                    stack.push(body);
                }
            }
        }
    }
    needed
}

/// Strip rules that cannot contribute to the `outputs`, with no assumption
/// about the EDB.  See [`strip_dead_with_edb`].
pub fn strip_dead(program: &Program, outputs: &BTreeSet<RelName>) -> StripReport {
    strip_dead_with_edb(program, outputs, None)
}

/// Strip rules of a program that will be evaluated with injected seed facts
/// (`run_seeded`, as the magic-set query pipeline does): the `seeded`
/// relations are treated as never statically empty, so rules reading them
/// positively survive even when every rule *producing* them is statically
/// false — at runtime the seeds make them nonempty and those rules can fire.
/// No assumption is made about the EDB.
pub fn strip_dead_seeded(
    program: &Program,
    outputs: &BTreeSet<RelName>,
    seeded: &BTreeSet<RelName>,
) -> StripReport {
    strip_dead_impl(program, outputs, None, seeded)
}

/// Strip rules that cannot contribute to the `outputs`: rules whose head
/// relation is unreachable from the outputs and rules whose body is statically
/// unsatisfiable (see the [module docs](self)), iterated to a fixpoint.
///
/// When `nonempty_edb` is `Some`, EDB relations outside the set are treated as
/// statically empty — pass the relations actually present in the instance
/// (e.g. via [`nonempty_relations`]).  Stratum boundaries are preserved;
/// strata may come out empty.
pub fn strip_dead_with_edb(
    program: &Program,
    outputs: &BTreeSet<RelName>,
    nonempty_edb: Option<&BTreeSet<RelName>>,
) -> StripReport {
    strip_dead_impl(program, outputs, nonempty_edb, &BTreeSet::new())
}

fn strip_dead_impl(
    program: &Program,
    outputs: &BTreeSet<RelName>,
    nonempty_edb: Option<&BTreeSet<RelName>>,
    seeded: &BTreeSet<RelName>,
) -> StripReport {
    // Remember every rule's original coordinates before any removal.
    let mut current: Vec<Vec<(usize, usize, Rule)>> = program
        .strata
        .iter()
        .enumerate()
        .map(|(si, s)| {
            s.rules
                .iter()
                .enumerate()
                .map(|(ri, r)| (si, ri, r.clone()))
                .collect()
        })
        .collect();
    let mut removed: Vec<RemovedRule> = Vec::new();

    loop {
        let snapshot = Program::new(
            current
                .iter()
                .map(|s| Stratum::new(s.iter().map(|(_, _, r)| r.clone()).collect()))
                .collect(),
        );
        let empty = statically_empty_relations_seeded(&snapshot, nonempty_edb, seeded);
        let needed = needed_relations(&snapshot, outputs);
        let mut dropped_any = false;
        for stratum in &mut current {
            stratum.retain(|(si, ri, rule)| {
                let reason = if !needed.contains(&rule.head.relation) {
                    Some(StripReason::Unreachable)
                } else {
                    always_false_reason(rule, &empty)
                };
                match reason {
                    Some(reason) => {
                        removed.push(RemovedRule {
                            stratum: *si,
                            rule_index: *ri,
                            rule: rule.to_string(),
                            reason,
                        });
                        dropped_any = true;
                        false
                    }
                    None => true,
                }
            });
        }
        if !dropped_any {
            removed.sort_by_key(|r| (r.stratum, r.rule_index));
            return StripReport {
                program: Program::new(
                    current
                        .into_iter()
                        .map(|s| Stratum::new(s.into_iter().map(|(_, _, r)| r).collect()))
                        .collect(),
                ),
                removed,
            };
        }
    }
}

/// The relations of `instance` that hold at least one fact — the shape
/// [`strip_dead_with_edb`] expects for its `nonempty_edb` argument.
pub fn nonempty_relations(instance: &Instance) -> BTreeSet<RelName> {
    instance
        .relation_names_iter()
        .filter(|&name| instance.relation(name).is_some_and(|r| !r.is_empty()))
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use seqdl_core::rel;
    use seqdl_syntax::parse_program;

    fn outputs(names: &[&str]) -> BTreeSet<RelName> {
        names.iter().map(|n| rel(n)).collect()
    }

    #[test]
    fn unreachable_rules_are_removed() {
        let p = parse_program("T($x) <- R($x).\nU($x) <- R($x).\nS($x) <- T($x).").unwrap();
        let report = strip_dead(&p, &outputs(&["S"]));
        assert_eq!(report.program.rule_count(), 2);
        assert_eq!(report.removed.len(), 1);
        assert_eq!(report.removed[0].reason, StripReason::Unreachable);
        assert!(report.removed[0].rule.starts_with("U($x)"));
    }

    #[test]
    fn negated_dependencies_are_kept() {
        let p = parse_program("W($x) <- R($x).\n---\nS($x) <- R($x), !W($x).").unwrap();
        let report = strip_dead(&p, &outputs(&["S"]));
        assert!(!report.changed(), "negated dependency W must survive");
    }

    #[test]
    fn contradictory_equations_are_removed() {
        let p = parse_program("S($x) <- R($x), a·$x = b·$x.\nS($x) <- R($x).").unwrap();
        let report = strip_dead(&p, &outputs(&["S"]));
        assert_eq!(report.program.rule_count(), 1);
        assert!(matches!(
            report.removed[0].reason,
            StripReason::AlwaysFalse(_)
        ));
    }

    #[test]
    fn ground_equations_and_trivial_nonequalities() {
        assert!(always_false_reason(
            &seqdl_syntax::parse_rule("S <- R($x), a·b = a·c.").unwrap(),
            &BTreeSet::new()
        )
        .is_some());
        assert!(always_false_reason(
            &seqdl_syntax::parse_rule("S <- R($x), $x != $x.").unwrap(),
            &BTreeSet::new()
        )
        .is_some());
        assert!(always_false_reason(
            &seqdl_syntax::parse_rule("S <- R($x), eps = a·$x.").unwrap(),
            &BTreeSet::new()
        )
        .is_some());
        // Satisfiable bodies survive all checks.
        assert!(always_false_reason(
            &seqdl_syntax::parse_rule("S($x) <- R($x), a·$x = $x·a.").unwrap(),
            &BTreeSet::new()
        )
        .is_none());
    }

    #[test]
    fn empty_relation_knowledge_propagates() {
        // With an instance that has no B facts, T is empty, so S's first rule
        // can never fire.
        let p = parse_program("T($x) <- B($x).\nS($x) <- T($x).\nS($x) <- R($x).").unwrap();
        let nonempty = outputs(&["R"]);
        let report = strip_dead_with_edb(&p, &outputs(&["S"]), Some(&nonempty));
        assert_eq!(report.program.rule_count(), 1);
        assert_eq!(report.removed.len(), 2);
        let empties = statically_empty_relations(&p, Some(&nonempty));
        assert!(empties.contains(&rel("B")));
        assert!(empties.contains(&rel("T")));
    }

    #[test]
    fn seeded_relations_are_never_statically_empty() {
        // M's only rule is always false, so without seed knowledge M is
        // derived empty and both rules reading it die.  With M seeded (the
        // magic-set query shape: seed facts injected at runtime), the rules
        // must survive.
        let p = parse_program("M($x) <- R($x), a·$x = b·$x.\nS($x) <- M($x), R($x).").unwrap();
        let unseeded = strip_dead(&p, &outputs(&["S"]));
        assert_eq!(unseeded.program.rule_count(), 0, "sanity: M propagates empty");

        let seeds = outputs(&["M"]);
        assert!(!statically_empty_relations_seeded(&p, None, &seeds).contains(&rel("M")));
        let report = strip_dead_seeded(&p, &outputs(&["S"]), &seeds);
        assert_eq!(
            report.program.rule_count(),
            1,
            "the rule reading seeded M must survive"
        );
        assert!(report.removed[0].rule.starts_with("M($x)"));
    }

    #[test]
    fn magic_programs_keep_rules_guarded_by_the_seeded_demand_relation() {
        // The goal relation is recursive and the recursive rule's demand
        // prefix reads P, whose only rule is statically false.  Every demand
        // rule of the seeded magic relation is then always false — but the
        // seed facts still make it nonempty at runtime, so the adorned base
        // rule it guards must survive.  Seed-blind stripping removes it.
        let p = parse_program(
            "T(@x·@y) <- R(@x·@y).\n\
             T(@x·@z) <- P(@x), T(@x·@y), R(@y·@z).\n\
             P(@x) <- N(@x), a·@x = b·@x.",
        )
        .unwrap();
        let goal = crate::parse_goal("T(a·$y)?").unwrap();
        let mp = crate::magic(&p, &goal).unwrap();
        let seeded: BTreeSet<RelName> = mp.seeds.iter().map(|f| f.relation).collect();
        assert!(!seeded.is_empty(), "bound goal must produce seed facts");
        let answers = BTreeSet::from([mp.answer]);

        // Seed-blind stripping over-prunes: it derives the seeded magic
        // relation empty and drops the base rule producing the answers.
        let blind = strip_dead(&mp.program, &answers);
        assert!(
            !blind.program.rules().any(|r| r.head.relation == mp.answer),
            "precondition: without seed knowledge the answer rules die\n{}",
            mp.program
        );

        let seeded_report = strip_dead_seeded(&mp.program, &answers, &seeded);
        assert!(
            seeded_report
                .program
                .rules()
                .any(|r| r.head.relation == mp.answer),
            "seed-aware stripping must keep the answer-producing base rule\n{}",
            seeded_report.program
        );
    }

    #[test]
    fn seeded_edb_relations_are_nonempty_despite_the_instance() {
        // B is absent from the instance, but seeded at runtime.
        let p = parse_program("S($x) <- B($x).").unwrap();
        let nonempty = outputs(&["R"]);
        let seeds = outputs(&["B"]);
        assert!(!statically_empty_relations_seeded(&p, Some(&nonempty), &seeds).contains(&rel("B")));
    }

    #[test]
    fn stratum_boundaries_survive_stripping() {
        let p = parse_program("T($x) <- R($x).\n---\nS($x) <- R($x), !T($x).").unwrap();
        let report = strip_dead(&p, &outputs(&["S"]));
        assert_eq!(report.program.stratum_count(), 2);
    }
}
