//! Packing elimination (Section 4.3: Lemmas 4.10, 4.12, 4.13 and Theorem 4.15).
//!
//! The pipeline for a **non-recursive** program is the one of the paper:
//!
//! 1. split the program into strata with a single IDB relation each (possible for
//!    any non-recursive stratified program);
//! 2. per stratum: rewrite calls to earlier, already-rewritten IDB relations into
//!    calls to their packing-structure-specialised versions plus equations;
//! 3. eliminate *impure* variables by solving half-pure equations with associative
//!    unification (Lemma 4.10);
//! 4. split the remaining pure equations and nonequalities along their *packing
//!    structures* into packing-free component (non)equations (Lemma 4.12);
//! 5. drop rules and literals that can never be satisfied on flat instances
//!    (positive EDB predicates with packing, equations with mismatched packing
//!    structures, …), and specialise head predicates by packing structure
//!    (Lemma 4.13).
//!
//! For **recursive** programs the paper defers to the flat–flat theorem of J-Logic;
//! this reproduction provides the doubling and undoubling helper programs used by
//! that construction ([`doubling_program`], [`undoubling_program`]) but reports
//! [`RewriteError::UnsupportedRecursivePacking`] for the full recursive case (see
//! DESIGN.md).

use crate::error::RewriteError;
use seqdl_core::RelName;
use seqdl_syntax::{
    analysis::{check_stratification, DependencyGraph},
    parse_program, Atom, Equation, FeatureSet, Literal, PathExpr, Predicate, Program, Rule,
    Stratum, Term, Var, VarKind,
};
use seqdl_unify::{solve_allowing_empty, SolveOptions, Substitution};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

// ---------------------------------------------------------------------------
// Packing structures (Section 4.3.4)
// ---------------------------------------------------------------------------

/// One item of a packing structure: a star (a packing-free component) or a nested
/// packed structure.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum PsItem {
    /// `∗` — a maximal packing-free stretch.
    Star,
    /// `⟨δ⟩` — a packed sub-structure.
    Packed(PackingStructure),
}

/// The packing structure `δ(e)` of a path expression (Section 4.3.4): the shape of
/// its packing, with consecutive packing-free stretches collapsed into single stars.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct PackingStructure {
    items: Vec<PsItem>,
}

impl PackingStructure {
    /// Compute `δ(e)`.
    pub fn of(expr: &PathExpr) -> PackingStructure {
        let mut items = Vec::new();
        let push_star = |items: &mut Vec<PsItem>| {
            if items.last() != Some(&PsItem::Star) {
                items.push(PsItem::Star);
            }
        };
        push_star(&mut items);
        for term in expr.terms() {
            match term {
                Term::Const(_) | Term::Var(_) => push_star(&mut items),
                Term::Packed(inner) => {
                    push_star(&mut items);
                    items.push(PsItem::Packed(PackingStructure::of(inner)));
                    push_star(&mut items);
                }
            }
        }
        PackingStructure { items }
    }

    /// The flat structure `∗` (no packing).
    pub fn flat() -> PackingStructure {
        PackingStructure {
            items: vec![PsItem::Star],
        }
    }

    /// Is this the flat structure `∗`?
    pub fn is_flat(&self) -> bool {
        self.items == vec![PsItem::Star]
    }

    /// The number of stars, i.e. the number of components of any expression with
    /// this structure.
    pub fn star_count(&self) -> usize {
        self.items
            .iter()
            .map(|i| match i {
                PsItem::Star => 1,
                PsItem::Packed(inner) => inner.star_count(),
            })
            .sum()
    }

    /// The components of `expr` (which must have this packing structure): the
    /// packing-free sub-expressions standing at each star, in pre-order.
    pub fn components(expr: &PathExpr) -> Vec<PathExpr> {
        let mut out = Vec::new();
        let mut current = PathExpr::empty();
        for term in expr.terms() {
            match term {
                Term::Packed(inner) => {
                    out.push(std::mem::take(&mut current));
                    out.extend(PackingStructure::components(inner));
                }
                other => current.push(other.clone()),
            }
        }
        out.push(current);
        out
    }

    /// Rebuild an expression with this packing structure from components (inverse of
    /// [`PackingStructure::components`] for expressions of this structure).
    pub fn assemble(&self, components: &[PathExpr]) -> Option<PathExpr> {
        let mut ix = 0usize;
        let result = self.assemble_inner(components, &mut ix)?;
        if ix == components.len() {
            Some(result)
        } else {
            None
        }
    }

    fn assemble_inner(&self, components: &[PathExpr], ix: &mut usize) -> Option<PathExpr> {
        let mut out = PathExpr::empty();
        for item in &self.items {
            match item {
                PsItem::Star => {
                    let c = components.get(*ix)?;
                    *ix += 1;
                    out = out.concat(c);
                }
                PsItem::Packed(inner) => {
                    let nested = inner.assemble_inner(components, ix)?;
                    out.push(Term::Packed(nested));
                }
            }
        }
        Some(out)
    }

    /// A short name usable inside generated relation names.
    pub fn mangled(&self) -> String {
        let mut out = String::new();
        for item in &self.items {
            match item {
                PsItem::Star => out.push('s'),
                PsItem::Packed(inner) => {
                    out.push('p');
                    out.push_str(&inner.mangled());
                    out.push('q');
                }
            }
        }
        out
    }
}

impl fmt::Display for PackingStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str("·")?;
            }
            match item {
                PsItem::Star => f.write_str("*")?,
                PsItem::Packed(inner) => write!(f, "<{inner}>")?,
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Purity (Section 4.3.3)
// ---------------------------------------------------------------------------

/// The *pure* variables of a rule (Section 4.3.3): variables guaranteed to hold
/// packing-free values on flat instances.  `flat_relations` is the set of relation
/// names known to hold only flat paths (the EDB plus already-rewritten relations);
/// variables of positive predicates over those relations are the *source variables*.
pub fn pure_vars(rule: &Rule, flat_relations: &BTreeSet<RelName>) -> BTreeSet<Var> {
    let mut pure: BTreeSet<Var> = BTreeSet::new();
    for pred in rule.positive_body_predicates() {
        if flat_relations.contains(&pred.relation) {
            pure.extend(pred.vars());
        }
    }
    loop {
        let mut changed = false;
        for eq in rule.positive_body_equations() {
            for (this, other) in [(&eq.lhs, &eq.rhs), (&eq.rhs, &eq.lhs)] {
                if !other.has_packing() && other.vars().iter().all(|v| pure.contains(v)) {
                    for v in this.vars() {
                        changed |= pure.insert(v);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    pure
}

/// Classification of a positive equation with respect to purity (Example 4.9).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EquationPurity {
    /// All variables on both sides are pure.
    Pure,
    /// One side has only pure variables; the other contains an impure variable.
    HalfPure,
    /// Both sides contain impure variables.
    FullyImpure,
}

/// Classify an equation with respect to a set of pure variables.
pub fn classify_equation(eq: &Equation, pure: &BTreeSet<Var>) -> EquationPurity {
    let lhs_pure = eq.lhs.vars().iter().all(|v| pure.contains(v));
    let rhs_pure = eq.rhs.vars().iter().all(|v| pure.contains(v));
    match (lhs_pure, rhs_pure) {
        (true, true) => EquationPurity::Pure,
        (false, false) => EquationPurity::FullyImpure,
        _ => EquationPurity::HalfPure,
    }
}

/// Eliminate impure variables from a rule (Lemma 4.10): returns a finite set of
/// rules, equivalent to `rule` on flat instances, in which all positive equations
/// are pure.
///
/// # Errors
/// Unification search limits, or the internal recursion cap.
pub fn purify_rule(
    rule: &Rule,
    flat_relations: &BTreeSet<RelName>,
) -> Result<Vec<Rule>, RewriteError> {
    purify_rule_rec(rule, flat_relations, 0)
}

fn purify_rule_rec(
    rule: &Rule,
    flat_relations: &BTreeSet<RelName>,
    depth: usize,
) -> Result<Vec<Rule>, RewriteError> {
    if depth > 64 {
        return Err(RewriteError::IterationLimit {
            rewrite: "impure-variable elimination",
        });
    }
    let pure = pure_vars(rule, flat_relations);
    // Find a half-pure positive equation.
    let half_pure = rule
        .body
        .iter()
        .enumerate()
        .find(|(_, lit)| {
            lit.positive
                && lit
                    .atom
                    .as_equation()
                    .is_some_and(|eq| classify_equation(eq, &pure) == EquationPurity::HalfPure)
        })
        .map(|(i, lit)| (i, lit.atom.as_equation().expect("checked").clone()));

    let Some((eq_ix, eq)) = half_pure else {
        // No half-pure equations left.  For a safe rule this means no impure
        // variables remain in positive equations.
        return Ok(vec![rule.clone()]);
    };

    // Orient: e1 = pure side, e2 = impure side.
    let lhs_pure = eq.lhs.vars().iter().all(|v| pure.contains(v));
    let (e1, e2) = if lhs_pure {
        (eq.lhs.clone(), eq.rhs.clone())
    } else {
        (eq.rhs.clone(), eq.lhs.clone())
    };

    // Replace each variable occurrence u_i in e1 by a fresh variable v_i and record
    // the equations u_i = v_i.
    let mut fresh_pairs: Vec<(Var, Var)> = Vec::new();
    let e1_prime = replace_occurrences_with_fresh(&e1, &mut fresh_pairs);

    // r'' = rule with the half-pure equation replaced by the u_i = v_i equations.
    let mut body: Vec<Literal> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != eq_ix)
        .map(|(_, l)| l.clone())
        .collect();
    for (u, v) in &fresh_pairs {
        body.push(Literal::eq(PathExpr::var(*u), PathExpr::var(*v)));
    }
    let r_double_prime = Rule::new(rule.head.clone(), body);

    // Solve e1' = e2 (one-sided nonlinear by construction), allowing empty words.
    let unify_eq = Equation::new(e1_prime, e2);
    let solutions = solve_allowing_empty(&unify_eq, &SolveOptions::default())?;

    // Variables pure in r'' (used for the validity check).
    let pure_in_rpp = pure_vars(&r_double_prime, flat_relations);

    let mut out = Vec::new();
    for rho in solutions {
        if !is_valid_substitution(&rho, &pure_in_rpp) {
            continue;
        }
        let new_rule = apply_substitution_to_rule(&r_double_prime, &rho);
        out.extend(purify_rule_rec(&new_rule, flat_relations, depth + 1)?);
    }
    Ok(out)
}

fn replace_occurrences_with_fresh(expr: &PathExpr, pairs: &mut Vec<(Var, Var)>) -> PathExpr {
    let terms = expr
        .terms()
        .iter()
        .map(|t| match t {
            Term::Var(v) => {
                let fresh = match v.kind {
                    VarKind::Atom => Var::fresh_atom("pv_a"),
                    VarKind::Path => Var::fresh_path("pv_p"),
                };
                pairs.push((*v, fresh));
                Term::Var(fresh)
            }
            Term::Packed(inner) => Term::Packed(replace_occurrences_with_fresh(inner, pairs)),
            Term::Const(a) => Term::Const(*a),
        })
        .collect::<Vec<_>>();
    PathExpr::from_terms(terms)
}

/// A substitution is *valid* (proof of Lemma 4.10) if it maps variables that are
/// pure in `r''` only to expressions without packing.
fn is_valid_substitution(rho: &Substitution, pure: &BTreeSet<Var>) -> bool {
    rho.iter()
        .all(|(v, e)| !pure.contains(&v) || !e.has_packing())
}

fn apply_substitution_to_rule(rule: &Rule, rho: &Substitution) -> Rule {
    rule.substitute(rho.as_map())
}

// ---------------------------------------------------------------------------
// Single-IDB strata
// ---------------------------------------------------------------------------

/// Re-stratify a non-recursive program so that every stratum defines exactly one IDB
/// relation, in dependency order (used by the proof of Lemma 4.13).
///
/// # Errors
/// [`RewriteError::RequiresNonRecursive`] if the program is recursive.
pub fn split_into_single_idb_strata(program: &Program) -> Result<Program, RewriteError> {
    let graph = DependencyGraph::of_program(program);
    if graph.has_cycle() {
        return Err(RewriteError::RequiresNonRecursive {
            rewrite: "single-IDB stratification",
        });
    }
    // Topological order: a relation comes after everything it depends on.
    let mut order: Vec<RelName> = Vec::new();
    let mut remaining: BTreeSet<RelName> = program.idb_relations();
    while !remaining.is_empty() {
        let next: Vec<RelName> = remaining
            .iter()
            .filter(|r| {
                graph
                    .successors(**r)
                    .iter()
                    .all(|s| !remaining.contains(s) || s == *r)
            })
            .copied()
            .collect();
        if next.is_empty() {
            return Err(RewriteError::RequiresNonRecursive {
                rewrite: "single-IDB stratification",
            });
        }
        for r in next {
            remaining.remove(&r);
            order.push(r);
        }
    }
    let mut strata = Vec::new();
    for relation in order {
        let rules: Vec<Rule> = program
            .rules()
            .filter(|r| r.head.relation == relation)
            .cloned()
            .collect();
        strata.push(Stratum::new(rules));
    }
    let result = Program::new(strata);
    // The topological order respects negation for stratified non-recursive programs.
    check_stratification(&result).map_err(|_| RewriteError::UnsupportedFeature {
        rewrite: "single-IDB stratification",
        feature: "negation of a relation defined later in the dependency order",
    })?;
    Ok(result)
}

// ---------------------------------------------------------------------------
// Packing elimination for non-recursive programs (Lemma 4.13)
// ---------------------------------------------------------------------------

/// Eliminate the **P** feature from a non-recursive program (Lemma 4.13).
///
/// `output` names the query's output relation; it keeps its name and its flat
/// (star-shaped) contents.  The rewritten program may use arity and intermediate
/// predicates (both redundant features).
///
/// # Errors
/// * [`RewriteError::UnsupportedRecursivePacking`] for recursive inputs;
/// * unification search limits during purification.
pub fn eliminate_packing_nonrecursive(
    program: &Program,
    output: RelName,
) -> Result<Program, RewriteError> {
    let features = FeatureSet::of_program(program);
    if features.recursion {
        return Err(RewriteError::UnsupportedRecursivePacking);
    }
    if !features.packing {
        return Ok(program.clone());
    }
    let split = split_into_single_idb_strata(program)?;
    let edb = program.edb_relations();

    // For every rewritten IDB relation, the packing structures it was specialised
    // into and the corresponding fresh relation names.
    let mut specialisations: BTreeMap<RelName, Vec<(PackingStructure, RelName)>> = BTreeMap::new();
    // Relations known to hold only flat paths in the rewritten program.
    let mut flat_relations: BTreeSet<RelName> = edb.clone();

    let mut new_strata: Vec<Stratum> = Vec::new();
    for stratum in &split.strata {
        let mut rules_after_calls: Vec<Rule> = Vec::new();
        for rule in &stratum.rules {
            rules_after_calls.extend(rewrite_positive_calls(rule, &specialisations));
        }

        // Purify (Lemma 4.10), then split equations along packing structures
        // (Lemma 4.12), then drop unsatisfiable literals/rules and rewrite negated
        // calls and heads (Lemma 4.13).
        let mut final_rules: Vec<Rule> = Vec::new();
        for rule in &rules_after_calls {
            for purified in purify_rule(rule, &flat_relations)? {
                for split_rule in split_rule_equations(&purified) {
                    if let Some(cleaned) =
                        clean_rule_for_flat_instances(&split_rule, &edb, &specialisations)
                    {
                        final_rules.push(cleaned);
                    }
                }
            }
        }

        // Specialise heads by packing structure.
        let mut specialised_rules: Vec<Rule> = Vec::new();
        for rule in &final_rules {
            specialised_rules.push(specialise_head(rule, &mut specialisations));
        }
        // Every specialised relation introduced in this stratum holds only
        // packing-free components.
        for specs in specialisations.values() {
            for (_, fresh) in specs {
                flat_relations.insert(*fresh);
            }
        }
        new_strata.push(Stratum::new(specialised_rules));
    }

    // Map the flat specialisation of the output relation back to its original name.
    let mut final_stratum = Vec::new();
    if let Some(specs) = specialisations.get(&output) {
        if let Some((_, flat_rel)) = specs.iter().find(|(ps, _)| ps.is_flat()) {
            let x = Var::fresh_path("out");
            final_stratum.push(Rule::new(
                Predicate::new(output, vec![PathExpr::var(x)]),
                vec![Literal::pred(Predicate::new(
                    *flat_rel,
                    vec![PathExpr::var(x)],
                ))],
            ));
        }
    }
    if !final_stratum.is_empty() {
        new_strata.push(Stratum::new(final_stratum));
    }
    Ok(Program::new(new_strata))
}

/// Rewrite positive calls to already-specialised relations: `P(e)` becomes, for each
/// packing structure `ps` of `P`, a copy of the rule with the call replaced by
/// `P_ps($f1, …, $fm) ∧ e = e'`, where `e'` is `ps` with its stars replaced by the
/// fresh variables (proof of Lemma 4.13).
fn rewrite_positive_calls(
    rule: &Rule,
    specialisations: &BTreeMap<RelName, Vec<(PackingStructure, RelName)>>,
) -> Vec<Rule> {
    // Find the first positive call to a specialised relation.
    let call = rule.body.iter().enumerate().find(|(_, lit)| {
        lit.positive
            && lit
                .atom
                .as_predicate()
                .is_some_and(|p| specialisations.contains_key(&p.relation))
    });
    let Some((ix, lit)) = call else {
        return vec![rule.clone()];
    };
    let pred = lit.atom.as_predicate().expect("checked").clone();
    // Only unary specialised relations exist (heads were unary before rewriting).
    let arg = pred.args.first().cloned().unwrap_or_else(PathExpr::empty);
    let mut out = Vec::new();
    for (ps, fresh_rel) in &specialisations[&pred.relation] {
        let fresh_vars: Vec<Var> = (0..ps.star_count())
            .map(|_| Var::fresh_path("ps"))
            .collect();
        let components: Vec<PathExpr> = fresh_vars.iter().map(|v| PathExpr::var(*v)).collect();
        let e_prime = ps.assemble(&components).expect("component count matches");
        let mut body: Vec<Literal> = rule
            .body
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != ix)
            .map(|(_, l)| l.clone())
            .collect();
        body.push(Literal::pred(Predicate::new(*fresh_rel, components)));
        // When the call's argument is a single path variable we can substitute the
        // packing-structure expression for it directly instead of adding the
        // equation `arg = e'`; this is exactly the (unique) solution associative
        // unification would find, and it keeps the rule count at the paper's size
        // (Example 4.14 reports 28 rules for Example 2.2).
        let new_rule = match arg.terms() {
            [Term::Var(v)] if v.is_path_var() && !e_prime.vars().contains(v) => {
                let map: BTreeMap<Var, PathExpr> = [(*v, e_prime)].into();
                Rule::new(rule.head.clone(), body).substitute(&map)
            }
            _ => {
                body.push(Literal::eq(arg.clone(), e_prime));
                Rule::new(rule.head.clone(), body)
            }
        };
        out.extend(rewrite_positive_calls(&new_rule, specialisations));
    }
    out
}

/// Split pure equations and nonequalities along packing structures (Lemma 4.12).
/// Returns the set of replacement rules (nonequalities are disjunctive, so one rule
/// per component).
fn split_rule_equations(rule: &Rule) -> Vec<Rule> {
    // First handle positive equations (conjunctive split, within one rule).
    let mut body: Vec<Literal> = Vec::new();
    for lit in &rule.body {
        match (&lit.atom, lit.positive) {
            (Atom::Eq(eq), true) if eq.has_packing() => {
                let ps1 = PackingStructure::of(&eq.lhs);
                let ps2 = PackingStructure::of(&eq.rhs);
                if ps1 != ps2 {
                    // Unsatisfiable on flat instances: drop the whole rule.
                    return Vec::new();
                }
                let c1 = PackingStructure::components(&eq.lhs);
                let c2 = PackingStructure::components(&eq.rhs);
                for (a, b) in c1.into_iter().zip(c2) {
                    body.push(Literal::eq(a, b));
                }
            }
            _ => body.push(lit.clone()),
        }
    }
    let rule = Rule::new(rule.head.clone(), body);

    // Then handle negated equations (disjunctive split, one rule per component).
    let neq_ix = rule
        .body
        .iter()
        .position(|lit| !lit.positive && lit.atom.as_equation().is_some_and(Equation::has_packing));
    let Some(ix) = neq_ix else {
        return vec![rule];
    };
    let eq = rule.body[ix].atom.as_equation().expect("checked").clone();
    let ps1 = PackingStructure::of(&eq.lhs);
    let ps2 = PackingStructure::of(&eq.rhs);
    let rest: Vec<Literal> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != ix)
        .map(|(_, l)| l.clone())
        .collect();
    if ps1 != ps2 {
        // Different structures: the nonequality is always true on flat instances.
        return split_rule_equations(&Rule::new(rule.head.clone(), rest));
    }
    let c1 = PackingStructure::components(&eq.lhs);
    let c2 = PackingStructure::components(&eq.rhs);
    let mut out = Vec::new();
    for (a, b) in c1.into_iter().zip(c2) {
        let mut body = rest.clone();
        body.push(Literal::neq(a, b));
        out.extend(split_rule_equations(&Rule::new(rule.head.clone(), body)));
    }
    out
}

/// Drop literals and rules that cannot matter on flat instances, and rewrite negated
/// calls to specialised relations (Lemma 4.13).  Returns `None` if the rule can
/// never fire.
fn clean_rule_for_flat_instances(
    rule: &Rule,
    edb: &BTreeSet<RelName>,
    specialisations: &BTreeMap<RelName, Vec<(PackingStructure, RelName)>>,
) -> Option<Rule> {
    let mut body = Vec::new();
    for lit in &rule.body {
        match &lit.atom {
            Atom::Pred(p) if p.has_packing() => {
                if edb.contains(&p.relation) || !specialisations.contains_key(&p.relation) {
                    if lit.positive {
                        // A positive flat predicate can never hold a packed path.
                        return None;
                    } else {
                        // The negated literal is vacuously true: drop it.
                        continue;
                    }
                } else {
                    // A negated call to a rewritten relation: specialise it.
                    debug_assert!(!lit.positive, "positive calls were rewritten earlier");
                    let arg = p.args.first().cloned().unwrap_or_else(PathExpr::empty);
                    let ps = PackingStructure::of(&arg);
                    match specialisations[&p.relation].iter().find(|(s, _)| *s == ps) {
                        Some((_, fresh_rel)) => {
                            let components = PackingStructure::components(&arg);
                            body.push(Literal {
                                positive: false,
                                atom: Atom::Pred(Predicate::new(*fresh_rel, components)),
                            });
                        }
                        None => {
                            // No rule ever derives this structure: the negation is
                            // vacuously true.
                            continue;
                        }
                    }
                }
            }
            Atom::Pred(p)
                if !lit.positive
                    && !p.has_packing()
                    && specialisations.contains_key(&p.relation) =>
            {
                // A packing-free negated call to a rewritten relation: it refers to
                // the flat specialisation if one exists, and is vacuously true
                // otherwise.
                let arg = p.args.first().cloned().unwrap_or_else(PathExpr::empty);
                match specialisations[&p.relation]
                    .iter()
                    .find(|(s, _)| s.is_flat())
                {
                    Some((_, fresh_rel)) => body.push(Literal {
                        positive: false,
                        atom: Atom::Pred(Predicate::new(*fresh_rel, vec![arg])),
                    }),
                    None => continue,
                }
            }
            _ => body.push(lit.clone()),
        }
    }
    Some(Rule::new(rule.head.clone(), body))
}

/// Replace the head `R(e)` by `R_δ(e)(c1, …, cm)` where the `ci` are the components
/// of `e` (Lemma 4.13).  Nullary heads are left untouched.
fn specialise_head(
    rule: &Rule,
    specialisations: &mut BTreeMap<RelName, Vec<(PackingStructure, RelName)>>,
) -> Rule {
    if rule.head.arity() != 1 {
        return rule.clone();
    }
    let relation = rule.head.relation;
    let arg = rule.head.args[0].clone();
    let ps = PackingStructure::of(&arg);
    let specs = specialisations.entry(relation).or_default();
    let fresh_rel = match specs.iter().find(|(s, _)| *s == ps) {
        Some((_, r)) => *r,
        None => {
            let fresh = RelName::fresh(&format!("{}_ps_{}_", relation.name(), ps.mangled()));
            specs.push((ps.clone(), fresh));
            fresh
        }
    };
    let components = PackingStructure::components(&arg);
    Rule::new(Predicate::new(fresh_rel, components), rule.body.clone())
}

// ---------------------------------------------------------------------------
// Doubling and undoubling (Theorem 4.15)
// ---------------------------------------------------------------------------

/// The doubling program of Theorem 4.15: computes in `to` the doubled versions
/// `k1·k1·k2·k2·…·kn·kn` of the paths of the unary relation `from`.
pub fn doubling_program(from: RelName, to: RelName) -> Program {
    let text = format!(
        "Tdbl(eps, $x) <- {from}($x).\n\
         Tdbl($x·@y·@y, $z) <- Tdbl($x, @y·$z).\n\
         {to}($x) <- Tdbl($x, eps).",
        from = from.name(),
        to = to.name(),
    );
    parse_program(&text).expect("doubling program is well-formed")
}

/// The undoubling program of Theorem 4.15: computes in `to` the un-doubled versions
/// of the (doubled) paths of the unary relation `from`.
pub fn undoubling_program(from: RelName, to: RelName) -> Program {
    let text = format!(
        "Tundbl($x, eps) <- {from}($x).\n\
         Tundbl($x, @y·$z) <- Tundbl($x·@y·@y, $z).\n\
         {to}($x) <- Tundbl(eps, $x).",
        from = from.name(),
        to = to.name(),
    );
    parse_program(&text).expect("undoubling program is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, rel, repeat_path, Fact, Instance, Path};
    use seqdl_engine::{run_boolean_query, run_unary_query};
    use seqdl_syntax::{parse_expr, parse_rule};

    // -- packing structures --------------------------------------------------

    #[test]
    fn packing_structure_of_example_4_11() {
        // e = @a·⟨⟨$x·$y⟩·$z⟩·⟨ε⟩ has δ(e) = ∗·⟨∗·⟨∗⟩·∗⟩·∗·⟨∗⟩·∗ and 7 components.
        let e = parse_expr("@a·<<$x·$y>·$z>·<eps>").unwrap();
        let ps = PackingStructure::of(&e);
        assert_eq!(ps.to_string(), "*·<*·<*>·*>·*·<*>·*");
        assert_eq!(ps.star_count(), 7);
        let components = PackingStructure::components(&e);
        assert_eq!(components.len(), 7);
        let rendered: Vec<String> = components.iter().map(|c| c.to_string()).collect();
        assert_eq!(
            rendered,
            vec!["@a", "eps", "$x·$y", "$z", "eps", "eps", "eps"]
        );
        // Reassembling the components gives back the original expression.
        assert_eq!(ps.assemble(&components), Some(e));
    }

    #[test]
    fn packing_structure_of_flat_expressions_is_a_single_star() {
        for src in ["eps", "a", "a·$x·@y·b"] {
            let e = parse_expr(src).unwrap();
            let ps = PackingStructure::of(&e);
            assert!(ps.is_flat(), "{src}");
            assert_eq!(ps.star_count(), 1);
            assert_eq!(PackingStructure::components(&e), vec![e]);
        }
        assert_ne!(
            PackingStructure::of(&parse_expr("<a>").unwrap()),
            PackingStructure::flat()
        );
    }

    #[test]
    fn mangled_names_distinguish_structures() {
        let a = PackingStructure::of(&parse_expr("<a>").unwrap());
        let b = PackingStructure::of(&parse_expr("<a>·<b>").unwrap());
        let c = PackingStructure::of(&parse_expr("<<a>>").unwrap());
        assert_ne!(a.mangled(), b.mangled());
        assert_ne!(a.mangled(), c.mangled());
        assert_ne!(b.mangled(), c.mangled());
    }

    // -- purity ----------------------------------------------------------------

    #[test]
    fn purity_classification_of_example_4_9() {
        let flat: BTreeSet<RelName> = [rel("R")].into();
        // First rule of Example 4.9: all three equations are pure.
        let r1 = parse_rule("S($x) <- R($x, $y), <$x> = <$y>, a·$x = $z, $y = <$u>.").unwrap();
        let pure = pure_vars(&r1, &flat);
        assert!(pure.contains(&Var::path("x")));
        assert!(pure.contains(&Var::path("y")));
        assert!(pure.contains(&Var::path("z")));
        // $u is pure too: the other side of $y = <$u> is $y, which is pure and
        // packing-free (that is exactly why the paper calls this equation pure).
        assert!(pure.contains(&Var::path("u")));
        for eq in r1.positive_body_equations() {
            let class = classify_equation(eq, &pure);
            assert_eq!(class, EquationPurity::Pure, "{eq}");
        }

        // Second rule: both equations are half-pure.
        let r2 = parse_rule("S($x) <- R($x, $y), <$y> = $z, <$x> = <$z>.").unwrap();
        let pure = pure_vars(&r2, &flat);
        assert!(!pure.contains(&Var::path("z")));
        for eq in r2.positive_body_equations() {
            assert_eq!(
                classify_equation(eq, &pure),
                EquationPurity::HalfPure,
                "{eq}"
            );
        }

        // Third rule: ⟨$t⟩ = ⟨$z⟩ is fully impure.
        let r3 = parse_rule("S($x) <- R($x, $y), <$t> = <$z>, $z = <$y>, $t = <$x>.").unwrap();
        let pure = pure_vars(&r3, &flat);
        let fully = r3
            .positive_body_equations()
            .iter()
            .filter(|eq| classify_equation(eq, &pure) == EquationPurity::FullyImpure)
            .count();
        assert_eq!(fully, 1);
    }

    #[test]
    fn purify_rule_eliminates_impure_variables() {
        let flat: BTreeSet<RelName> = [rel("R")].into();
        // $z is impure: bound to <$y> by a half-pure equation; the other equation
        // compares it with <$x>.  After purification the rule should be expressed
        // with pure equations only (and be equivalent to requiring $x = $y).
        let rule = parse_rule("S($x) <- R($x·$y), <$y> = $z, <$x> = <$z>.").unwrap();
        let purified = purify_rule(&rule, &flat).unwrap();
        assert!(!purified.is_empty());
        for r in &purified {
            let pure = pure_vars(r, &flat);
            for eq in r.positive_body_equations() {
                assert_eq!(classify_equation(eq, &pure), EquationPurity::Pure, "{r}");
            }
        }
    }

    // -- single-IDB stratification ----------------------------------------------

    #[test]
    fn split_into_single_idb_strata_orders_by_dependency() {
        let program = seqdl_syntax::parse_program(
            "S($x) <- T($x), U($x).\nT($x) <- R($x).\nU($x) <- T($x·a).",
        )
        .unwrap();
        let split = split_into_single_idb_strata(&program).unwrap();
        assert_eq!(split.stratum_count(), 3);
        // T must come before U and S; U before S.
        let order: Vec<RelName> = split
            .strata
            .iter()
            .map(|s| *s.head_relations().iter().next().unwrap())
            .collect();
        let pos = |r: RelName| order.iter().position(|x| *x == r).unwrap();
        assert!(pos(rel("T")) < pos(rel("U")));
        assert!(pos(rel("U")) < pos(rel("S")));

        let recursive = seqdl_syntax::parse_program("T($x·a) <- T($x).\nT($x) <- R($x).").unwrap();
        assert!(split_into_single_idb_strata(&recursive).is_err());
    }

    // -- packing elimination -------------------------------------------------

    fn three_occurrence_instance(hay: &[&str], needle: &[&str]) -> Instance {
        let mut input = Instance::unary(rel("R"), [path_of(hay)]);
        input
            .insert_fact(Fact::new(rel("S"), vec![path_of(needle)]))
            .unwrap();
        input
    }

    #[test]
    fn example_2_2_packing_elimination_preserves_the_boolean_query() {
        // Example 2.2 / Example 4.14: at least three different occurrences of a
        // string from S as a substring of strings from R.
        let program = seqdl_syntax::parse_program(
            "T($u·<$s>·$v) <- R($u·$s·$v), S($s).\n\
             A <- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.",
        )
        .unwrap();
        let rewritten = eliminate_packing_nonrecursive(&program, rel("A")).unwrap();
        assert!(
            !FeatureSet::of_program(&rewritten).packing,
            "packing not eliminated:\n{rewritten}"
        );
        // Example 4.14 reports that the rewriting yields a program with 28 rules
        // (1 projection rule for T plus 3×3×3 nonequality combinations for A).
        assert_eq!(rewritten.rule_count(), 28);
        let cases: Vec<(Instance, bool)> = vec![
            (
                three_occurrence_instance(&["a", "b", "x", "a", "b", "y", "a", "b"], &["a", "b"]),
                true,
            ),
            (
                three_occurrence_instance(&["a", "b", "x", "a", "b"], &["a", "b"]),
                false,
            ),
            (
                three_occurrence_instance(&["a", "a", "a", "a"], &["a"]),
                true,
            ),
            (three_occurrence_instance(&["a", "a"], &["a"]), false),
        ];
        for (input, expected) in cases {
            let original = run_boolean_query(&program, &input, rel("A")).unwrap();
            let new = run_boolean_query(&rewritten, &input, rel("A")).unwrap();
            assert_eq!(original, expected);
            assert_eq!(new, expected, "rewritten program diverges on {input}");
        }
    }

    #[test]
    fn unary_packing_query_is_preserved() {
        // S returns the strings whose packed version appears in the intermediate T.
        let program =
            seqdl_syntax::parse_program("T(<$x>·$x) <- R($x).\nS($y) <- T(<$y>·$y), Q($y).")
                .unwrap();
        let rewritten = eliminate_packing_nonrecursive(&program, rel("S")).unwrap();
        assert!(!FeatureSet::of_program(&rewritten).packing, "{rewritten}");
        let mut input = Instance::unary(rel("R"), [path_of(&["a", "b"]), path_of(&["c"])]);
        for q in [path_of(&["a", "b"]), path_of(&["z"])] {
            input.insert_fact(Fact::new(rel("Q"), vec![q])).unwrap();
        }
        assert_eq!(
            run_unary_query(&program, &input, rel("S")).unwrap(),
            run_unary_query(&rewritten, &input, rel("S")).unwrap()
        );
        assert_eq!(
            run_unary_query(&rewritten, &input, rel("S")).unwrap(),
            [path_of(&["a", "b"])].into()
        );
    }

    #[test]
    fn negated_packed_calls_are_specialised() {
        // S holds the R-strings whose packed version is NOT in T.
        let program =
            seqdl_syntax::parse_program("T(<$x>) <- Q($x).\n---\nS($y) <- R($y), !T(<$y>).")
                .unwrap();
        let rewritten = eliminate_packing_nonrecursive(&program, rel("S")).unwrap();
        assert!(!FeatureSet::of_program(&rewritten).packing, "{rewritten}");
        let mut input = Instance::unary(rel("R"), [path_of(&["a"]), path_of(&["b"])]);
        input
            .insert_fact(Fact::new(rel("Q"), vec![path_of(&["a"])]))
            .unwrap();
        let expected: BTreeSet<Path> = [path_of(&["b"])].into();
        assert_eq!(
            run_unary_query(&program, &input, rel("S")).unwrap(),
            expected
        );
        assert_eq!(
            run_unary_query(&rewritten, &input, rel("S")).unwrap(),
            expected
        );
    }

    #[test]
    fn packing_free_programs_pass_through_unchanged() {
        let program = seqdl_syntax::parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        assert_eq!(
            eliminate_packing_nonrecursive(&program, rel("S")).unwrap(),
            program
        );
    }

    #[test]
    fn recursive_packing_is_reported_as_unsupported() {
        let program = seqdl_syntax::parse_program(
            "T(<$x>) <- R($x).\nT(<$x>·$y) <- T($y), R($x).\nS($x) <- T($x).",
        )
        .unwrap();
        assert!(matches!(
            eliminate_packing_nonrecursive(&program, rel("S")),
            Err(RewriteError::UnsupportedRecursivePacking)
        ));
    }

    // -- doubling / undoubling -------------------------------------------------

    #[test]
    fn doubling_and_undoubling_programs_invert_each_other() {
        let doubling = doubling_program(rel("R"), rel("Rd"));
        let undoubling = undoubling_program(rel("Rd"), rel("Rback"));
        let paths = [path_of(&["k1", "k2", "k3"]), path_of(&["a"]), Path::empty()];
        let input = Instance::unary(rel("R"), paths);
        let doubled = seqdl_engine::Engine::new().run(&doubling, &input).unwrap();
        let doubled_paths = doubled.unary_paths(rel("Rd"));
        assert_eq!(
            doubled_paths,
            paths.iter().map(Path::doubled).collect::<BTreeSet<_>>()
        );
        // Feed the doubled relation into the undoubling program.
        let input2 = Instance::unary(rel("Rd"), doubled_paths);
        let undoubled = seqdl_engine::Engine::new()
            .run(&undoubling, &input2)
            .unwrap();
        assert_eq!(
            undoubled.unary_paths(rel("Rback")),
            paths.into_iter().collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn doubling_program_avoids_negation_as_promised_by_the_proof() {
        let p = doubling_program(rel("R"), rel("Rd"));
        let f = FeatureSet::of_program(&p);
        assert!(!f.negation);
        assert!(f.arity && f.recursion);
        let p = undoubling_program(rel("Sd"), rel("S"));
        assert!(!FeatureSet::of_program(&p).negation);
    }

    #[test]
    fn repeated_a_inputs_work_through_doubling() {
        let doubling = doubling_program(rel("R"), rel("Rd"));
        let input = Instance::unary(rel("R"), [repeat_path("a", 4)]);
        let out = seqdl_engine::Engine::new().run(&doubling, &input).unwrap();
        assert!(out.unary_paths(rel("Rd")).contains(&repeat_path("a", 8)));
    }
}
