//! Arity elimination (Lemma 4.1 and Theorem 4.2).
//!
//! The pairing encoding of Lemma 4.1 represents a pair of paths `(s1, s2)` by the
//! single path `s1·a·s2·a·s1·b·s2`, where `a` and `b` are any two distinct atomic
//! values.  The encoding is injective (the lemma), so a predicate of arity `n ≥ 2`
//! can be replaced by a predicate of arity `n − 1` whose last component encodes the
//! last two original components; iterating reduces every IDB predicate to arity one.
//!
//! Only IDB predicates are rewritten: queries are defined over monadic schemas
//! (Section 3.1), so EDB predicates already have arity at most one; a program whose
//! EDB relations have higher arity is rejected.

use crate::error::RewriteError;
use seqdl_syntax::{Atom, Literal, PathExpr, Predicate, Program, Rule, Term};
use std::collections::BTreeSet;

/// The two distinct atomic values used by the pairing encoding.  Lemma 4.1 holds for
/// *any* two distinct atomic values, including ones that occur in the data, so no
/// freshness condition is needed.
fn encoding_atoms() -> (Term, Term) {
    (Term::constant("a"), Term::constant("b"))
}

/// Encode the pair of expressions `(e1, e2)` as `e1·a·e2·a·e1·b·e2` (Lemma 4.1).
pub fn encode_pair(e1: &PathExpr, e2: &PathExpr) -> PathExpr {
    let (a, b) = encoding_atoms();
    let a = PathExpr::singleton(a);
    let b = PathExpr::singleton(b);
    e1.concat(&a)
        .concat(e2)
        .concat(&a)
        .concat(e1)
        .concat(&b)
        .concat(e2)
}

/// Reduce a predicate's arity to at most one by repeatedly encoding its last two
/// components.
fn encode_predicate(pred: &Predicate) -> Predicate {
    let mut args = pred.args.clone();
    while args.len() > 1 {
        let e2 = args.pop().expect("len > 1");
        let e1 = args.pop().expect("len > 1");
        args.push(encode_pair(&e1, &e2));
    }
    Predicate::new(pred.relation, args)
}

/// Eliminate the **A** feature: rewrite every IDB predicate of arity greater than
/// one using the pairing encoding of Lemma 4.1 (Theorem 4.2).
///
/// # Errors
/// [`RewriteError::NonMonadicEdb`] if some EDB relation has arity greater than one.
pub fn eliminate_arity(program: &Program) -> Result<Program, RewriteError> {
    let idb: BTreeSet<_> = program.idb_relations();
    // Reject non-monadic EDB relations: we cannot re-encode the input data.
    for rule in program.rules() {
        for lit in &rule.body {
            if let Atom::Pred(p) = &lit.atom {
                if !idb.contains(&p.relation) && p.arity() > 1 {
                    return Err(RewriteError::NonMonadicEdb {
                        relation: p.relation.name(),
                    });
                }
            }
        }
    }

    let rewritten = program.map_rules(|rule| {
        let head = if idb.contains(&rule.head.relation) {
            encode_predicate(&rule.head)
        } else {
            rule.head.clone()
        };
        let body = rule
            .body
            .iter()
            .map(|lit| match &lit.atom {
                Atom::Pred(p) if idb.contains(&p.relation) && p.arity() > 1 => Literal {
                    positive: lit.positive,
                    atom: Atom::Pred(encode_predicate(p)),
                },
                _ => lit.clone(),
            })
            .collect();
        Rule::new(head, body)
    });
    Ok(rewritten)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, rel, repeat_path, Instance, Path};
    use seqdl_engine::run_unary_query;
    use seqdl_syntax::{parse_expr, parse_program, FeatureSet};
    use std::collections::BTreeSet;

    #[test]
    fn encode_pair_matches_example_4_3() {
        // enc($x, ε) = $x·a·a·$x·b  and  enc(ε, $x) = a·$x·a·b·$x.
        let x = parse_expr("$x").unwrap();
        let eps = PathExpr::empty();
        assert_eq!(encode_pair(&x, &eps), parse_expr("$x·a·a·$x·b").unwrap());
        assert_eq!(encode_pair(&eps, &x), parse_expr("a·$x·a·b·$x").unwrap());
    }

    #[test]
    fn encoding_is_injective_on_ground_pairs() {
        // Brute-force check of Lemma 4.1 over small flat paths (including paths that
        // themselves contain the encoding atoms a and b).
        let alphabet = ["a", "b", "c"];
        let mut paths = vec![Path::empty()];
        for &x in &alphabet {
            for &y in &alphabet {
                paths.push(path_of(&[x]));
                paths.push(path_of(&[x, y]));
            }
        }
        paths.sort();
        paths.dedup();
        let mut seen = std::collections::BTreeMap::new();
        for p1 in &paths {
            for p2 in &paths {
                let enc = encode_pair(&PathExpr::from_path(p1), &PathExpr::from_path(p2))
                    .as_path()
                    .expect("ground");
                if let Some(prev) = seen.insert(enc, (*p1, *p2)) {
                    panic!("collision: {prev:?} and {:?}", (p1, p2));
                }
            }
        }
    }

    #[test]
    fn reversal_program_still_computes_reversal_after_arity_elimination() {
        // Example 4.3.
        let program = parse_program(
            "T($x, eps) <- R($x).\nT($x, $y·@u) <- T($x·@u, $y).\nS($x) <- T(eps, $x).",
        )
        .unwrap();
        let rewritten = eliminate_arity(&program).unwrap();
        let features = FeatureSet::of_program(&rewritten);
        assert!(!features.arity, "arity not eliminated: {rewritten}");

        for input_paths in [
            vec![path_of(&["x", "y", "z"])],
            vec![path_of(&["a", "b"]), path_of(&["c"])],
            vec![Path::empty()],
            vec![repeat_path("a", 5)],
        ] {
            let input = Instance::unary(rel("R"), input_paths.clone());
            let expected: BTreeSet<Path> = input_paths.iter().map(Path::reversed).collect();
            let original = run_unary_query(&program, &input, rel("S")).unwrap();
            let new = run_unary_query(&rewritten, &input, rel("S")).unwrap();
            assert_eq!(original, expected);
            assert_eq!(
                new, expected,
                "rewritten program diverges on {input_paths:?}"
            );
        }
    }

    #[test]
    fn squaring_program_survives_arity_elimination() {
        let program = parse_program(
            "T(eps, $x, $x) <- R($x).\nT($y·$x, $x, $z) <- T($y, $x, a·$z).\nS($y) <- T($y, $x, eps).",
        )
        .unwrap();
        let rewritten = eliminate_arity(&program).unwrap();
        assert!(!FeatureSet::of_program(&rewritten).arity);
        for n in [0usize, 1, 3] {
            let input = Instance::unary(rel("R"), [repeat_path("a", n)]);
            let original = run_unary_query(&program, &input, rel("S")).unwrap();
            let new = run_unary_query(&rewritten, &input, rel("S")).unwrap();
            assert_eq!(original, new, "divergence at n={n}");
            assert!(new.contains(&repeat_path("a", n * n)));
        }
    }

    #[test]
    fn non_monadic_edb_is_rejected() {
        let program = parse_program("S(@x) <- D(@x, @y, @z).").unwrap();
        assert!(matches!(
            eliminate_arity(&program),
            Err(RewriteError::NonMonadicEdb { .. })
        ));
    }

    #[test]
    fn monadic_programs_are_untouched() {
        let program = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        assert_eq!(eliminate_arity(&program).unwrap(), program);
    }

    #[test]
    fn negated_idb_predicates_are_also_encoded() {
        let program =
            parse_program("T($x, $x) <- R($x).\n---\nS($x) <- R($x), !T($x, $x·a).").unwrap();
        let rewritten = eliminate_arity(&program).unwrap();
        assert!(!FeatureSet::of_program(&rewritten).arity);
        // R(a·a) is in T as (a·a, a·a) but not as (a·a, a·a·a): S contains a·a.
        let input = Instance::unary(rel("R"), [path_of(&["a", "a"])]);
        let original = run_unary_query(&program, &input, rel("S")).unwrap();
        let new = run_unary_query(&rewritten, &input, rel("S")).unwrap();
        assert_eq!(original, new);
        assert_eq!(new.len(), 1);
    }
}
