//! # seqdl-rewrite — feature-elimination transformations
//!
//! This crate implements, as executable source-to-source rewrites, every
//! constructive redundancy result of *Expressiveness within Sequence Datalog*
//! (PODS 2021):
//!
//! | Paper result | Function |
//! |---|---|
//! | Lemma 4.1 / Theorem 4.2 — arity is redundant | [`eliminate_arity`] |
//! | Example 4.4 — positive equations are redundant given I, A | [`eliminate_positive_equations`] |
//! | Lemma 4.5 / Theorem 4.7 — equations are redundant given I | [`eliminate_equations`] |
//! | Lemma 4.10 — impure variables can be eliminated | [`purify_rule`] |
//! | Lemma 4.12 — packing structures split pure equations | [`PackingStructure`] |
//! | Lemma 4.13 — packing is redundant without recursion | [`eliminate_packing_nonrecursive`] |
//! | Theorem 4.15 — doubling / undoubling helper programs | [`doubling_program`], [`undoubling_program`] |
//! | Theorem 4.16 — intermediate predicates are redundant given E, without N, R | [`fold_intermediate_predicates`] |
//! | Lemma 7.2 — normal form for nonrecursive equation-free programs | [`to_normal_form`] |
//!
//! Every rewrite preserves the *flat unary query* computed by the program
//! (Section 3.1); the test-suites check this by differential evaluation against the
//! original program on concrete instances.
//!
//! Beyond the paper's feature eliminations, [`magic`] adapts the classical
//! magic-set *demand* transformation to sequence datalog (first-value
//! adornments matched to the storage layer's column index), powering the
//! `seqdl query` goal-directed evaluation pipeline, and [`strip_dead`]
//! removes rules that provably cannot contribute to the output relations
//! (unreachable heads, statically unsatisfiable bodies, reads from
//! statically empty relations) before the program is lowered to RAM.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arity;
pub mod equations;
pub mod error;
pub mod folding;
pub mod magic;
pub mod normal_form;
pub mod packing;
pub mod strip_dead;

pub use arity::{eliminate_arity, encode_pair};
pub use equations::{
    eliminate_equations, eliminate_negated_equations, eliminate_positive_equations,
};
pub use error::RewriteError;
pub use folding::fold_intermediate_predicates;
pub use magic::{goal_matches, magic, parse_goal, MagicProgram};
pub use normal_form::{classify_rule, to_normal_form, NormalForm};
pub use packing::{
    doubling_program, eliminate_packing_nonrecursive, purify_rule, split_into_single_idb_strata,
    undoubling_program, PackingStructure,
};
pub use strip_dead::{
    always_false_reason, needed_relations, nonempty_relations, statically_empty_relations,
    statically_empty_relations_seeded, strip_dead, strip_dead_seeded, strip_dead_with_edb,
    RemovedRule, StripReason, StripReport,
};

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_syntax::{parse_program, FeatureSet};

    #[test]
    fn public_api_smoke_test() {
        // Example 3.1 with an equation: eliminating equations introduces an
        // intermediate predicate and drops the E feature.
        let p = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        let rewritten = eliminate_equations(&p).unwrap();
        let features = FeatureSet::of_program(&rewritten);
        assert!(!features.equations);
        assert!(features.intermediate || features.arity);
    }
}
