//! Intermediate-predicate elimination by folding (Theorem 4.16).
//!
//! In the absence of negation and recursion, intermediate predicates are redundant
//! provided equations are available: every call `P(e1, …, en)` to an intermediate
//! relation can be *folded*, replacing the call by the body of each rule defining
//! `P` (with fresh variables) plus equations unifying the call's arguments with the
//! head's arguments.  Iterating removes every IDB relation other than the output.

use crate::error::RewriteError;
use seqdl_core::RelName;
use seqdl_syntax::{FeatureSet, Literal, Program, Rule, Stratum};

/// Fold away every intermediate predicate, leaving `output` as the only IDB
/// relation (Theorem 4.16).
///
/// # Errors
/// * [`RewriteError::RequiresNonRecursive`] if the program is recursive.
/// * [`RewriteError::UnsupportedFeature`] if the program uses negation.
/// * [`RewriteError::IterationLimit`] if folding does not converge (cannot happen
///   for non-recursive inputs).
pub fn fold_intermediate_predicates(
    program: &Program,
    output: RelName,
) -> Result<Program, RewriteError> {
    let features = FeatureSet::of_program(program);
    if features.recursion {
        return Err(RewriteError::RequiresNonRecursive {
            rewrite: "intermediate-predicate folding",
        });
    }
    if features.negation {
        return Err(RewriteError::UnsupportedFeature {
            rewrite: "intermediate-predicate folding",
            feature: "negation",
        });
    }

    // Without negation, strata are irrelevant: flatten into a single rule list.
    let mut rules: Vec<Rule> = program.rules().cloned().collect();
    let idb = program.idb_relations();

    for _round in 0..10_000 {
        // Find a rule (any rule) whose body calls an IDB relation.
        let position = rules.iter().position(|r| {
            r.body.iter().any(|lit| {
                lit.positive
                    && lit
                        .atom
                        .as_predicate()
                        .is_some_and(|p| idb.contains(&p.relation))
            })
        });
        let Some(rule_ix) = position else {
            // Done: drop rules whose head is not the output relation; they can no
            // longer contribute to it.
            let final_rules: Vec<Rule> = rules
                .into_iter()
                .filter(|r| r.head.relation == output)
                .collect();
            return Ok(Program::new(vec![Stratum::new(final_rules)]));
        };
        let rule = rules[rule_ix].clone();
        // The first positive IDB call in the body.
        let call_pos = rule
            .body
            .iter()
            .position(|lit| {
                lit.positive
                    && lit
                        .atom
                        .as_predicate()
                        .is_some_and(|p| idb.contains(&p.relation))
            })
            .expect("found above");
        let call = rule.body[call_pos]
            .atom
            .as_predicate()
            .expect("checked predicate")
            .clone();

        // Resolve the call against every rule defining the called relation.
        let defining: Vec<Rule> = rules
            .iter()
            .filter(|r| r.head.relation == call.relation)
            .cloned()
            .collect();
        let mut replacements = Vec::new();
        for def in &defining {
            let fresh = def.freshen_vars("fold_");
            if fresh.head.arity() != call.arity() {
                continue;
            }
            let mut body: Vec<Literal> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != call_pos)
                .map(|(_, l)| l.clone())
                .collect();
            body.extend(fresh.body.iter().cloned());
            for (call_arg, head_arg) in call.args.iter().zip(fresh.head.args.iter()) {
                body.push(Literal::eq(call_arg.clone(), head_arg.clone()));
            }
            replacements.push(Rule::new(rule.head.clone(), body));
        }
        rules.remove(rule_ix);
        for (i, r) in replacements.into_iter().enumerate() {
            rules.insert(rule_ix + i, r);
        }
    }
    Err(RewriteError::IterationLimit {
        rewrite: "intermediate-predicate folding",
    })
}

/// Does any body literal of the program call an IDB relation other than `output`?
/// (Used by tests to check that folding is complete.)
pub fn calls_intermediate(program: &Program, output: RelName) -> bool {
    let idb = program.idb_relations();
    program.rules().any(|r| {
        r.head.relation != output
            || r.body.iter().any(|lit| {
                lit.atom
                    .as_predicate()
                    .is_some_and(|p| idb.contains(&p.relation) && p.relation != output)
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, rel, repeat_path, Instance, Path};
    use seqdl_engine::run_unary_query;
    use seqdl_syntax::parse_program;
    use std::collections::BTreeSet;

    #[test]
    fn two_stage_pipeline_folds_to_a_single_relation() {
        // T holds suffixes after stripping a leading a; S strips a leading b from T.
        let program = parse_program("T($y) <- R(a·$y).\nS($z) <- T(b·$z).").unwrap();
        let folded = fold_intermediate_predicates(&program, rel("S")).unwrap();
        assert!(!calls_intermediate(&folded, rel("S")), "{folded}");
        assert_eq!(folded.idb_relations(), BTreeSet::from([rel("S")]));

        for paths in [
            vec![path_of(&["a", "b", "c"]), path_of(&["a", "b"])],
            vec![path_of(&["b", "a"]), path_of(&["a", "c", "d"])],
            vec![Path::empty()],
        ] {
            let input = Instance::unary(rel("R"), paths.clone());
            assert_eq!(
                run_unary_query(&program, &input, rel("S")).unwrap(),
                run_unary_query(&folded, &input, rel("S")).unwrap(),
                "divergence on {paths:?}"
            );
        }
    }

    #[test]
    fn multiple_defining_rules_produce_one_folded_rule_each() {
        let program =
            parse_program("T($x) <- R($x·a).\nT($x) <- R(b·$x).\nS($x·$x) <- T($x).").unwrap();
        let folded = fold_intermediate_predicates(&program, rel("S")).unwrap();
        assert_eq!(folded.idb_relations(), BTreeSet::from([rel("S")]));
        assert_eq!(folded.rule_count(), 2);
        let input = Instance::unary(
            rel("R"),
            [path_of(&["c", "a"]), path_of(&["b", "d"]), path_of(&["e"])],
        );
        assert_eq!(
            run_unary_query(&program, &input, rel("S")).unwrap(),
            run_unary_query(&folded, &input, rel("S")).unwrap()
        );
    }

    #[test]
    fn multiple_calls_in_one_body_are_folded() {
        // S contains concatenations of two T-paths.
        let program = parse_program("T($x) <- R(a·$x).\nS($x·$y) <- T($x), T($y).").unwrap();
        let folded = fold_intermediate_predicates(&program, rel("S")).unwrap();
        assert_eq!(folded.idb_relations(), BTreeSet::from([rel("S")]));
        let input = Instance::unary(rel("R"), [path_of(&["a", "p"]), path_of(&["a", "q"])]);
        let original = run_unary_query(&program, &input, rel("S")).unwrap();
        let new = run_unary_query(&folded, &input, rel("S")).unwrap();
        assert_eq!(original, new);
        assert!(original.contains(&path_of(&["p", "q"])));
        assert!(original.contains(&path_of(&["q", "p"])));
    }

    #[test]
    fn deeper_pipelines_fold_transitively() {
        let program = parse_program(
            "T1($x) <- R($x).\nT2($x·$x) <- T1($x).\nT3($x·c) <- T2($x).\nS($x) <- T3($x).",
        )
        .unwrap();
        let folded = fold_intermediate_predicates(&program, rel("S")).unwrap();
        assert_eq!(folded.idb_relations(), BTreeSet::from([rel("S")]));
        let input = Instance::unary(rel("R"), [repeat_path("a", 2)]);
        let expected: BTreeSet<Path> = [path_of(&["a", "a", "a", "a", "c"])].into();
        assert_eq!(
            run_unary_query(&folded, &input, rel("S")).unwrap(),
            expected
        );
        assert_eq!(
            run_unary_query(&program, &input, rel("S")).unwrap(),
            expected
        );
    }

    #[test]
    fn bodiless_facts_fold_into_ground_equations() {
        let program = parse_program("T(a·b).\nS($x) <- T($x), R($x).").unwrap();
        let folded = fold_intermediate_predicates(&program, rel("S")).unwrap();
        assert_eq!(folded.idb_relations(), BTreeSet::from([rel("S")]));
        let input = Instance::unary(rel("R"), [path_of(&["a", "b"]), path_of(&["a"])]);
        assert_eq!(
            run_unary_query(&program, &input, rel("S")).unwrap(),
            run_unary_query(&folded, &input, rel("S")).unwrap()
        );
    }

    #[test]
    fn recursion_and_negation_are_rejected() {
        let recursive =
            parse_program("T($x·a) <- T($x).\nT($x) <- R($x).\nS($x) <- T($x).").unwrap();
        assert!(matches!(
            fold_intermediate_predicates(&recursive, rel("S")),
            Err(RewriteError::RequiresNonRecursive { .. })
        ));
        let negated = parse_program("T($x) <- R($x).\n---\nS($x) <- R($x), !T($x).").unwrap();
        assert!(matches!(
            fold_intermediate_predicates(&negated, rel("S")),
            Err(RewriteError::UnsupportedFeature { .. })
        ));
    }

    #[test]
    fn programs_with_only_the_output_relation_are_unchanged_semantically() {
        let program = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        let folded = fold_intermediate_predicates(&program, rel("S")).unwrap();
        let input = Instance::unary(rel("R"), [repeat_path("a", 2), path_of(&["b"])]);
        assert_eq!(
            run_unary_query(&program, &input, rel("S")).unwrap(),
            run_unary_query(&folded, &input, rel("S")).unwrap()
        );
    }
}
