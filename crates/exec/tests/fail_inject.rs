//! Differential fault-injection tests for panic containment and recovery.
//!
//! Compiled only with `--features fail-inject`: the injector arms a global
//! countdown and the chosen worker job panics inside the executor's
//! `catch_unwind` region.  The tests prove the full robustness story — the
//! panic poisons the run, surviving workers drain, and under
//! [`RecoveryPolicy::Sequential`] the stratum retries on the single-threaded
//! engine path and still produces an output identical to an uninjected run.
#![cfg(feature = "fail-inject")]

use seqdl_core::{path_of, rel, Fact, Instance};
use seqdl_engine::{Engine, EvalError};
use seqdl_exec::{fail, Executor, RecoveryPolicy};
use seqdl_syntax::parse_program;

fn reachability_program() -> seqdl_syntax::Program {
    parse_program("T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).\nS($p) <- T($p).")
        .unwrap()
}

fn graph_instance() -> Instance {
    let mut input = Instance::new();
    for (x, y) in [
        ("a", "b"),
        ("b", "c"),
        ("c", "d"),
        ("d", "e"),
        ("e", "a"),
        ("b", "f"),
        ("f", "g"),
    ] {
        input
            .insert_fact(Fact::new(rel("R"), vec![path_of(&[x, y])]))
            .unwrap();
    }
    input
}

/// The single test entry point: the injector's countdown is process-global
/// state, so every scenario runs serially inside one `#[test]`.
#[test]
fn injected_worker_panics_recover_or_surface() {
    let program = reachability_program();
    let input = graph_instance();
    let reference = Engine::new().run(&program, &input).unwrap();

    // Sequential recovery: the injected panic poisons the run, the stratum
    // retries single-threaded, and the final instance is identical to the
    // uninjected reference — at every thread count and at two different
    // injection points.
    for threads in [1usize, 2, 4] {
        for k in [0usize, 2] {
            fail::arm(k);
            let out = Executor::new()
                .with_threads(threads)
                .with_recovery(RecoveryPolicy::Sequential)
                .run(&program, &input)
                .unwrap_or_else(|e| panic!("threads={threads}, k={k}: recovery failed with {e}"));
            assert!(
                !fail::armed(),
                "threads={threads}, k={k}: the fault was never injected"
            );
            assert_eq!(reference, out, "threads={threads}, k={k}");
        }
    }

    // RecoveryPolicy::Fail surfaces the contained panic as WorkerPanic with
    // the offending rule's rendering and the panic payload.
    for threads in [1usize, 4] {
        fail::arm(0);
        let err = Executor::new()
            .with_threads(threads)
            .with_recovery(RecoveryPolicy::Fail)
            .run(&program, &input)
            .unwrap_err();
        assert!(
            !fail::armed(),
            "threads={threads}: the fault was never injected"
        );
        match &err {
            EvalError::WorkerPanic { rule, detail } => {
                assert!(!rule.is_empty(), "rule rendering missing: {err}");
                assert!(
                    detail.contains("fail-inject"),
                    "panic payload not preserved: {err}"
                );
            }
            other => panic!("threads={threads}: expected WorkerPanic, got {other}"),
        }
    }
    fail::disarm();

    // A disarmed injector never fires: plain runs stay clean.
    let out = Executor::new()
        .with_threads(4)
        .run(&program, &input)
        .unwrap();
    assert_eq!(reference, out);
}
