//! The evaluation schedule: each declared stratum condensed into strongly
//! connected components of its precedence graph, topologically ordered and
//! grouped into independence levels.
//!
//! A declared stratum (the `---`-separated blocks of a program) fixes the
//! semantics of negation; *within* a stratum the precedence graph is purely
//! positive (stratification forbids negating a relation defined in the same or a
//! later stratum), so its SCC condensation is a correct refinement of the
//! stratum-wide fixpoint: components are evaluated in topological order,
//! non-recursive components with a single pass, recursive components with a
//! semi-naive fixpoint restricted to their own rules — and components sharing a
//! level never read from one another, so they can run in parallel.

use seqdl_core::RelName;
use seqdl_syntax::{PrecedenceGraph, Program, Stratum};
use std::collections::BTreeSet;

/// One schedulable unit: the rules of one strongly connected component of a
/// declared stratum's precedence graph.
#[derive(Clone, Debug)]
pub struct Component {
    /// The head relations of the component.
    pub relations: BTreeSet<RelName>,
    /// Indices (into the stratum's rule list) of the rules whose heads lie in
    /// this component.
    pub rule_indices: Vec<usize>,
    /// Whether evaluating the component needs a fixpoint (mutual recursion or a
    /// self-loop); a non-recursive component is sound to evaluate in one pass.
    pub recursive: bool,
    /// Dependency depth; components with equal levels are mutually independent.
    pub level: usize,
}

/// The schedule of one declared stratum.
#[derive(Clone, Debug)]
pub struct StratumSchedule {
    /// The components in topological (evaluation) order.
    pub components: Vec<Component>,
    /// Component indices grouped by level, levels in ascending order.
    pub levels: Vec<Vec<usize>>,
}

impl StratumSchedule {
    /// Build the schedule of one stratum from its precedence graph.
    pub fn of_stratum(stratum: &Stratum) -> StratumSchedule {
        let condensation = PrecedenceGraph::of_rules(stratum.rules.iter()).condensation();
        let mut components: Vec<Component> = condensation
            .components
            .iter()
            .map(|scc| Component {
                relations: scc.members.clone(),
                rule_indices: Vec::new(),
                recursive: scc.recursive,
                level: scc.level,
            })
            .collect();
        for (rule_ix, rule) in stratum.rules.iter().enumerate() {
            let c = condensation
                .component_of(rule.head.relation)
                .expect("every rule head is a node of the stratum's precedence graph");
            components[c].rule_indices.push(rule_ix);
        }
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); condensation.level_count()];
        for (c, component) in components.iter().enumerate() {
            levels[component.level].push(c);
        }
        StratumSchedule { components, levels }
    }

    /// Total number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Number of recursive components.
    pub fn recursive_count(&self) -> usize {
        self.components.iter().filter(|c| c.recursive).count()
    }
}

/// The full evaluation schedule of a program: one [`StratumSchedule`] per
/// declared stratum, in evaluation order.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Per-stratum schedules.
    pub strata: Vec<StratumSchedule>,
}

impl Schedule {
    /// Build the schedule of a program.
    pub fn of_program(program: &Program) -> Schedule {
        Schedule {
            strata: program
                .strata
                .iter()
                .map(StratumSchedule::of_stratum)
                .collect(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use seqdl_core::rel;
    use seqdl_syntax::parse_program;

    #[test]
    fn nonrecursive_chain_schedules_one_component_per_level() {
        let p = parse_program("T1($x) <- R($x).\nT2($x) <- T1($x).\nS($x) <- T2($x).").unwrap();
        let sched = Schedule::of_program(&p);
        assert_eq!(sched.strata.len(), 1);
        let s = &sched.strata[0];
        assert_eq!(s.component_count(), 3);
        assert_eq!(s.recursive_count(), 0);
        assert_eq!(s.levels, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(s.components[0].relations, BTreeSet::from([rel("T1")]));
        assert_eq!(s.components[2].relations, BTreeSet::from([rel("S")]));
    }

    #[test]
    fn independent_relations_share_a_level() {
        let p = parse_program(
            "T($x) <- R($x).\nU($x) <- R($x).\nS($x) <- T($x), U($x).\nS($x) <- R($x·a).",
        )
        .unwrap();
        let s = &Schedule::of_program(&p).strata[0];
        assert_eq!(s.levels.len(), 2);
        assert_eq!(s.levels[0].len(), 2, "T and U are independent");
        let output = &s.components[s.levels[1][0]];
        assert_eq!(output.relations, BTreeSet::from([rel("S")]));
        assert_eq!(output.rule_indices, vec![2, 3], "both S rules in one unit");
    }

    #[test]
    fn recursion_is_confined_to_its_component() {
        let p = parse_program(
            "E($p) <- R($p).\nT(@x·@y) <- E(@x·@y).\nT(@x·@z) <- T(@x·@y), E(@y·@z).\nS <- T(a·b).",
        )
        .unwrap();
        let s = &Schedule::of_program(&p).strata[0];
        assert_eq!(s.component_count(), 3);
        assert_eq!(s.recursive_count(), 1);
        let t = s
            .components
            .iter()
            .find(|c| c.relations.contains(&rel("T")))
            .unwrap();
        assert!(t.recursive);
        assert_eq!(t.rule_indices, vec![1, 2]);
        assert_eq!(t.level, 1);
    }

    #[test]
    fn declared_strata_schedule_separately() {
        let p =
            parse_program("W(@x) <- R(@x·@y), !B(@y).\n---\nS(@x) <- R(@x·@y), !W(@x).").unwrap();
        let sched = Schedule::of_program(&p);
        assert_eq!(sched.strata.len(), 2);
        assert_eq!(sched.strata[0].component_count(), 1);
        assert_eq!(sched.strata[1].component_count(), 1);
        assert_eq!(sched.strata[1].recursive_count(), 0);
    }
}
